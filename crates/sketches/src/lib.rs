//! # taureau-sketches
//!
//! Mergeable streaming data sketches — the algorithmic toolkit §5.1 of *Le
//! Taureau* catalogues as a natural fit for serverless stream analytics:
//! "sampling, filtering, quantiles, cardinality, frequent elements, …".
//! Figure 3 of the paper shows a Count-Min sketch deployed as a Pulsar
//! function; [`CountMinSketch`] is that sketch, and
//! `taureau-pulsar`'s function runtime hosts it exactly as the figure shows.
//!
//! Every sketch here is:
//! - **single-pass**: `update` processes one stream element in O(1)–O(log n);
//! - **bounded-space**: size depends on accuracy parameters, not stream
//!   length;
//! - **mergeable** ([`Mergeable`]): two sketches built over disjoint
//!   sub-streams combine into the sketch of the union — the property that
//!   lets a sketch be *partitioned across serverless function instances*
//!   and aggregated afterwards, which is the whole point of running them on
//!   a FaaS platform.
//!
//! | Sketch | Question answered | Guarantee |
//! |--------|------------------|-----------|
//! | [`CountMinSketch`] | frequency of item x | overestimate ≤ εN w.p. 1−δ |
//! | [`HyperLogLog`] | distinct-count | ±1.04/√(2^p) relative std. error |
//! | [`BloomFilter`] | membership | no false negatives, tunable FPR |
//! | [`SpaceSaving`] | top-k frequent items | error ≤ N/capacity |
//! | [`ReservoirSample`] | uniform sample of k | exact uniformity |
//! | [`KllSketch`] | quantiles | rank error ≈ O(1/k) |
//! | [`AmsF2`] | second moment (join size) | (ε,δ) multiplicative |

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

pub mod bloom;
pub mod countmin;
pub mod hash;
pub mod hyperloglog;
pub mod moments;
pub mod quantiles;
pub mod reservoir;
pub mod spacesaving;

pub use bloom::BloomFilter;
pub use countmin::CountMinSketch;
pub use hyperloglog::HyperLogLog;
pub use moments::AmsF2;
pub use quantiles::KllSketch;
pub use reservoir::ReservoirSample;
pub use spacesaving::SpaceSaving;

/// Sketches over disjoint sub-streams can be combined into a sketch of the
/// concatenated stream. This is the property that makes a sketch deployable
/// across a fleet of serverless function instances (each instance sketches
/// its shard; a reducer merges).
pub trait Mergeable {
    /// Fold `other` into `self`.
    ///
    /// # Errors
    /// Returns [`MergeError`] if the two sketches were built with
    /// incompatible parameters (different widths, precisions, or seeds).
    fn merge(&mut self, other: &Self) -> Result<(), MergeError>;
}

/// Two sketches had incompatible shapes or seeds.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct MergeError {
    /// Human-readable description of the mismatch.
    pub reason: String,
}

impl std::fmt::Display for MergeError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "cannot merge sketches: {}", self.reason)
    }
}

impl std::error::Error for MergeError {}

impl MergeError {
    pub(crate) fn new(reason: impl Into<String>) -> Self {
        Self {
            reason: reason.into(),
        }
    }
}
