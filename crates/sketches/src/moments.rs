//! AMS second-moment (F₂) sketch, in its fast Count-Sketch form
//! (Alon, Matias, Szegedy 1996; Charikar, Chen, Farach-Colton 2002).
//!
//! Estimates `F₂ = Σᵢ fᵢ²` (self-join size) of a frequency vector. Each of
//! `depth` rows hashes items into `width` signed counters; a row's estimate
//! is the sum of squared counters; the sketch reports the median of rows.
//! Width `O(1/ε²)` gives relative error ε; depth `O(log 1/δ)` gives
//! confidence `1−δ`. Linear, hence mergeable by addition — and supports
//! deletions (negative counts), making it usable for turnstile streams.

use serde::{Deserialize, Serialize};

use crate::hash::hash64;
use crate::{MergeError, Mergeable};

/// Independent per-row hash seed (see `countmin::row_seed` for why derived
/// families are not used across rows).
#[inline]
fn row_seed(seed: u64, row: usize) -> u64 {
    seed ^ (row as u64 + 1).wrapping_mul(0x9e37_79b9_7f4a_7c15)
}

/// AMS/Count-Sketch F₂ estimator.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct AmsF2 {
    width: usize,
    depth: usize,
    seed: u64,
    /// Row-major signed counters.
    counters: Vec<i64>,
}

impl AmsF2 {
    /// Create with explicit dimensions.
    pub fn new(depth: usize, width: usize, seed: u64) -> Self {
        assert!(depth > 0 && width > 0, "dimensions must be positive");
        Self {
            width,
            depth,
            seed,
            counters: vec![0; depth * width],
        }
    }

    /// Size for relative error `eps` with failure probability `delta`.
    pub fn with_error_bounds(eps: f64, delta: f64, seed: u64) -> Self {
        assert!(eps > 0.0 && eps < 1.0);
        assert!(delta > 0.0 && delta < 1.0);
        let width = (6.0 / (eps * eps)).ceil() as usize;
        let depth = (8.0 * (1.0 / delta).ln()).ceil() as usize;
        Self::new(depth.max(1), width.max(1), seed)
    }

    /// Grid width.
    pub fn width(&self) -> usize {
        self.width
    }

    /// Grid depth.
    pub fn depth(&self) -> usize {
        self.depth
    }

    /// Update item frequency by `delta` (negative allowed: turnstile model).
    pub fn update(&mut self, item: &[u8], delta: i64) {
        for row in 0..self.depth {
            let h = hash64(row_seed(self.seed, row), item);
            let col = (h % self.width as u64) as usize;
            // Use a high bit (independent of the bucket choice) as the sign.
            let sign: i64 = if (h >> 63) == 1 { 1 } else { -1 };
            self.counters[row * self.width + col] += sign * delta;
        }
    }

    /// Estimate `F₂ = Σ fᵢ²` as the median of per-row sums of squares.
    pub fn estimate(&self) -> f64 {
        let mut rows: Vec<f64> = (0..self.depth)
            .map(|row| {
                self.counters[row * self.width..(row + 1) * self.width]
                    .iter()
                    .map(|&c| (c as f64) * (c as f64))
                    .sum()
            })
            .collect();
        rows.sort_by(|a, b| a.partial_cmp(b).expect("no NaN"));
        let mid = rows.len() / 2;
        if rows.len() % 2 == 1 {
            rows[mid]
        } else {
            (rows[mid - 1] + rows[mid]) / 2.0
        }
    }
}

impl Mergeable for AmsF2 {
    fn merge(&mut self, other: &Self) -> Result<(), MergeError> {
        if self.width != other.width || self.depth != other.depth {
            return Err(MergeError::new("dimension mismatch"));
        }
        if self.seed != other.seed {
            return Err(MergeError::new("seed mismatch"));
        }
        for (a, b) in self.counters.iter_mut().zip(&other.counters) {
            *a += *b;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use taureau_core::rng::{det_rng, Zipf};

    fn true_f2(freqs: &[u64]) -> f64 {
        freqs.iter().map(|&f| (f as f64) * (f as f64)).sum()
    }

    #[test]
    fn empty_estimates_zero() {
        let s = AmsF2::new(5, 256, 1);
        assert_eq!(s.estimate(), 0.0);
    }

    #[test]
    fn estimates_f2_on_zipf_stream() {
        let z = Zipf::new(2000, 1.0);
        let mut r = det_rng(5);
        let mut s = AmsF2::with_error_bounds(0.1, 0.01, 3);
        let mut truth = vec![0u64; 2000];
        for _ in 0..100_000 {
            let item = z.sample(&mut r);
            truth[item] += 1;
            s.update(&(item as u64).to_le_bytes(), 1);
        }
        let est = s.estimate();
        let exact = true_f2(&truth);
        let err = (est - exact).abs() / exact;
        assert!(err < 0.1, "est={est} exact={exact} err={err}");
    }

    #[test]
    fn supports_deletions() {
        let mut s = AmsF2::new(7, 512, 9);
        // Insert then fully delete: F2 returns to 0.
        for i in 0..100u64 {
            s.update(&i.to_le_bytes(), 5);
        }
        for i in 0..100u64 {
            s.update(&i.to_le_bytes(), -5);
        }
        assert_eq!(s.estimate(), 0.0);
    }

    #[test]
    fn single_heavy_item() {
        let mut s = AmsF2::new(7, 512, 2);
        s.update(b"whale", 1000);
        let est = s.estimate();
        assert!((est - 1_000_000.0).abs() / 1_000_000.0 < 1e-9, "est {est}");
    }

    #[test]
    fn merge_equals_combined_stream() {
        let mut a = AmsF2::new(5, 128, 7);
        let mut b = AmsF2::new(5, 128, 7);
        let mut whole = AmsF2::new(5, 128, 7);
        for i in 0..500u64 {
            let key = (i % 50).to_le_bytes();
            whole.update(&key, 1);
            if i % 2 == 0 {
                a.update(&key, 1);
            } else {
                b.update(&key, 1);
            }
        }
        a.merge(&b).unwrap();
        assert_eq!(a, whole);
    }

    #[test]
    fn merge_rejects_mismatch() {
        let mut a = AmsF2::new(5, 128, 7);
        assert!(a.merge(&AmsF2::new(5, 256, 7)).is_err());
        assert!(a.merge(&AmsF2::new(5, 128, 8)).is_err());
    }
}
