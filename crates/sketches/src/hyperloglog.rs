//! HyperLogLog cardinality estimation (Flajolet et al., 2007).
//!
//! Estimates the number of *distinct* items in a stream using `2^p` 6-bit
//! registers (stored as bytes here for simplicity). Standard error is
//! `1.04 / sqrt(2^p)` — p=14 gives ~0.8% at 16 KiB. Includes the small-range
//! (linear counting) correction from the original paper.

use serde::{Deserialize, Serialize};

use crate::hash::hash64;
use crate::{MergeError, Mergeable};

/// HyperLogLog distinct-count sketch.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct HyperLogLog {
    /// Precision: number of index bits, 4..=18.
    p: u8,
    seed: u64,
    registers: Vec<u8>,
}

impl HyperLogLog {
    /// Create with precision `p` (register count `2^p`).
    pub fn new(p: u8, seed: u64) -> Self {
        assert!((4..=18).contains(&p), "precision must be in 4..=18");
        Self {
            p,
            seed,
            registers: vec![0; 1 << p],
        }
    }

    /// Precision (index bits).
    pub fn precision(&self) -> u8 {
        self.p
    }

    /// Relative standard error of estimates from this sketch.
    pub fn standard_error(&self) -> f64 {
        1.04 / ((1u64 << self.p) as f64).sqrt()
    }

    /// Observe one item (duplicates are free).
    pub fn add(&mut self, item: &[u8]) {
        let h = hash64(self.seed, item);
        let idx = (h >> (64 - self.p)) as usize;
        let rest = h << self.p;
        // Rank: position of the leftmost 1-bit in the remaining bits, 1-based;
        // if all remaining 64-p bits are zero the rank is 64-p+1.
        let rank = if rest == 0 {
            64 - self.p + 1
        } else {
            rest.leading_zeros() as u8 + 1
        };
        if rank > self.registers[idx] {
            self.registers[idx] = rank;
        }
    }

    /// Estimated number of distinct items observed.
    pub fn estimate(&self) -> f64 {
        let m = self.registers.len() as f64;
        let alpha = match self.registers.len() {
            16 => 0.673,
            32 => 0.697,
            64 => 0.709,
            n => 0.7213 / (1.0 + 1.079 / n as f64),
        };
        let sum: f64 = self.registers.iter().map(|&r| 2f64.powi(-(r as i32))).sum();
        let raw = alpha * m * m / sum;

        if raw <= 2.5 * m {
            // Small-range correction: linear counting over empty registers.
            let zeros = self.registers.iter().filter(|&&r| r == 0).count();
            if zeros > 0 {
                return m * (m / zeros as f64).ln();
            }
        }
        raw
    }

    /// Memory footprint in bytes.
    pub fn size_bytes(&self) -> usize {
        self.registers.len()
    }
}

impl Mergeable for HyperLogLog {
    fn merge(&mut self, other: &Self) -> Result<(), MergeError> {
        if self.p != other.p {
            return Err(MergeError::new(format!(
                "precision mismatch: {} vs {}",
                self.p, other.p
            )));
        }
        if self.seed != other.seed {
            return Err(MergeError::new("seed mismatch"));
        }
        for (a, b) in self.registers.iter_mut().zip(&other.registers) {
            *a = (*a).max(*b);
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn estimate_n_distinct(p: u8, n: u64) -> f64 {
        let mut hll = HyperLogLog::new(p, 42);
        for i in 0..n {
            hll.add(&i.to_le_bytes());
        }
        hll.estimate()
    }

    #[test]
    fn empty_estimates_zero() {
        let hll = HyperLogLog::new(12, 0);
        assert_eq!(hll.estimate(), 0.0);
    }

    #[test]
    fn small_cardinalities_near_exact() {
        for n in [1u64, 10, 100] {
            let est = estimate_n_distinct(12, n);
            let err = (est - n as f64).abs() / n as f64;
            assert!(err < 0.05, "n={n} est={est}");
        }
    }

    #[test]
    fn large_cardinality_within_error_bound() {
        let n = 1_000_000u64;
        let p = 14;
        let est = estimate_n_distinct(p, n);
        let err = (est - n as f64).abs() / n as f64;
        // 4 standard errors at p=14 is ~3.3%.
        let bound = 4.0 * HyperLogLog::new(p, 0).standard_error();
        assert!(err < bound, "est={est} err={err} bound={bound}");
    }

    #[test]
    fn duplicates_do_not_inflate() {
        let mut hll = HyperLogLog::new(12, 7);
        for _ in 0..10 {
            for i in 0..1000u64 {
                hll.add(&i.to_le_bytes());
            }
        }
        let est = hll.estimate();
        let err = (est - 1000.0).abs() / 1000.0;
        assert!(err < 0.05, "est={est}");
    }

    #[test]
    fn merge_equals_union() {
        let mut a = HyperLogLog::new(12, 3);
        let mut b = HyperLogLog::new(12, 3);
        let mut whole = HyperLogLog::new(12, 3);
        for i in 0..5000u64 {
            whole.add(&i.to_le_bytes());
            if i < 3000 {
                a.add(&i.to_le_bytes());
            }
            if i >= 2000 {
                b.add(&i.to_le_bytes());
            }
        }
        a.merge(&b).unwrap();
        assert_eq!(a, whole);
    }

    #[test]
    fn merge_rejects_mismatched_precision_or_seed() {
        let mut a = HyperLogLog::new(12, 1);
        assert!(a.merge(&HyperLogLog::new(13, 1)).is_err());
        assert!(a.merge(&HyperLogLog::new(12, 2)).is_err());
    }

    #[test]
    fn higher_precision_reduces_error() {
        let n = 200_000u64;
        let e10 = (estimate_n_distinct(10, n) - n as f64).abs() / n as f64;
        let e16 = (estimate_n_distinct(16, n) - n as f64).abs() / n as f64;
        // Not guaranteed pointwise, but with fixed seed and this n it holds
        // and documents the intended accuracy/memory trade.
        assert!(e16 < e10 + 0.01, "e10={e10} e16={e16}");
    }

    #[test]
    #[should_panic(expected = "precision must be in 4..=18")]
    fn rejects_silly_precision() {
        let _ = HyperLogLog::new(25, 0);
    }
}
