//! Bloom filter (Bloom, 1970).
//!
//! Approximate set membership with no false negatives and a tunable false
//! positive rate: `k = (m/n) ln 2` hash functions over `m` bits sized for
//! `n` expected insertions at false-positive probability `fpp`.

use serde::{Deserialize, Serialize};

use crate::hash::HashPair;
use crate::{MergeError, Mergeable};

/// A Bloom filter over byte-slice items.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct BloomFilter {
    bits: Vec<u64>,
    m: u64,
    k: u32,
    seed: u64,
    inserted: u64,
}

impl BloomFilter {
    /// Size the filter for `expected_items` at target false-positive
    /// probability `fpp`.
    pub fn new(expected_items: usize, fpp: f64, seed: u64) -> Self {
        assert!(expected_items > 0, "expected_items must be positive");
        assert!(fpp > 0.0 && fpp < 1.0, "fpp must be in (0,1)");
        let n = expected_items as f64;
        let ln2 = std::f64::consts::LN_2;
        let m = (-(n * fpp.ln()) / (ln2 * ln2)).ceil().max(64.0) as u64;
        let k = ((m as f64 / n) * ln2).round().max(1.0) as u32;
        Self {
            bits: vec![0; m.div_ceil(64) as usize],
            m,
            k,
            seed,
            inserted: 0,
        }
    }

    /// Number of bits in the filter.
    pub fn bit_len(&self) -> u64 {
        self.m
    }

    /// Number of hash functions.
    pub fn hash_count(&self) -> u32 {
        self.k
    }

    /// Items inserted so far.
    pub fn inserted(&self) -> u64 {
        self.inserted
    }

    #[inline]
    fn positions<'a>(&'a self, pair: &'a HashPair) -> impl Iterator<Item = u64> + 'a {
        (0..self.k as u64).map(move |i| pair.derive(i) % self.m)
    }

    /// Insert an item.
    pub fn insert(&mut self, item: &[u8]) {
        let pair = HashPair::new(self.seed, item);
        // Collect first to avoid borrowing self both ways.
        let pos: Vec<u64> = self.positions(&pair).collect();
        for p in pos {
            self.bits[(p / 64) as usize] |= 1 << (p % 64);
        }
        self.inserted += 1;
    }

    /// Check membership: `false` is definite, `true` may be a false positive.
    pub fn contains(&self, item: &[u8]) -> bool {
        let pair = HashPair::new(self.seed, item);
        let hit = self
            .positions(&pair)
            .all(|p| self.bits[(p / 64) as usize] & (1 << (p % 64)) != 0);
        hit
    }

    /// Expected false-positive probability at the current fill level:
    /// `(1 - e^{-k n / m})^k`.
    pub fn estimated_fpp(&self) -> f64 {
        let exponent = -(self.k as f64) * self.inserted as f64 / self.m as f64;
        (1.0 - exponent.exp()).powi(self.k as i32)
    }

    /// Memory footprint in bytes.
    pub fn size_bytes(&self) -> usize {
        self.bits.len() * 8
    }
}

impl Mergeable for BloomFilter {
    fn merge(&mut self, other: &Self) -> Result<(), MergeError> {
        if self.m != other.m || self.k != other.k {
            return Err(MergeError::new("shape mismatch"));
        }
        if self.seed != other.seed {
            return Err(MergeError::new("seed mismatch"));
        }
        for (a, b) in self.bits.iter_mut().zip(&other.bits) {
            *a |= *b;
        }
        self.inserted += other.inserted;
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn no_false_negatives() {
        let mut bf = BloomFilter::new(10_000, 0.01, 1);
        for i in 0..10_000u64 {
            bf.insert(&i.to_le_bytes());
        }
        for i in 0..10_000u64 {
            assert!(bf.contains(&i.to_le_bytes()), "lost item {i}");
        }
    }

    #[test]
    fn false_positive_rate_near_target() {
        let mut bf = BloomFilter::new(10_000, 0.01, 2);
        for i in 0..10_000u64 {
            bf.insert(&i.to_le_bytes());
        }
        let probes = 100_000u64;
        let fp = (10_000..10_000 + probes)
            .filter(|i| bf.contains(&i.to_le_bytes()))
            .count();
        let rate = fp as f64 / probes as f64;
        assert!(rate < 0.02, "observed fpp {rate}");
        // And the analytic estimate should be in the same ballpark.
        assert!((bf.estimated_fpp() - rate).abs() < 0.01);
    }

    #[test]
    fn empty_filter_contains_nothing() {
        let bf = BloomFilter::new(100, 0.01, 3);
        assert!(!bf.contains(b"anything"));
        assert_eq!(bf.estimated_fpp(), 0.0);
    }

    #[test]
    fn merge_is_union() {
        let mut a = BloomFilter::new(1000, 0.01, 4);
        let mut b = BloomFilter::new(1000, 0.01, 4);
        a.insert(b"left");
        b.insert(b"right");
        a.merge(&b).unwrap();
        assert!(a.contains(b"left"));
        assert!(a.contains(b"right"));
        assert_eq!(a.inserted(), 2);
    }

    #[test]
    fn merge_rejects_different_configs() {
        let mut a = BloomFilter::new(1000, 0.01, 4);
        let b = BloomFilter::new(2000, 0.01, 4);
        assert!(a.merge(&b).is_err());
        let c = BloomFilter::new(1000, 0.01, 5);
        assert!(a.merge(&c).is_err());
    }

    #[test]
    fn sizing_math() {
        // Classic result: 1% fpp needs ~9.6 bits/item and 7 hashes.
        let bf = BloomFilter::new(1000, 0.01, 0);
        let bits_per_item = bf.bit_len() as f64 / 1000.0;
        assert!((9.0..11.0).contains(&bits_per_item), "{bits_per_item}");
        assert_eq!(bf.hash_count(), 7);
    }
}
