//! Reservoir sampling (Vitter's Algorithm R).
//!
//! Maintains a uniform random sample of `k` items from a stream of unknown
//! length. Merging two reservoirs uses weighted subsampling so the result is
//! still a uniform sample of the concatenated stream.

use rand::Rng;
use serde::{Deserialize, Serialize};

/// A uniform `k`-sample of a stream.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct ReservoirSample<T> {
    capacity: usize,
    seen: u64,
    items: Vec<T>,
}

impl<T: Clone> ReservoirSample<T> {
    /// Reservoir of size `k`.
    pub fn new(k: usize) -> Self {
        assert!(k > 0, "reservoir capacity must be positive");
        Self {
            capacity: k,
            seen: 0,
            items: Vec::with_capacity(k),
        }
    }

    /// Sample capacity.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Stream length observed so far.
    pub fn seen(&self) -> u64 {
        self.seen
    }

    /// Current sample (length `min(k, seen)`).
    pub fn items(&self) -> &[T] {
        &self.items
    }

    /// Observe one stream element.
    pub fn add<R: Rng + ?Sized>(&mut self, rng: &mut R, item: T) {
        self.seen += 1;
        if self.items.len() < self.capacity {
            self.items.push(item);
        } else {
            let j = rng.gen_range(0..self.seen);
            if (j as usize) < self.capacity {
                self.items[j as usize] = item;
            }
        }
    }

    /// Merge with another reservoir over a disjoint sub-stream: each slot of
    /// the result is drawn from `self` or `other` with probability
    /// proportional to the stream lengths they represent.
    pub fn merge<R: Rng + ?Sized>(&mut self, rng: &mut R, other: &Self) {
        assert_eq!(self.capacity, other.capacity, "capacity mismatch");
        if other.seen == 0 {
            return;
        }
        if self.seen == 0 {
            self.items = other.items.clone();
            self.seen = other.seen;
            return;
        }
        let total = self.seen + other.seen;
        let p_self = self.seen as f64 / total as f64;
        let k = self.capacity.min(total as usize);
        let mut merged = Vec::with_capacity(k);
        // Draw with replacement from each side's sample proportionally; for
        // k ≪ stream length this matches uniform sampling of the union to
        // within the usual reservoir approximation.
        let mut self_pool = self.items.clone();
        let mut other_pool = other.items.clone();
        for _ in 0..k {
            let from_self = rng.gen::<f64>() < p_self;
            let pool: &mut Vec<T> = if from_self {
                &mut self_pool
            } else {
                &mut other_pool
            };
            if pool.is_empty() {
                let pool = if from_self {
                    &mut other_pool
                } else {
                    &mut self_pool
                };
                if pool.is_empty() {
                    break;
                }
                let i = rng.gen_range(0..pool.len());
                merged.push(pool.swap_remove(i));
            } else {
                let i = rng.gen_range(0..pool.len());
                merged.push(pool.swap_remove(i));
            }
        }
        self.items = merged;
        self.seen = total;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use taureau_core::rng::det_rng;

    #[test]
    fn keeps_everything_until_full() {
        let mut r = det_rng(1);
        let mut rs = ReservoirSample::new(5);
        for i in 0..3 {
            rs.add(&mut r, i);
        }
        assert_eq!(rs.items(), &[0, 1, 2]);
        assert_eq!(rs.seen(), 3);
    }

    #[test]
    fn size_is_capped() {
        let mut r = det_rng(2);
        let mut rs = ReservoirSample::new(10);
        for i in 0..1000 {
            rs.add(&mut r, i);
        }
        assert_eq!(rs.items().len(), 10);
        assert_eq!(rs.seen(), 1000);
    }

    #[test]
    fn sampling_is_approximately_uniform() {
        // Each of 100 items should appear in the k=10 reservoir with
        // probability 1/10; run many trials and check inclusion frequency.
        let mut r = det_rng(3);
        let trials = 20_000;
        let mut inclusion = vec![0u32; 100];
        for _ in 0..trials {
            let mut rs = ReservoirSample::new(10);
            for i in 0..100 {
                rs.add(&mut r, i);
            }
            for &i in rs.items() {
                inclusion[i as usize] += 1;
            }
        }
        for (i, &c) in inclusion.iter().enumerate() {
            let p = c as f64 / trials as f64;
            assert!((p - 0.1).abs() < 0.02, "item {i} inclusion {p}");
        }
    }

    #[test]
    fn merge_tracks_stream_lengths() {
        let mut r = det_rng(4);
        let mut a = ReservoirSample::new(8);
        let mut b = ReservoirSample::new(8);
        for i in 0..100 {
            a.add(&mut r, i);
        }
        for i in 100..400 {
            b.add(&mut r, i);
        }
        a.merge(&mut r, &b);
        assert_eq!(a.seen(), 400);
        assert_eq!(a.items().len(), 8);
    }

    #[test]
    fn merge_with_empty_is_identity() {
        let mut r = det_rng(5);
        let mut a = ReservoirSample::new(4);
        for i in 0..10 {
            a.add(&mut r, i);
        }
        let before = a.items().to_vec();
        let b = ReservoirSample::new(4);
        a.merge(&mut r, &b);
        assert_eq!(a.items(), &before[..]);
        assert_eq!(a.seen(), 10);
    }

    #[test]
    fn merge_is_proportionally_biased() {
        // Side B represents 9x the stream; its items should dominate.
        let mut r = det_rng(6);
        let mut from_b = 0usize;
        let trials = 2000;
        for _ in 0..trials {
            let mut a = ReservoirSample::new(10);
            let mut b = ReservoirSample::new(10);
            for i in 0..100 {
                a.add(&mut r, i);
            }
            for i in 1000..1900 {
                b.add(&mut r, i);
            }
            a.merge(&mut r, &b);
            from_b += a.items().iter().filter(|&&x| x >= 1000).count();
        }
        let share = from_b as f64 / (trials * 10) as f64;
        assert!((share - 0.9).abs() < 0.05, "B share {share}");
    }
}
