//! Count-Min sketch (Cormode & Muthukrishnan, 2005).
//!
//! This is the sketch Figure 3 of the paper deploys as a Pulsar function:
//! a `depth × width` grid of counters; each update increments one counter
//! per row; a point query takes the *minimum* over rows, giving an estimate
//! that never underestimates and overestimates by at most `εN` with
//! probability `1 − δ`, where `width = ⌈e/ε⌉` and `depth = ⌈ln(1/δ)⌉`.
//!
//! The optional *conservative update* variant only increments the counters
//! that equal the current minimum, tightening estimates at no asymptotic
//! cost (used by the E6 ablation).

use serde::{Deserialize, Serialize};

use crate::hash::hash64;
use crate::{MergeError, Mergeable};

/// Mix a row index into the seed so each row gets an independent hash
/// function. (A Kirsch–Mitzenmacher derived family is *not* enough here:
/// with `g_i = h1 + i·h2 mod w`, two items agreeing on `h1, h2 mod w`
/// collide in every row at probability `1/w²`, which on skewed streams
/// produces estimates far beyond the εN bound. Independent row hashes
/// restore the classic analysis.)
#[inline]
fn row_seed(seed: u64, row: usize) -> u64 {
    seed ^ (row as u64 + 1).wrapping_mul(0x9e37_79b9_7f4a_7c15)
}

/// Count-Min sketch over byte-slice items.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct CountMinSketch {
    width: usize,
    depth: usize,
    seed: u64,
    conservative: bool,
    /// Row-major `depth × width` counters.
    counters: Vec<u64>,
    /// Total stream weight N.
    total: u64,
}

impl CountMinSketch {
    /// Create from explicit dimensions, mirroring the
    /// `new CountMinSketch(depth, width, seed)` constructor in the paper's
    /// Figure 3 listing.
    pub fn new(depth: usize, width: usize, seed: u64) -> Self {
        assert!(depth > 0 && width > 0, "dimensions must be positive");
        Self {
            width,
            depth,
            seed,
            conservative: false,
            counters: vec![0; depth * width],
            total: 0,
        }
    }

    /// Create from accuracy targets: estimates exceed truth by more than
    /// `eps * N` with probability at most `delta`.
    pub fn with_error_bounds(eps: f64, delta: f64, seed: u64) -> Self {
        assert!(eps > 0.0 && eps < 1.0, "eps must be in (0,1)");
        assert!(delta > 0.0 && delta < 1.0, "delta must be in (0,1)");
        let width = (std::f64::consts::E / eps).ceil() as usize;
        let depth = (1.0 / delta).ln().ceil() as usize;
        Self::new(depth.max(1), width.max(1), seed)
    }

    /// Switch to conservative update (must be set before any updates).
    pub fn conservative(mut self) -> Self {
        assert_eq!(self.total, 0, "set conservative before updating");
        self.conservative = true;
        self
    }

    /// Grid width (counters per row).
    pub fn width(&self) -> usize {
        self.width
    }

    /// Grid depth (number of rows / hash functions).
    pub fn depth(&self) -> usize {
        self.depth
    }

    /// Total stream weight processed so far.
    pub fn total(&self) -> u64 {
        self.total
    }

    /// The ε for which this sketch's width guarantees error ≤ εN.
    pub fn epsilon(&self) -> f64 {
        std::f64::consts::E / self.width as f64
    }

    /// The δ for which this sketch's depth guarantees the ε bound.
    pub fn delta(&self) -> f64 {
        (-(self.depth as f64)).exp()
    }

    #[inline]
    fn cell(&self, row: usize, col: usize) -> usize {
        row * self.width + col
    }

    #[inline]
    fn col(&self, row: usize, item: &[u8]) -> usize {
        (hash64(row_seed(self.seed, row), item) % self.width as u64) as usize
    }

    /// Add `count` occurrences of `item` — the `sketch.add(input, 1)` call
    /// in the paper's listing.
    pub fn add(&mut self, item: &[u8], count: u64) {
        self.total += count;
        if self.conservative {
            let est = self.estimate(item);
            let target = est + count;
            for row in 0..self.depth {
                let idx = self.cell(row, self.col(row, item));
                if self.counters[idx] < target {
                    self.counters[idx] = target;
                }
            }
        } else {
            for row in 0..self.depth {
                let idx = self.cell(row, self.col(row, item));
                self.counters[idx] += count;
            }
        }
    }

    /// Estimated frequency of `item` — the `sketch.estimateCount(input)`
    /// call in the paper's listing. Never underestimates.
    pub fn estimate(&self, item: &[u8]) -> u64 {
        (0..self.depth)
            .map(|row| self.counters[self.cell(row, self.col(row, item))])
            .min()
            .unwrap_or(0)
    }

    /// Memory footprint of the counter grid in bytes.
    pub fn size_bytes(&self) -> usize {
        self.counters.len() * std::mem::size_of::<u64>()
    }
}

impl Mergeable for CountMinSketch {
    fn merge(&mut self, other: &Self) -> Result<(), MergeError> {
        if self.width != other.width || self.depth != other.depth {
            return Err(MergeError::new(format!(
                "dimension mismatch: {}x{} vs {}x{}",
                self.depth, self.width, other.depth, other.width
            )));
        }
        if self.seed != other.seed {
            return Err(MergeError::new("seed mismatch"));
        }
        if self.conservative || other.conservative {
            // Conservative sketches are not exactly mergeable (the per-cell
            // max trick loses the additivity the merge relies on); merging
            // them cell-wise would break the no-underestimate guarantee.
            return Err(MergeError::new("conservative sketches are not mergeable"));
        }
        for (a, b) in self.counters.iter_mut().zip(&other.counters) {
            *a += *b;
        }
        self.total += other.total;
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::Rng;
    use taureau_core::rng::{det_rng, Zipf};

    #[test]
    fn exact_for_sparse_streams() {
        let mut cm = CountMinSketch::new(4, 1024, 7);
        cm.add(b"a", 5);
        cm.add(b"b", 3);
        cm.add(b"c", 1);
        assert_eq!(cm.estimate(b"a"), 5);
        assert_eq!(cm.estimate(b"b"), 3);
        assert_eq!(cm.estimate(b"c"), 1);
        assert_eq!(cm.total(), 9);
    }

    #[test]
    fn never_underestimates_on_zipf_stream() {
        let mut cm = CountMinSketch::with_error_bounds(0.01, 0.01, 42);
        let z = Zipf::new(1000, 1.1);
        let mut r = det_rng(1);
        let mut truth = vec![0u64; 1000];
        for _ in 0..50_000 {
            let item = z.sample(&mut r);
            truth[item] += 1;
            cm.add(&(item as u64).to_le_bytes(), 1);
        }
        for (i, &t) in truth.iter().enumerate() {
            let est = cm.estimate(&(i as u64).to_le_bytes());
            assert!(est >= t, "item {i}: est {est} < truth {t}");
        }
    }

    #[test]
    fn error_bound_holds_for_most_items() {
        let eps = 0.005;
        let mut cm = CountMinSketch::with_error_bounds(eps, 0.01, 11);
        let z = Zipf::new(10_000, 1.0);
        let mut r = det_rng(2);
        let n = 100_000u64;
        let mut truth = vec![0u64; 10_000];
        for _ in 0..n {
            let item = z.sample(&mut r);
            truth[item] += 1;
            cm.add(&(item as u64).to_le_bytes(), 1);
        }
        let bound = (eps * n as f64) as u64;
        let violations = truth
            .iter()
            .enumerate()
            .filter(|&(i, &t)| cm.estimate(&(i as u64).to_le_bytes()) - t > bound)
            .count();
        // δ = 1% per item; allow generous slack for 10k correlated queries.
        assert!(
            violations < 300,
            "{violations} items exceeded the eps bound"
        );
    }

    #[test]
    fn conservative_update_never_underestimates_and_is_tighter() {
        let z = Zipf::new(500, 1.0);
        let mut plain = CountMinSketch::new(4, 64, 3);
        let mut cons = CountMinSketch::new(4, 64, 3).conservative();
        let mut r = det_rng(5);
        let mut truth = vec![0u64; 500];
        for _ in 0..20_000 {
            let item = z.sample(&mut r);
            truth[item] += 1;
            let key = (item as u64).to_le_bytes();
            plain.add(&key, 1);
            cons.add(&key, 1);
        }
        let mut plain_err = 0u64;
        let mut cons_err = 0u64;
        for (i, &t) in truth.iter().enumerate() {
            let key = (i as u64).to_le_bytes();
            let pe = plain.estimate(&key);
            let ce = cons.estimate(&key);
            assert!(ce >= t, "conservative underestimated item {i}");
            assert!(ce <= pe, "conservative above plain for item {i}");
            plain_err += pe - t;
            cons_err += ce - t;
        }
        assert!(
            cons_err < plain_err,
            "conservative total error {cons_err} not below plain {plain_err}"
        );
    }

    #[test]
    fn merge_equals_single_sketch_over_union() {
        let mut whole = CountMinSketch::new(5, 256, 9);
        let mut left = CountMinSketch::new(5, 256, 9);
        let mut right = CountMinSketch::new(5, 256, 9);
        let mut r = det_rng(8);
        for i in 0..5_000u64 {
            let key = (r.gen_range(0..200u64)).to_le_bytes();
            whole.add(&key, 1);
            if i % 2 == 0 {
                left.add(&key, 1);
            } else {
                right.add(&key, 1);
            }
        }
        left.merge(&right).unwrap();
        assert_eq!(left, whole);
    }

    #[test]
    fn merge_rejects_mismatches() {
        let mut a = CountMinSketch::new(4, 64, 1);
        let b = CountMinSketch::new(4, 128, 1);
        assert!(a.merge(&b).is_err());
        let c = CountMinSketch::new(4, 64, 2);
        assert!(a.merge(&c).is_err());
        let d = CountMinSketch::new(4, 64, 1).conservative();
        assert!(a.merge(&d).is_err());
    }

    #[test]
    fn error_bound_parameters() {
        let cm = CountMinSketch::with_error_bounds(0.01, 0.001, 0);
        assert!(cm.width() >= 272); // e / 0.01 ≈ 271.8
        assert!(cm.depth() >= 7); // ln(1000) ≈ 6.9
        assert!(cm.epsilon() <= 0.01 + 1e-9);
        assert!(cm.delta() <= 0.001 + 1e-9);
    }

    #[test]
    fn weighted_updates() {
        let mut cm = CountMinSketch::new(3, 512, 4);
        cm.add(b"x", 10);
        cm.add(b"x", 5);
        assert_eq!(cm.estimate(b"x"), 15);
    }

    #[test]
    fn unseen_items_estimate_small() {
        let mut cm = CountMinSketch::with_error_bounds(0.001, 0.01, 77);
        for i in 0..1000u64 {
            cm.add(&i.to_le_bytes(), 1);
        }
        // An unseen item should estimate well below eps*N = 1.
        assert!(cm.estimate(b"never-seen") <= 1);
    }
}
