//! Space-Saving heavy hitters (Metwally, Agrawal, El Abbadi, 2005).
//!
//! Maintains at most `capacity` (item, count, error) entries. When a new
//! item arrives and the table is full, the minimum-count entry is evicted
//! and the newcomer inherits its count (recorded as `error`). Guarantees:
//! every item with true frequency > N/capacity is present, and each
//! reported count overestimates truth by at most its recorded `error`
//! (itself ≤ N/capacity).

use std::collections::HashMap;

use serde::{Deserialize, Serialize};

use crate::{MergeError, Mergeable};

/// One monitored item.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct HeavyHitter {
    /// The item.
    pub item: Vec<u8>,
    /// Estimated count (upper bound on true count).
    pub count: u64,
    /// Maximum overestimation (count - error is a lower bound on truth).
    pub error: u64,
}

/// Space-Saving summary of the most frequent items.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct SpaceSaving {
    capacity: usize,
    /// item -> (count, error).
    entries: HashMap<Vec<u8>, (u64, u64)>,
    total: u64,
}

impl SpaceSaving {
    /// Track up to `capacity` candidate heavy hitters.
    pub fn new(capacity: usize) -> Self {
        assert!(capacity > 0, "capacity must be positive");
        Self {
            capacity,
            entries: HashMap::with_capacity(capacity),
            total: 0,
        }
    }

    /// Capacity (maximum monitored items).
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Total stream weight observed.
    pub fn total(&self) -> u64 {
        self.total
    }

    /// Observe `count` occurrences of `item`.
    pub fn add(&mut self, item: &[u8], count: u64) {
        self.total += count;
        if let Some((c, _)) = self.entries.get_mut(item) {
            *c += count;
            return;
        }
        if self.entries.len() < self.capacity {
            self.entries.insert(item.to_vec(), (count, 0));
            return;
        }
        // Evict the minimum entry; newcomer inherits its count as error.
        let (min_item, min_count) = self
            .entries
            .iter()
            .min_by_key(|(_, (c, _))| *c)
            .map(|(k, (c, _))| (k.clone(), *c))
            .expect("table is full, so non-empty");
        self.entries.remove(&min_item);
        self.entries
            .insert(item.to_vec(), (min_count + count, min_count));
    }

    /// Estimated count of `item` (0 if not monitored).
    pub fn estimate(&self, item: &[u8]) -> u64 {
        self.entries.get(item).map_or(0, |&(c, _)| c)
    }

    /// Guaranteed lower bound on the true count of `item`.
    pub fn lower_bound(&self, item: &[u8]) -> u64 {
        self.entries.get(item).map_or(0, |&(c, e)| c - e)
    }

    /// All monitored items, most frequent first.
    pub fn heavy_hitters(&self) -> Vec<HeavyHitter> {
        let mut v: Vec<HeavyHitter> = self
            .entries
            .iter()
            .map(|(item, &(count, error))| HeavyHitter {
                item: item.clone(),
                count,
                error,
            })
            .collect();
        v.sort_by(|a, b| b.count.cmp(&a.count).then(a.item.cmp(&b.item)));
        v
    }

    /// Items whose *guaranteed* count exceeds `phi * total` — i.e. reported
    /// with no false positives.
    pub fn guaranteed_hitters(&self, phi: f64) -> Vec<HeavyHitter> {
        let threshold = (phi * self.total as f64) as u64;
        self.heavy_hitters()
            .into_iter()
            .filter(|h| h.count - h.error > threshold)
            .collect()
    }

    /// The theoretical maximum error of any estimate: N / capacity.
    pub fn error_bound(&self) -> u64 {
        self.total / self.capacity as u64
    }
}

impl Mergeable for SpaceSaving {
    /// Merge per Agarwal et al.: sum counts/errors of common items, keep
    /// the `capacity` largest, and fold evicted mass into errors implicitly
    /// (entries absent from one side keep their own counts). The result
    /// preserves the overestimate property with error ≤ N₁/c + N₂/c.
    fn merge(&mut self, other: &Self) -> Result<(), MergeError> {
        if self.capacity != other.capacity {
            return Err(MergeError::new("capacity mismatch"));
        }
        for (item, &(c, e)) in &other.entries {
            let entry = self.entries.entry(item.clone()).or_insert((0, 0));
            entry.0 += c;
            entry.1 += e;
        }
        self.total += other.total;
        if self.entries.len() > self.capacity {
            let mut all: Vec<(Vec<u8>, (u64, u64))> = self.entries.drain().collect();
            all.sort_by_key(|(_, (count, _))| std::cmp::Reverse(*count));
            all.truncate(self.capacity);
            self.entries = all.into_iter().collect();
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use taureau_core::rng::{det_rng, Zipf};

    #[test]
    fn exact_when_under_capacity() {
        let mut ss = SpaceSaving::new(10);
        ss.add(b"a", 5);
        ss.add(b"b", 3);
        ss.add(b"a", 2);
        assert_eq!(ss.estimate(b"a"), 7);
        assert_eq!(ss.estimate(b"b"), 3);
        assert_eq!(ss.lower_bound(b"a"), 7);
        assert_eq!(ss.total(), 10);
    }

    #[test]
    fn finds_true_heavy_hitters_on_zipf() {
        let z = Zipf::new(10_000, 1.2);
        let mut r = det_rng(3);
        let mut ss = SpaceSaving::new(100);
        let mut truth = vec![0u64; 10_000];
        let n = 100_000;
        for _ in 0..n {
            let item = z.sample(&mut r);
            truth[item] += 1;
            ss.add(&(item as u64).to_le_bytes(), 1);
        }
        // Every item with truth > N/capacity must be monitored.
        let bound = n / 100;
        for (i, &t) in truth.iter().enumerate() {
            if t > bound {
                let est = ss.estimate(&(i as u64).to_le_bytes());
                assert!(est >= t, "heavy item {i} missing or undercounted");
            }
        }
    }

    #[test]
    fn estimates_are_overestimates_with_bounded_error() {
        let z = Zipf::new(1000, 1.0);
        let mut r = det_rng(4);
        let mut ss = SpaceSaving::new(50);
        let mut truth = vec![0u64; 1000];
        for _ in 0..50_000 {
            let item = z.sample(&mut r);
            truth[item] += 1;
            ss.add(&(item as u64).to_le_bytes(), 1);
        }
        for h in ss.heavy_hitters() {
            let idx = u64::from_le_bytes(h.item.as_slice().try_into().unwrap()) as usize;
            let t = truth[idx];
            assert!(h.count >= t, "underestimate for {idx}");
            assert!(h.count - h.error <= t, "lower bound violated for {idx}");
            assert!(h.error <= ss.error_bound(), "error beyond N/capacity");
        }
    }

    #[test]
    fn guaranteed_hitters_have_no_false_positives() {
        let z = Zipf::new(500, 1.3);
        let mut r = det_rng(5);
        let mut ss = SpaceSaving::new(64);
        let mut truth = vec![0u64; 500];
        let n = 40_000u64;
        for _ in 0..n {
            let item = z.sample(&mut r);
            truth[item] += 1;
            ss.add(&(item as u64).to_le_bytes(), 1);
        }
        let phi = 0.01;
        for h in ss.guaranteed_hitters(phi) {
            let idx = u64::from_le_bytes(h.item.as_slice().try_into().unwrap()) as usize;
            assert!(
                truth[idx] as f64 > phi * n as f64,
                "false positive: item {idx} truth {}",
                truth[idx]
            );
        }
    }

    #[test]
    fn merge_preserves_overestimates() {
        let z = Zipf::new(300, 1.1);
        let mut r = det_rng(6);
        let mut a = SpaceSaving::new(40);
        let mut b = SpaceSaving::new(40);
        let mut truth = vec![0u64; 300];
        for i in 0..30_000 {
            let item = z.sample(&mut r);
            truth[item] += 1;
            let key = (item as u64).to_le_bytes();
            if i % 2 == 0 {
                a.add(&key, 1);
            } else {
                b.add(&key, 1);
            }
        }
        a.merge(&b).unwrap();
        assert_eq!(a.total(), 30_000);
        assert!(a.heavy_hitters().len() <= 40);
        // Monitored items must still be overestimates.
        for h in a.heavy_hitters() {
            let idx = u64::from_le_bytes(h.item.as_slice().try_into().unwrap()) as usize;
            assert!(h.count >= truth[idx] || h.count >= a.lower_bound(&h.item));
        }
    }

    #[test]
    fn merge_rejects_capacity_mismatch() {
        let mut a = SpaceSaving::new(10);
        let b = SpaceSaving::new(20);
        assert!(a.merge(&b).is_err());
    }
}
