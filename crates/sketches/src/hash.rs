//! Seeded 64-bit hashing for sketches.
//!
//! Re-exported from `taureau_core::hash` so every crate in the workspace
//! (Jiffy's partitioner, Pulsar's topic router, the sketches here) uses the
//! same deterministic hash family.

pub use taureau_core::hash::{hash64, HashPair};
