//! Serverless fleet simulation.
//!
//! Replays a [`Workload`] against a simulated FaaS control plane: each
//! request either reuses a warm container (if one is idle and within its
//! keep-alive window) or pays a cold start. Capacity is demand-driven and
//! unbounded (the provider's promise), billing is fine-grained per request,
//! and the outcome carries everything E1/E2/E11 report: cost, cold-start
//! fraction, latency percentiles, and container-seconds (the provider-side
//! resource footprint).

use std::collections::BinaryHeap;
use std::time::Duration;

use taureau_core::cost::{Dollars, FaasPricing};
use taureau_core::latency::LatencyModel;
use taureau_core::metrics::{Histogram, MetricsRegistry};
use taureau_core::rng::det_rng;

use crate::workload::Workload;

/// Simulation parameters.
#[derive(Debug, Clone)]
pub struct ServerlessConfig {
    /// Billing model.
    pub pricing: FaasPricing,
    /// Warm keep-alive window.
    pub keep_alive: Duration,
    /// Cold-start latency model.
    pub cold_start: LatencyModel,
    /// Warm-dispatch latency model.
    pub warm_start: LatencyModel,
    /// Containers pinned warm (provisioned concurrency), never reaped.
    pub provisioned: u32,
    /// RNG seed for latency sampling.
    pub seed: u64,
}

impl Default for ServerlessConfig {
    fn default() -> Self {
        Self {
            pricing: FaasPricing::default(),
            keep_alive: Duration::from_secs(600),
            cold_start: taureau_core::latency::profiles::cold_start(),
            warm_start: taureau_core::latency::profiles::warm_start(),
            provisioned: 0,
            seed: 0xFAA5,
        }
    }
}

/// Results of replaying a workload on the serverless fleet.
#[derive(Debug)]
pub struct ServerlessOutcome {
    /// Requests served.
    pub requests: u64,
    /// Requests that paid a cold start.
    pub cold_starts: u64,
    /// Total dollars billed to the user.
    pub cost: Dollars,
    /// End-to-end latency (startup + execution), microseconds histogram.
    pub latency_us: Histogram,
    /// Total container-seconds the provider ran (busy + idle-warm) — the
    /// provider-side footprint that multiplexing reduces.
    pub container_seconds: f64,
    /// Peak simultaneous containers.
    pub peak_containers: u64,
}

impl ServerlessOutcome {
    /// Fraction of requests that were cold.
    pub fn cold_fraction(&self) -> f64 {
        if self.requests == 0 {
            0.0
        } else {
            self.cold_starts as f64 / self.requests as f64
        }
    }

    /// Publish this outcome into a metrics registry: request/cold-start
    /// counters, peak-container and container-second gauges, and the
    /// end-to-end latency histogram.
    pub fn export_metrics(&self, registry: &MetricsRegistry) {
        registry.counter("requests").add(self.requests);
        registry.counter("cold_starts").add(self.cold_starts);
        registry
            .gauge("peak_containers")
            .set(self.peak_containers as i64);
        registry
            .gauge("container_seconds")
            .set(self.container_seconds.round() as i64);
        registry
            .histogram("latency_us")
            .merge_from(&self.latency_us);
    }
}

/// A container's lifecycle record during simulation.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
struct IdleContainer {
    /// When the container last became idle.
    idle_since_ns: u64,
    /// When it was created.
    created_ns: u64,
}

/// Replay a workload against a serverless fleet.
///
/// The matching is greedy in arrival order: a request takes the
/// most-recently-idled warm container (LIFO — maximising reuse, which is
/// what real schedulers do), otherwise cold-starts a new one. Containers
/// idle past `keep_alive` are reaped, closing their billing window for
/// container-seconds.
pub fn simulate_serverless(workload: &Workload, cfg: &ServerlessConfig) -> ServerlessOutcome {
    let mut rng = det_rng(cfg.seed);
    let keep_alive_ns = cfg.keep_alive.as_nanos() as u64;

    // Busy containers as a min-heap of (free_at_ns, created_ns).
    let mut busy: BinaryHeap<std::cmp::Reverse<(u64, u64)>> = BinaryHeap::new();
    // Idle warm containers, most recently idled last (LIFO reuse).
    let mut idle: Vec<IdleContainer> = Vec::new();

    let mut cold_starts = 0u64;
    let mut cost = 0.0;
    let latency_us = Histogram::new();
    let mut container_seconds = 0.0f64;
    let mut peak = 0u64;

    // Provisioned containers exist from t=0 and never expire.
    for _ in 0..cfg.provisioned {
        idle.push(IdleContainer {
            idle_since_ns: 0,
            created_ns: 0,
        });
    }
    let provisioned = cfg.provisioned as usize;

    for req in &workload.requests {
        let now_ns = req.at.as_nanos() as u64;

        // Move containers whose work finished before now to the idle list.
        while let Some(&std::cmp::Reverse((free_at, created))) = busy.peek() {
            if free_at <= now_ns {
                busy.pop();
                idle.push(IdleContainer {
                    idle_since_ns: free_at,
                    created_ns: created,
                });
            } else {
                break;
            }
        }
        idle.sort_by_key(|c| c.idle_since_ns);
        // Reap expired warm containers (beyond the provisioned floor).
        let mut i = 0;
        while idle.len() > provisioned && i < idle.len() {
            let c = idle[i];
            if now_ns.saturating_sub(c.idle_since_ns) > keep_alive_ns {
                // Container dies at idle_since + keep_alive.
                let death_ns = c.idle_since_ns + keep_alive_ns;
                container_seconds += (death_ns - c.created_ns) as f64 / 1e9;
                idle.remove(i);
            } else {
                i += 1;
            }
        }

        let (startup, created_ns) = match idle.pop() {
            Some(c) => (cfg.warm_start.sample(&mut rng), c.created_ns),
            None => {
                cold_starts += 1;
                (cfg.cold_start.sample(&mut rng), now_ns)
            }
        };
        let latency = startup + req.duration;
        latency_us.record(latency.as_micros() as u64);
        cost += cfg.pricing.invocation_cost(req.memory, req.duration);
        let free_at = now_ns + latency.as_nanos() as u64;
        busy.push(std::cmp::Reverse((free_at, created_ns)));
        peak = peak.max((busy.len() + idle.len()) as u64);
    }

    // Account container-seconds for everything still alive at the end of
    // the trace: busy containers until they free, idle ones until their
    // keep-alive lapses (capped at the horizon).
    let end_ns = workload.horizon.as_nanos() as u64;
    for std::cmp::Reverse((free_at, created)) in busy.drain() {
        container_seconds += (free_at.max(created) - created) as f64 / 1e9;
    }
    for c in idle.drain(..) {
        let death = (c.idle_since_ns + keep_alive_ns).min(end_ns.max(c.idle_since_ns));
        container_seconds += (death - c.created_ns) as f64 / 1e9;
    }

    ServerlessOutcome {
        requests: workload.requests.len() as u64,
        cold_starts,
        cost,
        latency_us,
        container_seconds,
        peak_containers: peak,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::workload::{Request, WorkloadSpec};
    use taureau_core::bytesize::ByteSize;

    fn det_cfg(keep_alive: Duration) -> ServerlessConfig {
        ServerlessConfig {
            keep_alive,
            cold_start: LatencyModel::Constant(Duration::from_millis(200)),
            warm_start: LatencyModel::Constant(Duration::from_millis(2)),
            ..ServerlessConfig::default()
        }
    }

    fn workload_at(times_ms: &[u64], dur_ms: u64) -> Workload {
        Workload {
            requests: times_ms
                .iter()
                .map(|&t| Request {
                    at: Duration::from_millis(t),
                    duration: Duration::from_millis(dur_ms),
                    memory: ByteSize::mb(512),
                })
                .collect(),
            horizon: Duration::from_secs(3600),
        }
    }

    #[test]
    fn sequential_requests_reuse_one_container() {
        // Requests spaced wider than their duration: one container, one
        // cold start.
        let w = workload_at(&[0, 1000, 2000, 3000], 100);
        let o = simulate_serverless(&w, &det_cfg(Duration::from_secs(60)));
        assert_eq!(o.requests, 4);
        assert_eq!(o.cold_starts, 1);
        assert_eq!(o.peak_containers, 1);
    }

    #[test]
    fn concurrent_burst_scales_out() {
        // Four simultaneous requests need four containers.
        let w = workload_at(&[0, 0, 0, 0], 500);
        let o = simulate_serverless(&w, &det_cfg(Duration::from_secs(60)));
        assert_eq!(o.cold_starts, 4);
        assert_eq!(o.peak_containers, 4);
    }

    #[test]
    fn keep_alive_expiry_forces_new_cold_start() {
        let keep = Duration::from_secs(10);
        // Second request arrives 30 s later: the warm container is gone.
        let w = workload_at(&[0, 30_000], 100);
        let o = simulate_serverless(&w, &det_cfg(keep));
        assert_eq!(o.cold_starts, 2);
        // Within keep-alive it would have been warm:
        let w2 = workload_at(&[0, 5_000], 100);
        let o2 = simulate_serverless(&w2, &det_cfg(keep));
        assert_eq!(o2.cold_starts, 1);
    }

    #[test]
    fn provisioned_concurrency_removes_cold_starts() {
        let w = workload_at(&[0, 0, 1000], 100);
        let mut cfg = det_cfg(Duration::from_secs(60));
        cfg.provisioned = 2;
        let o = simulate_serverless(&w, &cfg);
        assert_eq!(o.cold_starts, 0);
    }

    #[test]
    fn billing_matches_hand_computation() {
        let w = workload_at(&[0, 1000], 250);
        let o = simulate_serverless(&w, &det_cfg(Duration::from_secs(60)));
        let per =
            FaasPricing::default().invocation_cost(ByteSize::mb(512), Duration::from_millis(250));
        assert!((o.cost - 2.0 * per).abs() < 1e-12);
    }

    #[test]
    fn cold_fraction_drops_with_longer_keep_alive() {
        let spec = WorkloadSpec::Poisson { rate: 2.0 };
        let w = spec.generate(
            Duration::from_secs(3600),
            &LatencyModel::Constant(Duration::from_millis(100)),
            ByteSize::mb(512),
            42,
        );
        let short = simulate_serverless(&w, &det_cfg(Duration::from_secs(5)));
        let long = simulate_serverless(&w, &det_cfg(Duration::from_secs(600)));
        assert!(
            long.cold_fraction() < short.cold_fraction(),
            "short {} long {}",
            short.cold_fraction(),
            long.cold_fraction()
        );
        // And longer keep-alive costs the provider more container-seconds.
        assert!(long.container_seconds > short.container_seconds);
    }

    #[test]
    fn export_metrics_mirrors_outcome() {
        let w = workload_at(&[0, 1000, 2000], 100);
        let o = simulate_serverless(&w, &det_cfg(Duration::from_secs(60)));
        let reg = MetricsRegistry::new();
        o.export_metrics(&reg);
        assert_eq!(reg.counter("requests").get(), o.requests);
        assert_eq!(reg.counter("cold_starts").get(), o.cold_starts);
        assert_eq!(reg.gauge("peak_containers").get(), o.peak_containers as i64);
        let h = reg.histogram("latency_us");
        assert_eq!(h.count(), o.latency_us.count());
        assert_eq!(h.max(), o.latency_us.max());
        assert_eq!(h.p50(), o.latency_us.p50());
    }

    #[test]
    fn latency_histogram_separates_cold_and_warm() {
        let w = workload_at(&[0, 1000, 2000, 3000, 4000], 50);
        let o = simulate_serverless(&w, &det_cfg(Duration::from_secs(60)));
        // Max latency includes the 200 ms cold start; min only the 2 ms
        // warm dispatch.
        assert!(o.latency_us.max() >= 250_000);
        assert!(o.latency_us.min() <= 60_000);
    }
}
