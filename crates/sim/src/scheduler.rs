//! Bin-packing placement — §6's look-forward.
//!
//! "Future research may explore bin-packing techniques that 'pack'
//! different functions together based on heuristics that ensure performance
//! isolation, e.g., by packing together functions that have complementary
//! … resource requirements (e.g., CPU/GPU/TPU), ensuring they do not
//! contend with each other."
//!
//! This module implements that experiment (E12): function instances with
//! two-dimensional demands (CPU, memory) are placed onto nodes by one of
//! several heuristics, and the outcome reports node count, fragmentation,
//! and per-dimension *imbalance* (the contention proxy: a node maxed on
//! CPU with idle memory means CPU-bound functions are contending while
//! memory sits stranded).

use serde::{Deserialize, Serialize};

/// A function instance's resource demand, normalised to node capacity
/// (each dimension in `(0, 1]`).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Demand {
    /// CPU share.
    pub cpu: f64,
    /// Memory share.
    pub mem: f64,
}

impl Demand {
    /// A demand; panics outside `(0, 1]`.
    pub fn new(cpu: f64, mem: f64) -> Self {
        assert!(cpu > 0.0 && cpu <= 1.0, "cpu {cpu}");
        assert!(mem > 0.0 && mem <= 1.0, "mem {mem}");
        Self { cpu, mem }
    }
}

/// Placement heuristics.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PackingPolicy {
    /// First node with room.
    FirstFit,
    /// Node left tightest (minimum remaining capacity) after placement.
    BestFit,
    /// Node left loosest after placement.
    WorstFit,
    /// §6's proposal: prefer the node where the item's demand most evens
    /// out the node's CPU/memory usage (pack CPU-heavy with memory-heavy).
    Complementary,
}

/// One node's running totals.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct NodeLoad {
    /// Sum of placed CPU shares.
    pub cpu: f64,
    /// Sum of placed memory shares.
    pub mem: f64,
}

impl NodeLoad {
    fn fits(&self, d: Demand) -> bool {
        self.cpu + d.cpu <= 1.0 + 1e-9 && self.mem + d.mem <= 1.0 + 1e-9
    }

    fn add(&mut self, d: Demand) {
        self.cpu += d.cpu;
        self.mem += d.mem;
    }

    /// |cpu - mem| after hypothetically adding `d` — the balance score the
    /// complementary policy minimises.
    fn imbalance_with(&self, d: Demand) -> f64 {
        ((self.cpu + d.cpu) - (self.mem + d.mem)).abs()
    }

    /// Remaining capacity (sum over dimensions).
    fn slack(&self) -> f64 {
        (1.0 - self.cpu) + (1.0 - self.mem)
    }
}

/// The result of packing a set of demands.
#[derive(Debug, Clone)]
pub struct PackingOutcome {
    /// Per-node loads (length = nodes used).
    pub nodes: Vec<NodeLoad>,
    /// Item → node assignment.
    pub assignment: Vec<usize>,
}

impl PackingOutcome {
    /// Nodes used.
    pub fn node_count(&self) -> usize {
        self.nodes.len()
    }

    /// Mean per-node |cpu − mem| imbalance: high means nodes are maxed on
    /// one dimension with the other stranded (the contention proxy).
    pub fn mean_imbalance(&self) -> f64 {
        if self.nodes.is_empty() {
            return 0.0;
        }
        self.nodes
            .iter()
            .map(|n| (n.cpu - n.mem).abs())
            .sum::<f64>()
            / self.nodes.len() as f64
    }

    /// Stranded capacity: total unused resource on used nodes, as a
    /// fraction of the total deployed (fragmentation measure).
    pub fn stranded_fraction(&self) -> f64 {
        if self.nodes.is_empty() {
            return 0.0;
        }
        let unused: f64 = self.nodes.iter().map(NodeLoad::slack).sum();
        unused / (2.0 * self.nodes.len() as f64)
    }
}

/// Pack `items` onto as few unit-capacity nodes as the policy manages,
/// in the given order (online packing).
pub fn pack(items: &[Demand], policy: PackingPolicy) -> PackingOutcome {
    let mut nodes: Vec<NodeLoad> = Vec::new();
    let mut assignment = Vec::with_capacity(items.len());
    for &item in items {
        let candidate = match policy {
            PackingPolicy::FirstFit => nodes.iter().position(|n| n.fits(item)),
            PackingPolicy::BestFit => nodes
                .iter()
                .enumerate()
                .filter(|(_, n)| n.fits(item))
                .min_by(|a, b| {
                    let sa = a.1.slack();
                    let sb = b.1.slack();
                    sa.partial_cmp(&sb).expect("no NaN")
                })
                .map(|(i, _)| i),
            PackingPolicy::WorstFit => nodes
                .iter()
                .enumerate()
                .filter(|(_, n)| n.fits(item))
                .max_by(|a, b| {
                    let sa = a.1.slack();
                    let sb = b.1.slack();
                    sa.partial_cmp(&sb).expect("no NaN")
                })
                .map(|(i, _)| i),
            PackingPolicy::Complementary => nodes
                .iter()
                .enumerate()
                .filter(|(_, n)| n.fits(item))
                .min_by(|a, b| {
                    let ia = a.1.imbalance_with(item);
                    let ib = b.1.imbalance_with(item);
                    ia.partial_cmp(&ib).expect("no NaN")
                })
                .map(|(i, _)| i),
        };
        let idx = match candidate {
            Some(i) => i,
            None => {
                nodes.push(NodeLoad::default());
                nodes.len() - 1
            }
        };
        nodes[idx].add(item);
        assignment.push(idx);
    }
    PackingOutcome { nodes, assignment }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::Rng;
    use taureau_core::rng::det_rng;

    fn cpu_heavy() -> Demand {
        Demand::new(0.6, 0.1)
    }

    fn mem_heavy() -> Demand {
        Demand::new(0.1, 0.6)
    }

    #[test]
    fn capacity_is_respected_by_all_policies() {
        let mut rng = det_rng(1);
        let items: Vec<Demand> = (0..200)
            .map(|_| Demand::new(rng.gen_range(0.05..0.5), rng.gen_range(0.05..0.5)))
            .collect();
        for policy in [
            PackingPolicy::FirstFit,
            PackingPolicy::BestFit,
            PackingPolicy::WorstFit,
            PackingPolicy::Complementary,
        ] {
            let out = pack(&items, policy);
            for (i, n) in out.nodes.iter().enumerate() {
                assert!(n.cpu <= 1.0 + 1e-9, "{policy:?} node {i} cpu {}", n.cpu);
                assert!(n.mem <= 1.0 + 1e-9, "{policy:?} node {i} mem {}", n.mem);
            }
            assert_eq!(out.assignment.len(), items.len());
        }
    }

    #[test]
    fn complementary_pairs_cpu_with_mem_heavy() {
        // Alternate CPU-heavy and memory-heavy items. Complementary
        // packing should co-locate opposites: ~1 node per pair.
        let mut items = Vec::new();
        for _ in 0..10 {
            items.push(cpu_heavy());
            items.push(mem_heavy());
        }
        let comp = pack(&items, PackingPolicy::Complementary);
        assert!(
            comp.mean_imbalance() < 0.2,
            "complementary imbalance {}",
            comp.mean_imbalance()
        );
        // Pairing means one node holds a cpu-heavy and a mem-heavy item:
        // node usage (0.7, 0.7). 20 items → ~10 nodes.
        assert!(comp.node_count() <= 12, "nodes {}", comp.node_count());
    }

    #[test]
    fn complementary_beats_firstfit_on_imbalance_for_skewed_mix() {
        // All CPU-heavy first, then all memory-heavy: first-fit fills nodes
        // with same-kind items; complementary mixes once the second wave
        // arrives… with online arrival it can only do better or equal.
        let mut rng = det_rng(2);
        let mut items = Vec::new();
        for _ in 0..60 {
            if rng.gen::<bool>() {
                items.push(Demand::new(
                    rng.gen_range(0.4..0.7),
                    rng.gen_range(0.05..0.15),
                ));
            } else {
                items.push(Demand::new(
                    rng.gen_range(0.05..0.15),
                    rng.gen_range(0.4..0.7),
                ));
            }
        }
        let ff = pack(&items, PackingPolicy::FirstFit);
        let comp = pack(&items, PackingPolicy::Complementary);
        assert!(
            comp.mean_imbalance() <= ff.mean_imbalance() + 1e-9,
            "comp {} vs ff {}",
            comp.mean_imbalance(),
            ff.mean_imbalance()
        );
    }

    #[test]
    fn bestfit_uses_no_more_nodes_than_worstfit_on_uniform_items() {
        let mut rng = det_rng(3);
        let items: Vec<Demand> = (0..100)
            .map(|_| {
                let s = rng.gen_range(0.2..0.45);
                Demand::new(s, s)
            })
            .collect();
        let bf = pack(&items, PackingPolicy::BestFit);
        let wf = pack(&items, PackingPolicy::WorstFit);
        assert!(bf.node_count() <= wf.node_count());
    }

    #[test]
    fn single_oversized_item_gets_own_node() {
        let items = vec![Demand::new(1.0, 1.0), Demand::new(0.5, 0.5)];
        let out = pack(&items, PackingPolicy::FirstFit);
        assert_eq!(out.node_count(), 2);
        assert_eq!(out.assignment, vec![0, 1]);
    }

    #[test]
    fn stranded_fraction_reflects_waste() {
        // One tiny item on one node: nearly everything stranded.
        let out = pack(&[Demand::new(0.1, 0.1)], PackingPolicy::FirstFit);
        assert!(out.stranded_fraction() > 0.85);
        // Perfectly filled node: nothing stranded.
        let out = pack(
            &[Demand::new(0.5, 0.5), Demand::new(0.5, 0.5)],
            PackingPolicy::FirstFit,
        );
        assert!(out.stranded_fraction() < 1e-9);
    }
}
