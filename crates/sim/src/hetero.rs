//! Heterogeneous placement — §6's "Hardware Heterogeneity" look-forward.
//!
//! "Existing platforms mainly cater to users with general-purpose compute
//! needs, but largely ignore users that rely on specialized compute
//! resources like GPUs, TPUs and FPGAs. … the lack of these resources in
//! the serverless ecosystem is not fundamental."
//!
//! This module extends the bin-packing experiment to a fleet with
//! *accelerator* nodes: demands carry a third dimension (GPU share), only
//! accelerator nodes can host GPU work, and the interesting failure mode
//! is **accelerator stranding** — CPU-only functions filling up expensive
//! GPU nodes so GPU work cannot place. The accelerator-aware policy keeps
//! GPU nodes for GPU work unless the CPU fleet is exhausted.

use serde::{Deserialize, Serialize};

/// A function instance's demand across three resource dimensions,
/// normalised to node capacity.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct HeteroDemand {
    /// CPU share in `(0, 1]`.
    pub cpu: f64,
    /// Memory share in `(0, 1]`.
    pub mem: f64,
    /// GPU share in `[0, 1]` (0 = CPU-only function).
    pub gpu: f64,
}

impl HeteroDemand {
    /// A demand; panics outside the valid ranges.
    pub fn new(cpu: f64, mem: f64, gpu: f64) -> Self {
        assert!(cpu > 0.0 && cpu <= 1.0);
        assert!(mem > 0.0 && mem <= 1.0);
        assert!((0.0..=1.0).contains(&gpu));
        Self { cpu, mem, gpu }
    }

    /// Whether this function needs an accelerator.
    pub fn needs_gpu(&self) -> bool {
        self.gpu > 0.0
    }
}

/// Node flavours in the fleet.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum NodeKind {
    /// General-purpose node: no GPU.
    Cpu,
    /// Accelerator node: one GPU's worth of capacity, plus CPU/memory.
    Gpu,
}

/// A node's load across the three dimensions.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct HeteroNode {
    /// Flavour.
    pub kind: NodeKind,
    /// CPU used.
    pub cpu: f64,
    /// Memory used.
    pub mem: f64,
    /// GPU used (always 0 on CPU nodes).
    pub gpu: f64,
}

impl HeteroNode {
    fn new(kind: NodeKind) -> Self {
        Self {
            kind,
            cpu: 0.0,
            mem: 0.0,
            gpu: 0.0,
        }
    }

    fn fits(&self, d: HeteroDemand) -> bool {
        if d.needs_gpu() && self.kind != NodeKind::Gpu {
            return false;
        }
        self.cpu + d.cpu <= 1.0 + 1e-9
            && self.mem + d.mem <= 1.0 + 1e-9
            && self.gpu + d.gpu <= 1.0 + 1e-9
    }

    fn add(&mut self, d: HeteroDemand) {
        self.cpu += d.cpu;
        self.mem += d.mem;
        self.gpu += d.gpu;
    }
}

/// Heterogeneous placement policies.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum HeteroPolicy {
    /// First fit over all nodes, oblivious to flavour (CPU work happily
    /// lands on GPU nodes).
    Oblivious,
    /// Accelerator-aware: CPU-only work prefers CPU nodes, opening a GPU
    /// node only when no CPU node fits; GPU work packs GPU nodes first-fit.
    AcceleratorAware,
}

/// Per-hour node prices used by the cost report (GPU nodes cost a
/// multiple of CPU nodes — p3 vs m5 class).
#[derive(Debug, Clone, Copy)]
pub struct HeteroPricing {
    /// Dollars per CPU-node hour.
    pub cpu_node: f64,
    /// Dollars per GPU-node hour.
    pub gpu_node: f64,
}

impl Default for HeteroPricing {
    fn default() -> Self {
        Self {
            cpu_node: 0.096,
            gpu_node: 3.06,
        }
    }
}

/// Outcome of heterogeneous packing.
#[derive(Debug)]
pub struct HeteroOutcome {
    /// Nodes opened.
    pub nodes: Vec<HeteroNode>,
    /// Item → node index; `None` if the item could not be placed (GPU
    /// work with all accelerators stranded).
    pub assignment: Vec<Option<usize>>,
}

impl HeteroOutcome {
    /// Nodes of each flavour opened.
    pub fn node_counts(&self) -> (usize, usize) {
        let cpu = self
            .nodes
            .iter()
            .filter(|n| n.kind == NodeKind::Cpu)
            .count();
        (cpu, self.nodes.len() - cpu)
    }

    /// Items that failed to place.
    pub fn unplaced(&self) -> usize {
        self.assignment.iter().filter(|a| a.is_none()).count()
    }

    /// GPU capacity stranded: unused GPU on opened accelerator nodes whose
    /// CPU or memory is ≥ 80% full (i.e. blocked by non-GPU colonists).
    pub fn stranded_gpu(&self) -> f64 {
        self.nodes
            .iter()
            .filter(|n| n.kind == NodeKind::Gpu && (n.cpu >= 0.8 || n.mem >= 0.8))
            .map(|n| 1.0 - n.gpu)
            .sum()
    }

    /// Fleet cost per hour.
    pub fn hourly_cost(&self, pricing: HeteroPricing) -> f64 {
        let (cpu, gpu) = self.node_counts();
        cpu as f64 * pricing.cpu_node + gpu as f64 * pricing.gpu_node
    }
}

/// Pack items online onto an elastic fleet (nodes open on demand, at most
/// `max_gpu_nodes` accelerators).
pub fn pack_hetero(
    items: &[HeteroDemand],
    policy: HeteroPolicy,
    max_gpu_nodes: usize,
) -> HeteroOutcome {
    let mut nodes: Vec<HeteroNode> = Vec::new();
    let mut assignment = Vec::with_capacity(items.len());
    for &item in items {
        let slot = match policy {
            HeteroPolicy::Oblivious => nodes.iter().position(|n| n.fits(item)),
            HeteroPolicy::AcceleratorAware => {
                if item.needs_gpu() {
                    nodes
                        .iter()
                        .position(|n| n.kind == NodeKind::Gpu && n.fits(item))
                } else {
                    // CPU work never colonises accelerator nodes: CPU
                    // capacity is elastic (a new node is cheaper than a
                    // stranded GPU).
                    nodes
                        .iter()
                        .position(|n| n.kind == NodeKind::Cpu && n.fits(item))
                }
            }
        };
        let idx = match slot {
            Some(i) => Some(i),
            None => {
                // Open a new node of the cheapest adequate flavour.
                let gpu_nodes = nodes.iter().filter(|n| n.kind == NodeKind::Gpu).count();
                if item.needs_gpu() {
                    if gpu_nodes < max_gpu_nodes {
                        nodes.push(HeteroNode::new(NodeKind::Gpu));
                        Some(nodes.len() - 1)
                    } else {
                        None // accelerators exhausted
                    }
                } else {
                    nodes.push(HeteroNode::new(NodeKind::Cpu));
                    Some(nodes.len() - 1)
                }
            }
        };
        if let Some(i) = idx {
            nodes[i].add(item);
        }
        assignment.push(idx);
    }
    HeteroOutcome { nodes, assignment }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cpu_job() -> HeteroDemand {
        HeteroDemand::new(0.5, 0.5, 0.0)
    }

    fn gpu_job() -> HeteroDemand {
        HeteroDemand::new(0.2, 0.2, 0.25)
    }

    #[test]
    fn gpu_work_only_lands_on_gpu_nodes() {
        let out = pack_hetero(&[gpu_job(), cpu_job()], HeteroPolicy::Oblivious, 4);
        for (i, a) in out.assignment.iter().enumerate() {
            let node = out.nodes[a.unwrap()];
            if out.nodes[a.unwrap()].gpu > 0.0 {
                assert_eq!(node.kind, NodeKind::Gpu, "item {i}");
            }
        }
    }

    #[test]
    fn oblivious_placement_strands_accelerators() {
        // CPU jobs arrive first and (obliviously) colonise the GPU nodes
        // opened by early GPU work; later GPU jobs cannot place.
        let mut items = vec![gpu_job()];
        items.extend(std::iter::repeat_n(cpu_job(), 8));
        items.extend(std::iter::repeat_n(gpu_job(), 3));
        let oblivious = pack_hetero(&items, HeteroPolicy::Oblivious, 1);
        let aware = pack_hetero(&items, HeteroPolicy::AcceleratorAware, 1);
        // The oblivious packer filled the single GPU node's CPU with
        // general work, so at least one GPU job failed.
        assert!(oblivious.unplaced() > 0, "expected stranding");
        assert_eq!(aware.unplaced(), 0, "aware policy must place everything");
    }

    #[test]
    fn aware_policy_is_cheaper_on_mixed_fleets() {
        use rand::Rng;
        let mut rng = taureau_core::rng::det_rng(7);
        let items: Vec<HeteroDemand> = (0..200)
            .map(|_| {
                if rng.gen::<f64>() < 0.2 {
                    HeteroDemand::new(
                        rng.gen_range(0.1..0.3),
                        rng.gen_range(0.1..0.3),
                        rng.gen_range(0.3..0.6),
                    )
                } else {
                    HeteroDemand::new(rng.gen_range(0.2..0.5), rng.gen_range(0.2..0.5), 0.0)
                }
            })
            .collect();
        let oblivious = pack_hetero(&items, HeteroPolicy::Oblivious, 1000);
        let aware = pack_hetero(&items, HeteroPolicy::AcceleratorAware, 1000);
        assert_eq!(aware.unplaced(), 0);
        let pricing = HeteroPricing::default();
        assert!(
            aware.hourly_cost(pricing) <= oblivious.hourly_cost(pricing),
            "aware {} vs oblivious {}",
            aware.hourly_cost(pricing),
            oblivious.hourly_cost(pricing)
        );
        // And it strands less GPU capacity.
        assert!(aware.stranded_gpu() <= oblivious.stranded_gpu());
    }

    #[test]
    fn capacity_respected_in_all_dimensions() {
        use rand::Rng;
        let mut rng = taureau_core::rng::det_rng(8);
        let items: Vec<HeteroDemand> = (0..300)
            .map(|_| {
                HeteroDemand::new(
                    rng.gen_range(0.05..0.6),
                    rng.gen_range(0.05..0.6),
                    if rng.gen::<bool>() {
                        rng.gen_range(0.1..0.6)
                    } else {
                        0.0
                    },
                )
            })
            .collect();
        for policy in [HeteroPolicy::Oblivious, HeteroPolicy::AcceleratorAware] {
            let out = pack_hetero(&items, policy, 1000);
            for n in &out.nodes {
                assert!(n.cpu <= 1.0 + 1e-9 && n.mem <= 1.0 + 1e-9 && n.gpu <= 1.0 + 1e-9);
                if n.kind == NodeKind::Cpu {
                    assert_eq!(n.gpu, 0.0);
                }
            }
        }
    }
}
