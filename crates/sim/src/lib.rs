//! # taureau-sim
//!
//! A deterministic discrete-event simulator for the *cluster-scale*
//! questions in *Le Taureau* that cannot be answered by running real code
//! on a laptop: what does a day of bursty traffic cost on serverless vs. a
//! provisioned VM fleet (§2's cost-efficiency claim, experiment E1)? how do
//! autoscaling policies trade utilisation against tail latency (§2's
//! demand-driven execution and §6's SLA discussion, experiment E11)? how
//! should functions be bin-packed onto nodes (§6's look-forward,
//! experiment E12)?
//!
//! - [`workload`]: synthetic arrival traces — Poisson, diurnal (sinusoidal
//!   rate), and ON/OFF bursty — with log-normal execution durations. The
//!   paper's §3.2: "variable load over time, with the peak load being
//!   several times higher than the mean, and the minimum often being
//!   zero."
//! - [`serverless`]: a FaaS fleet simulator — per-request container
//!   matching with keep-alive, cold-start penalties, fine-grained billing.
//! - [`vmfleet`]: the server-centric baseline — a VM fleet (fixed or
//!   autoscaled) with boot delays, queueing, and per-hour billing.
//! - [`scheduler`]: bin-packing placement policies, including the
//!   complementary-resource packing §6 proposes.
//!
//! All simulation is seeded and deterministic: the same inputs produce the
//! same tables, run to run.

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

pub mod edge;
pub mod hetero;
pub mod scheduler;
pub mod serverless;
pub mod vmfleet;
pub mod workload;

pub use serverless::{ServerlessConfig, ServerlessOutcome};
pub use vmfleet::{VmFleetConfig, VmFleetOutcome, VmScalingPolicy};
pub use workload::{Request, Workload, WorkloadSpec};
