//! Synthetic workload generation.
//!
//! §3.2 characterises serverless applications by "variable load over time,
//! with the peak load being several times higher than the mean, and the
//! minimum often being zero". The generators here produce exactly those
//! shapes, deterministically from a seed:
//!
//! - [`WorkloadSpec::Poisson`]: constant-rate baseline.
//! - [`WorkloadSpec::Diurnal`]: sinusoidal day/night cycle with a
//!   configurable peak-to-mean ratio.
//! - [`WorkloadSpec::Bursty`]: ON/OFF process — long quiet stretches, then
//!   bursts (the "minimum often zero" case).

use std::time::Duration;

use rand::Rng;
use taureau_core::bytesize::ByteSize;
use taureau_core::latency::LatencyModel;
use taureau_core::rng::det_rng;

/// One request in a trace.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Request {
    /// Arrival offset from trace start.
    pub at: Duration,
    /// Execution duration (service time).
    pub duration: Duration,
    /// Memory the request's function is configured with.
    pub memory: ByteSize,
}

/// A generated trace: requests sorted by arrival time.
#[derive(Debug, Clone)]
pub struct Workload {
    /// Requests in arrival order.
    pub requests: Vec<Request>,
    /// Trace horizon.
    pub horizon: Duration,
}

impl Workload {
    /// Number of requests.
    pub fn len(&self) -> usize {
        self.requests.len()
    }

    /// Whether the trace is empty.
    pub fn is_empty(&self) -> bool {
        self.requests.is_empty()
    }

    /// Mean arrival rate over the horizon (req/s).
    pub fn mean_rate(&self) -> f64 {
        self.requests.len() as f64 / self.horizon.as_secs_f64()
    }

    /// Peak arrival rate over 1-second windows (req/s).
    pub fn peak_rate(&self) -> f64 {
        let secs = self.horizon.as_secs() as usize + 1;
        let mut buckets = vec![0u32; secs];
        for r in &self.requests {
            buckets[r.at.as_secs() as usize] += 1;
        }
        buckets.iter().copied().max().unwrap_or(0) as f64
    }

    /// Maximum concurrent in-flight requests at any instant (what a
    /// peak-provisioned fleet must be sized for).
    pub fn peak_concurrency(&self) -> u64 {
        let mut events: Vec<(Duration, i64)> = Vec::with_capacity(self.requests.len() * 2);
        for r in &self.requests {
            events.push((r.at, 1));
            events.push((r.at + r.duration, -1));
        }
        events.sort();
        let mut cur = 0i64;
        let mut peak = 0i64;
        for (_, d) in events {
            cur += d;
            peak = peak.max(cur);
        }
        peak as u64
    }
}

/// Arrival-process shapes.
#[derive(Debug, Clone)]
pub enum WorkloadSpec {
    /// Constant-rate Poisson arrivals.
    Poisson {
        /// Mean requests per second.
        rate: f64,
    },
    /// Sinusoidal rate: `mean * (1 + amplitude * sin(2πt/period))`,
    /// clamped at 0. `amplitude` near 1 gives a peak/mean ratio near 2;
    /// use [`WorkloadSpec::diurnal_with_peak_ratio`] for larger ratios.
    Diurnal {
        /// Mean requests per second.
        mean_rate: f64,
        /// Relative swing (0..).
        amplitude: f64,
        /// Cycle length.
        period: Duration,
    },
    /// ON/OFF bursts: Poisson at `on_rate` during ON windows, silence
    /// during OFF windows.
    Bursty {
        /// Rate inside a burst.
        on_rate: f64,
        /// Mean ON window length.
        on_mean: Duration,
        /// Mean OFF window length.
        off_mean: Duration,
    },
}

impl WorkloadSpec {
    /// A diurnal spec whose peak/mean ratio is approximately `ratio`
    /// (clamped ≥ 1): rate swings between ~0 and `ratio * mean`.
    pub fn diurnal_with_peak_ratio(mean_rate: f64, ratio: f64, period: Duration) -> Self {
        let ratio = ratio.max(1.0);
        WorkloadSpec::Diurnal {
            mean_rate,
            amplitude: ratio - 1.0,
            period,
        }
    }

    fn rate_at(&self, t: f64) -> f64 {
        match self {
            WorkloadSpec::Poisson { rate } => *rate,
            WorkloadSpec::Diurnal {
                mean_rate,
                amplitude,
                period,
            } => {
                let phase = std::f64::consts::TAU * t / period.as_secs_f64();
                (mean_rate * (1.0 + amplitude * phase.sin())).max(0.0)
            }
            WorkloadSpec::Bursty { .. } => unreachable!("bursty uses its own generator"),
        }
    }

    fn max_rate(&self) -> f64 {
        match self {
            WorkloadSpec::Poisson { rate } => *rate,
            WorkloadSpec::Diurnal {
                mean_rate,
                amplitude,
                ..
            } => mean_rate * (1.0 + amplitude),
            WorkloadSpec::Bursty { on_rate, .. } => *on_rate,
        }
    }

    /// Generate a trace over `horizon`, with service times drawn from
    /// `duration_model` and the given per-request memory.
    pub fn generate(
        &self,
        horizon: Duration,
        duration_model: &LatencyModel,
        memory: ByteSize,
        seed: u64,
    ) -> Workload {
        let mut rng = det_rng(seed);
        let h = horizon.as_secs_f64();
        let mut arrivals: Vec<f64> = Vec::new();
        match self {
            WorkloadSpec::Bursty {
                on_rate,
                on_mean,
                off_mean,
            } => {
                // Alternate ON/OFF windows with exponential lengths.
                let mut t = 0.0;
                let mut on = true;
                while t < h {
                    let mean = if on { on_mean } else { off_mean }.as_secs_f64();
                    let window = -rng.gen_range(f64::MIN_POSITIVE..1.0f64).ln() * mean;
                    let end = (t + window).min(h);
                    if on {
                        let mut a = t;
                        loop {
                            a += -rng.gen_range(f64::MIN_POSITIVE..1.0f64).ln() / on_rate;
                            if a >= end {
                                break;
                            }
                            arrivals.push(a);
                        }
                    }
                    t = end;
                    on = !on;
                }
            }
            _ => {
                // Thinning (Lewis–Shedler) against the max rate.
                let lambda_max = self.max_rate();
                let mut t = 0.0;
                while t < h {
                    t += -rng.gen_range(f64::MIN_POSITIVE..1.0f64).ln() / lambda_max;
                    if t >= h {
                        break;
                    }
                    if rng.gen::<f64>() * lambda_max <= self.rate_at(t) {
                        arrivals.push(t);
                    }
                }
            }
        }
        let requests = arrivals
            .into_iter()
            .map(|a| Request {
                at: Duration::from_secs_f64(a),
                duration: duration_model.sample(&mut rng),
                memory,
            })
            .collect();
        Workload { requests, horizon }
    }
}

/// The workspace-standard service-time model: log-normal with ~120 ms
/// median and a tail to seconds, matching published Lambda duration
/// distributions.
pub fn typical_duration_model() -> LatencyModel {
    LatencyModel::LogNormal {
        mu: 11.7,
        sigma: 0.8,
    } // exp(11.7) µs ≈ 120 ms
}

#[cfg(test)]
mod tests {
    use super::*;

    fn hour() -> Duration {
        Duration::from_secs(3600)
    }

    #[test]
    fn poisson_rate_matches() {
        let w = WorkloadSpec::Poisson { rate: 20.0 }.generate(
            hour(),
            &LatencyModel::Constant(Duration::from_millis(100)),
            ByteSize::mb(512),
            1,
        );
        assert!(
            (w.mean_rate() - 20.0).abs() / 20.0 < 0.05,
            "{}",
            w.mean_rate()
        );
        // Sorted arrivals.
        assert!(w.requests.windows(2).all(|p| p[0].at <= p[1].at));
    }

    #[test]
    fn diurnal_peak_to_mean_ratio() {
        let spec = WorkloadSpec::diurnal_with_peak_ratio(10.0, 5.0, Duration::from_secs(600));
        let w = spec.generate(
            hour(),
            &LatencyModel::Constant(Duration::from_millis(50)),
            ByteSize::mb(512),
            2,
        );
        let ratio = w.peak_rate() / w.mean_rate();
        // 1-second buckets are noisy; just require a clearly spiky shape.
        assert!(ratio > 2.5, "peak/mean ratio {ratio}");
    }

    #[test]
    fn bursty_has_quiet_stretches() {
        let spec = WorkloadSpec::Bursty {
            on_rate: 50.0,
            on_mean: Duration::from_secs(10),
            off_mean: Duration::from_secs(60),
        };
        let w = spec.generate(
            hour(),
            &LatencyModel::Constant(Duration::from_millis(100)),
            ByteSize::mb(512),
            3,
        );
        // Mean rate is far below the ON rate…
        assert!(w.mean_rate() < 25.0, "mean {}", w.mean_rate());
        // …and there exist multi-second gaps with zero arrivals.
        let max_gap = w
            .requests
            .windows(2)
            .map(|p| p[1].at - p[0].at)
            .max()
            .unwrap();
        assert!(max_gap > Duration::from_secs(20), "max gap {max_gap:?}");
    }

    #[test]
    fn determinism_per_seed() {
        let spec = WorkloadSpec::Poisson { rate: 5.0 };
        let model = typical_duration_model();
        let a = spec.generate(hour(), &model, ByteSize::mb(512), 7);
        let b = spec.generate(hour(), &model, ByteSize::mb(512), 7);
        let c = spec.generate(hour(), &model, ByteSize::mb(512), 8);
        assert_eq!(a.requests, b.requests);
        assert_ne!(a.requests, c.requests);
    }

    #[test]
    fn peak_concurrency_counts_overlap() {
        let w = Workload {
            requests: vec![
                Request {
                    at: Duration::ZERO,
                    duration: Duration::from_secs(10),
                    memory: ByteSize::mb(1),
                },
                Request {
                    at: Duration::from_secs(1),
                    duration: Duration::from_secs(10),
                    memory: ByteSize::mb(1),
                },
                Request {
                    at: Duration::from_secs(20),
                    duration: Duration::from_secs(1),
                    memory: ByteSize::mb(1),
                },
            ],
            horizon: Duration::from_secs(30),
        };
        assert_eq!(w.peak_concurrency(), 2);
    }
}
