//! The server-centric baseline: a VM fleet.
//!
//! §2: in "the server-centric model … users have to reserve server
//! resources regardless of whether or not they use it." This module
//! simulates that model against the same workload traces as the serverless
//! fleet:
//!
//! - a **fixed** fleet (provisioned for peak — no queueing, maximum waste),
//!   or
//! - a **reactive autoscaler** (scales on measured demand with a boot
//!   delay — cheaper, but queueing during ramp-up shows up in the latency
//!   tail).
//!
//! Requests queue FIFO when all VM slots are busy; each VM serves
//! `capacity` requests concurrently and bills per hour from boot to
//! shutdown.

use std::collections::BinaryHeap;
use std::time::Duration;

use taureau_core::cost::{Dollars, VmPricing};
use taureau_core::metrics::Histogram;

use crate::workload::Workload;

/// Fleet sizing policies.
#[derive(Debug, Clone, Copy)]
pub enum VmScalingPolicy {
    /// Enough instances for the trace's peak concurrency, up the whole
    /// time. (What an on-prem deployment provisioned for Black Friday
    /// looks like.)
    FixedAtPeak,
    /// A fixed instance count.
    Fixed(u32),
    /// Reactive: every `check_interval`, resize toward
    /// `observed_demand / target_utilization`, new capacity arriving after
    /// the boot delay. `min_instances` is the floor.
    Reactive {
        /// Desired busy-slot fraction.
        target_utilization: f64,
        /// How often the autoscaler evaluates.
        check_interval: Duration,
        /// Floor on fleet size.
        min_instances: u32,
    },
}

/// Fleet configuration.
#[derive(Debug, Clone)]
pub struct VmFleetConfig {
    /// Per-instance pricing and capacity.
    pub pricing: VmPricing,
    /// Sizing policy.
    pub policy: VmScalingPolicy,
}

impl Default for VmFleetConfig {
    fn default() -> Self {
        Self {
            pricing: VmPricing::default(),
            policy: VmScalingPolicy::FixedAtPeak,
        }
    }
}

/// Results of replaying a workload on the VM fleet.
#[derive(Debug)]
pub struct VmFleetOutcome {
    /// Requests served.
    pub requests: u64,
    /// Total dollars for instance-hours.
    pub cost: Dollars,
    /// End-to-end latency including queueing, µs histogram.
    pub latency_us: Histogram,
    /// Instance-hours billed.
    pub instance_hours: f64,
    /// Largest fleet size reached.
    pub peak_instances: u32,
    /// Mean busy-slot utilisation over the horizon.
    pub mean_utilization: f64,
}

/// Capacity (slot count) as a step function over time.
#[derive(Debug)]
struct CapacityTimeline {
    /// (start, slots) steps sorted by start; slots hold until next step.
    steps: Vec<(Duration, u64)>,
}

impl CapacityTimeline {
    fn at(&self, t: Duration) -> u64 {
        match self.steps.binary_search_by(|(s, _)| s.cmp(&t)) {
            Ok(i) => self.steps[i].1,
            Err(0) => 0,
            Err(i) => self.steps[i - 1].1,
        }
    }

    /// Integral of instance count (slots / per_instance) over the horizon,
    /// in instance-hours.
    fn instance_hours(&self, horizon: Duration, per_instance: u32) -> f64 {
        let mut total = 0.0;
        for (i, &(start, slots)) in self.steps.iter().enumerate() {
            let end = self
                .steps
                .get(i + 1)
                .map(|&(s, _)| s)
                .unwrap_or(horizon)
                .min(horizon);
            if end > start {
                let instances = slots.div_ceil(per_instance as u64) as f64;
                total += instances * (end - start).as_secs_f64() / 3600.0;
            }
        }
        total
    }

    fn peak_instances(&self, per_instance: u32) -> u32 {
        self.steps
            .iter()
            .map(|&(_, slots)| slots.div_ceil(per_instance as u64) as u32)
            .max()
            .unwrap_or(0)
    }
}

fn build_timeline(workload: &Workload, cfg: &VmFleetConfig) -> CapacityTimeline {
    let per = cfg.pricing.capacity as u64;
    match cfg.policy {
        VmScalingPolicy::FixedAtPeak => {
            let instances = cfg.pricing.instances_for(workload.peak_concurrency());
            CapacityTimeline {
                steps: vec![(Duration::ZERO, instances as u64 * per)],
            }
        }
        VmScalingPolicy::Fixed(n) => CapacityTimeline {
            steps: vec![(Duration::ZERO, n as u64 * per)],
        },
        VmScalingPolicy::Reactive {
            target_utilization,
            check_interval,
            min_instances,
        } => {
            // Offered in-flight demand per interval from the trace.
            let horizon = workload.horizon;
            let n_intervals = (horizon.as_nanos() / check_interval.as_nanos()).max(1) as usize + 1;
            let mut demand = vec![0f64; n_intervals];
            let iv = check_interval.as_secs_f64();
            for r in &workload.requests {
                // Spread the request's busy time over the intervals it
                // overlaps.
                let mut t = r.at.as_secs_f64();
                let end = t + r.duration.as_secs_f64();
                while t < end {
                    let idx = ((t / iv) as usize).min(n_intervals - 1);
                    let iv_end = (idx as f64 + 1.0) * iv;
                    let span = end.min(iv_end) - t;
                    demand[idx] += span / iv; // mean in-flight contribution
                    t = iv_end;
                }
            }
            // Scale decisions lag by one interval (the autoscaler reacts to
            // the last observation) plus the boot delay for scale-ups.
            let boot = cfg.pricing.boot_time;
            let mut steps: Vec<(Duration, u64)> = Vec::new();
            let mut current = min_instances.max(1) as u64 * per;
            steps.push((Duration::ZERO, current));
            for (i, &d) in demand.iter().enumerate() {
                let desired_slots =
                    ((d / target_utilization).ceil() as u64).max(min_instances.max(1) as u64 * per);
                let desired = desired_slots.div_ceil(per) * per;
                if desired == current {
                    continue;
                }
                let decision_at = check_interval * (i as u32 + 1);
                let effective_at = if desired > current {
                    decision_at + boot
                } else {
                    decision_at
                };
                steps.push((effective_at, desired));
                current = desired;
            }
            steps.sort_by_key(|&(t, _)| t);
            CapacityTimeline { steps }
        }
    }
}

/// Replay a workload against the VM fleet.
pub fn simulate_vm_fleet(workload: &Workload, cfg: &VmFleetConfig) -> VmFleetOutcome {
    let timeline = build_timeline(workload, cfg);
    let latency_us = Histogram::new();
    // Min-heap of slot-finish times (ns).
    let mut busy: BinaryHeap<std::cmp::Reverse<u64>> = BinaryHeap::new();
    let mut busy_seconds = 0.0f64;

    for req in &workload.requests {
        let now = req.at;
        let now_ns = now.as_nanos() as u64;
        while let Some(&std::cmp::Reverse(f)) = busy.peek() {
            if f <= now_ns {
                busy.pop();
            } else {
                break;
            }
        }
        let cap = timeline.at(now).max(1);
        let start_ns = if (busy.len() as u64) < cap {
            now_ns
        } else {
            // FIFO: wait for the earliest slot to free.
            let std::cmp::Reverse(f) = busy.pop().expect("cap >= 1 implies busy non-empty");
            f.max(now_ns)
        };
        let finish_ns = start_ns + req.duration.as_nanos() as u64;
        busy.push(std::cmp::Reverse(finish_ns));
        let latency = Duration::from_nanos(finish_ns - now_ns);
        latency_us.record(latency.as_micros() as u64);
        busy_seconds += req.duration.as_secs_f64();
    }

    let instance_hours = timeline.instance_hours(workload.horizon, cfg.pricing.capacity);
    let slot_hours = instance_hours * cfg.pricing.capacity as f64;
    VmFleetOutcome {
        requests: workload.requests.len() as u64,
        cost: cfg.pricing.per_hour * instance_hours,
        latency_us,
        instance_hours,
        peak_instances: timeline.peak_instances(cfg.pricing.capacity),
        mean_utilization: if slot_hours > 0.0 {
            (busy_seconds / 3600.0) / slot_hours
        } else {
            0.0
        },
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::workload::{Request, WorkloadSpec};
    use taureau_core::bytesize::ByteSize;
    use taureau_core::latency::LatencyModel;

    fn req(at_ms: u64, dur_ms: u64) -> Request {
        Request {
            at: Duration::from_millis(at_ms),
            duration: Duration::from_millis(dur_ms),
            memory: ByteSize::mb(512),
        }
    }

    fn one_slot_pricing() -> VmPricing {
        VmPricing {
            capacity: 1,
            ..VmPricing::default()
        }
    }

    #[test]
    fn fixed_fleet_bills_full_horizon() {
        let w = Workload {
            requests: vec![req(0, 100)],
            horizon: Duration::from_secs(3600),
        };
        let cfg = VmFleetConfig {
            pricing: VmPricing::default(),
            policy: VmScalingPolicy::Fixed(2),
        };
        let o = simulate_vm_fleet(&w, &cfg);
        assert!((o.instance_hours - 2.0).abs() < 1e-9);
        assert!((o.cost - 2.0 * 0.096).abs() < 1e-9);
        // One 100 ms request on an idle fleet: no queueing.
        assert!(o.latency_us.max() <= 101_000);
        // Utilisation is tiny.
        assert!(o.mean_utilization < 0.001);
    }

    #[test]
    fn queueing_shows_when_underprovisioned() {
        // Two simultaneous 1 s requests on a single-slot fleet: the second
        // waits a full second.
        let w = Workload {
            requests: vec![req(0, 1000), req(0, 1000)],
            horizon: Duration::from_secs(10),
        };
        let cfg = VmFleetConfig {
            pricing: one_slot_pricing(),
            policy: VmScalingPolicy::Fixed(1),
        };
        let o = simulate_vm_fleet(&w, &cfg);
        assert!(
            o.latency_us.max() >= 1_999_000,
            "max {}",
            o.latency_us.max()
        );
        assert!(o.latency_us.min() <= 1_001_000);
    }

    #[test]
    fn fixed_at_peak_avoids_queueing() {
        let w = Workload {
            requests: (0..10).map(|i| req(i * 10, 500)).collect(),
            horizon: Duration::from_secs(60),
        };
        let cfg = VmFleetConfig {
            pricing: one_slot_pricing(),
            policy: VmScalingPolicy::FixedAtPeak,
        };
        let o = simulate_vm_fleet(&w, &cfg);
        // All requests overlap => peak concurrency 10 => 10 instances.
        assert_eq!(o.peak_instances, 10);
        // No request waited.
        assert!(o.latency_us.max() <= 501_000);
    }

    #[test]
    fn reactive_scaler_tracks_load_and_costs_less_than_peak() {
        let spec = WorkloadSpec::diurnal_with_peak_ratio(20.0, 8.0, Duration::from_secs(900));
        let w = spec.generate(
            Duration::from_secs(3600),
            &LatencyModel::Constant(Duration::from_millis(200)),
            ByteSize::mb(512),
            5,
        );
        let peak_cfg = VmFleetConfig {
            pricing: VmPricing::default(),
            policy: VmScalingPolicy::FixedAtPeak,
        };
        let reactive_cfg = VmFleetConfig {
            pricing: VmPricing::default(),
            policy: VmScalingPolicy::Reactive {
                target_utilization: 0.6,
                check_interval: Duration::from_secs(60),
                min_instances: 1,
            },
        };
        let peak = simulate_vm_fleet(&w, &peak_cfg);
        let reactive = simulate_vm_fleet(&w, &reactive_cfg);
        assert!(
            reactive.cost < peak.cost,
            "reactive {} vs peak {}",
            reactive.cost,
            peak.cost
        );
        assert!(reactive.mean_utilization > peak.mean_utilization);
        // The price of reacting: worse tail latency than peak provisioning.
        assert!(
            reactive.latency_us.p99() >= peak.latency_us.p99(),
            "reactive p99 {} peak p99 {}",
            reactive.latency_us.p99(),
            peak.latency_us.p99()
        );
    }

    #[test]
    fn capacity_timeline_lookup() {
        let tl = CapacityTimeline {
            steps: vec![
                (Duration::ZERO, 2),
                (Duration::from_secs(10), 5),
                (Duration::from_secs(20), 1),
            ],
        };
        assert_eq!(tl.at(Duration::ZERO), 2);
        assert_eq!(tl.at(Duration::from_secs(9)), 2);
        assert_eq!(tl.at(Duration::from_secs(10)), 5);
        assert_eq!(tl.at(Duration::from_secs(25)), 1);
        // 10 s at 2 slots + 10 s at 5 + 10 s at 1, capacity 1/instance.
        let ih = tl.instance_hours(Duration::from_secs(30), 1);
        assert!((ih - (10.0 * 2.0 + 10.0 * 5.0 + 10.0 * 1.0) / 3600.0).abs() < 1e-9);
        assert_eq!(tl.peak_instances(1), 5);
    }
}
