//! Serverless at the edge (§1: "the serverless paradigm is being extended
//! to … networking and the edge", citing NFaaS, SNF, and Hall &
//! Ramachandran's edge execution model).
//!
//! The edge trade: running a function at a point of presence near the user
//! cuts the network RTT from tens of milliseconds to single digits, but
//! edge PoPs have little capacity and keeping containers warm there is
//! expensive per-unit; the central cloud has the opposite profile. This
//! module replays a geo-distributed request trace under three placement
//! policies and reports the latency/cost frontier (experiment E21).

use std::collections::HashMap;
use std::time::Duration;

use taureau_core::latency::LatencyModel;
use taureau_core::metrics::Histogram;
use taureau_core::rng::det_rng;

/// One request in a geo trace.
#[derive(Debug, Clone, Copy)]
pub struct EdgeRequest {
    /// Arrival time.
    pub at: Duration,
    /// Which region's user issued it.
    pub region: u32,
    /// Service time.
    pub duration: Duration,
}

/// The geography: per-region RTTs to the central cloud; edge PoPs sit in
/// the user's own region.
#[derive(Debug, Clone)]
pub struct Geography {
    /// RTT from each region to the central cloud.
    pub cloud_rtt: Vec<Duration>,
    /// RTT from a user to their regional edge PoP.
    pub edge_rtt: Duration,
}

impl Geography {
    /// A typical continental layout: edge at 5 ms, cloud at 30–120 ms
    /// depending on region.
    pub fn continental(regions: usize) -> Self {
        Self {
            cloud_rtt: (0..regions)
                .map(|i| Duration::from_millis(30 + 90 * i as u64 / regions.max(1) as u64))
                .collect(),
            edge_rtt: Duration::from_millis(5),
        }
    }

    /// Number of regions.
    pub fn regions(&self) -> usize {
        self.cloud_rtt.len()
    }
}

/// Placement policies.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum EdgePolicy {
    /// Everything runs in the central cloud.
    CloudOnly,
    /// Everything runs at the user's regional edge PoP.
    EdgeOnly,
    /// Run at the edge only in regions whose request rate amortises the
    /// keep-warm cost; cold regions fall back to the cloud (Hall &
    /// Ramachandran's adaptive model, simplified).
    Adaptive {
        /// Minimum requests/hour for a region to earn an edge deployment.
        min_rate_per_hour: f64,
    },
}

/// Outcome of replaying a trace under a policy.
#[derive(Debug)]
pub struct EdgeOutcome {
    /// End-to-end latency (network + startup + service), µs histogram.
    pub latency_us: Histogram,
    /// Regions given an edge deployment.
    pub edge_regions: usize,
    /// Keep-warm container-hours across all sites (the cost proxy; edge
    /// container-hours are typically priced at a multiple of cloud ones).
    pub edge_container_hours: f64,
    /// Requests served at the edge.
    pub edge_served: u64,
}

/// Generate a geo trace with a popularity skew across regions.
pub fn geo_trace(
    regions: usize,
    horizon: Duration,
    rates_per_hour: &[f64],
    seed: u64,
) -> Vec<EdgeRequest> {
    assert_eq!(rates_per_hour.len(), regions);
    use rand::Rng;
    let mut rng = det_rng(seed);
    let mut out = Vec::new();
    for (region, &rate) in rates_per_hour.iter().enumerate() {
        if rate <= 0.0 {
            continue;
        }
        let per_sec = rate / 3600.0;
        let mut t = 0.0;
        loop {
            t += -rng.gen_range(f64::MIN_POSITIVE..1.0f64).ln() / per_sec;
            if t >= horizon.as_secs_f64() {
                break;
            }
            out.push(EdgeRequest {
                at: Duration::from_secs_f64(t),
                region: region as u32,
                duration: Duration::from_millis(rng.gen_range(20..120)),
            });
        }
    }
    out.sort_by_key(|r| r.at);
    out
}

/// Replay a trace under a placement policy. Warm behaviour is simplified:
/// an edge deployment keeps one container warm for the whole horizon (the
/// keep-warm cost); the cloud is always warm (its keep-alive cost is
/// amortised across all tenants).
pub fn simulate_edge(
    trace: &[EdgeRequest],
    geo: &Geography,
    policy: EdgePolicy,
    horizon: Duration,
    warm_start: &LatencyModel,
) -> EdgeOutcome {
    let mut rng = det_rng(0xED6E);
    // Which regions get an edge deployment?
    let mut rates: HashMap<u32, u64> = HashMap::new();
    for r in trace {
        *rates.entry(r.region).or_insert(0) += 1;
    }
    let hours = horizon.as_secs_f64() / 3600.0;
    let edge_regions: Vec<u32> = match policy {
        EdgePolicy::CloudOnly => Vec::new(),
        EdgePolicy::EdgeOnly => (0..geo.regions() as u32).collect(),
        EdgePolicy::Adaptive { min_rate_per_hour } => rates
            .iter()
            .filter(|(_, &n)| n as f64 / hours >= min_rate_per_hour)
            .map(|(&r, _)| r)
            .collect(),
    };
    let latency_us = Histogram::new();
    let mut edge_served = 0u64;
    for req in trace {
        let at_edge = edge_regions.contains(&req.region);
        let rtt = if at_edge {
            geo.edge_rtt
        } else {
            geo.cloud_rtt[req.region as usize]
        };
        let latency = rtt + warm_start.sample(&mut rng) + req.duration;
        latency_us.record(latency.as_micros() as u64);
        if at_edge {
            edge_served += 1;
        }
    }
    EdgeOutcome {
        latency_us,
        edge_regions: edge_regions.len(),
        edge_container_hours: edge_regions.len() as f64 * hours,
        edge_served,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn warm() -> LatencyModel {
        LatencyModel::Constant(Duration::from_millis(2))
    }

    fn skewed_trace(geo: &Geography, horizon: Duration) -> Vec<EdgeRequest> {
        // One hot region, many cold ones.
        let mut rates = vec![2.0; geo.regions()];
        rates[0] = 2000.0;
        geo_trace(geo.regions(), horizon, &rates, 7)
    }

    #[test]
    fn edge_only_minimizes_latency_but_maximizes_deployments() {
        let geo = Geography::continental(8);
        let horizon = Duration::from_secs(3600);
        let trace = skewed_trace(&geo, horizon);
        let cloud = simulate_edge(&trace, &geo, EdgePolicy::CloudOnly, horizon, &warm());
        let edge = simulate_edge(&trace, &geo, EdgePolicy::EdgeOnly, horizon, &warm());
        assert!(edge.latency_us.p50() < cloud.latency_us.p50());
        assert_eq!(edge.edge_regions, 8);
        assert_eq!(cloud.edge_regions, 0);
        assert_eq!(cloud.edge_container_hours, 0.0);
        assert!(edge.edge_container_hours > cloud.edge_container_hours);
    }

    #[test]
    fn adaptive_gets_most_of_the_latency_at_fraction_of_the_cost() {
        let geo = Geography::continental(8);
        let horizon = Duration::from_secs(3600);
        let trace = skewed_trace(&geo, horizon);
        let edge = simulate_edge(&trace, &geo, EdgePolicy::EdgeOnly, horizon, &warm());
        let adaptive = simulate_edge(
            &trace,
            &geo,
            EdgePolicy::Adaptive {
                min_rate_per_hour: 100.0,
            },
            horizon,
            &warm(),
        );
        // Only the hot region earned a PoP…
        assert_eq!(adaptive.edge_regions, 1);
        // …which serves the overwhelming majority of requests…
        let share = adaptive.edge_served as f64 / trace.len() as f64;
        assert!(share > 0.95, "edge share {share}");
        // …so the median matches edge-everywhere at 1/8th the keep-warm.
        assert_eq!(adaptive.latency_us.p50(), edge.latency_us.p50());
        assert!(adaptive.edge_container_hours <= edge.edge_container_hours / 8.0 + 1e-9);
    }

    #[test]
    fn trace_generation_is_deterministic_and_sorted() {
        let rates = vec![100.0, 50.0, 0.0];
        let a = geo_trace(3, Duration::from_secs(600), &rates, 1);
        let b = geo_trace(3, Duration::from_secs(600), &rates, 1);
        assert_eq!(a.len(), b.len());
        assert!(a.windows(2).all(|w| w[0].at <= w[1].at));
        assert!(
            a.iter().all(|r| r.region < 2),
            "rate-0 region produced traffic"
        );
    }
}
