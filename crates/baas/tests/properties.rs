//! Property tests for the serverless database: autocommit operations match
//! a HashMap model, committed transactions are atomic, and snapshots are
//! immutable.

use proptest::collection::vec;
use proptest::prelude::*;

use taureau_baas::db::ServerlessDb;

#[derive(Debug, Clone)]
enum Op {
    Put(u8, Vec<u8>),
    Delete(u8),
    Get(u8),
}

fn op() -> impl Strategy<Value = Op> {
    prop_oneof![
        (any::<u8>(), vec(any::<u8>(), 0..16)).prop_map(|(k, v)| Op::Put(k, v)),
        any::<u8>().prop_map(Op::Delete),
        any::<u8>().prop_map(Op::Get),
    ]
}

proptest! {
    /// Autocommitted single-key operations behave exactly like a HashMap.
    #[test]
    fn autocommit_matches_model(ops in vec(op(), 1..200)) {
        let db = ServerlessDb::new();
        let mut model = std::collections::HashMap::new();
        for o in ops {
            match o {
                Op::Put(k, v) => {
                    db.put(&[k], &v);
                    model.insert(k, v);
                }
                Op::Delete(k) => {
                    let mut t = db.begin();
                    t.delete(&[k]);
                    t.commit().unwrap();
                    model.remove(&k);
                }
                Op::Get(k) => {
                    prop_assert_eq!(db.get(&[k]), model.get(&k).cloned());
                }
            }
        }
    }

    /// Transactions are atomic: either every buffered write lands or none.
    #[test]
    fn transactions_are_atomic(
        writes in vec((any::<u8>(), vec(any::<u8>(), 0..8)), 1..20),
        conflict in any::<bool>(),
    ) {
        let db = ServerlessDb::new();
        let mut txn = db.begin();
        for (k, v) in &writes {
            txn.put(&[*k], v);
        }
        if conflict {
            // Another writer races on the first key, dooming the txn.
            db.put(&[writes[0].0], b"interloper");
        }
        let committed = txn.commit().is_ok();
        prop_assert_eq!(committed, !conflict);
        if committed {
            // Last buffered value per key must be visible.
            let mut expect = std::collections::HashMap::new();
            for (k, v) in &writes {
                expect.insert(*k, v.clone());
            }
            for (k, v) in expect {
                prop_assert_eq!(db.get(&[k]), Some(v));
            }
        } else {
            // Nothing but the interloper landed.
            prop_assert_eq!(db.get(&[writes[0].0]), Some(b"interloper".to_vec()));
            for (k, _) in writes.iter().skip(1) {
                // Keys not touched by the interloper are absent unless they
                // equal the first key.
                if *k != writes[0].0 {
                    prop_assert_eq!(db.get(&[*k]), None);
                }
            }
        }
    }

    /// A snapshot's view never changes, no matter what commits afterwards.
    #[test]
    fn snapshots_are_immutable(
        initial in vec((any::<u8>(), vec(any::<u8>(), 0..8)), 1..20),
        later in vec((any::<u8>(), vec(any::<u8>(), 0..8)), 1..20),
    ) {
        let db = ServerlessDb::new();
        for (k, v) in &initial {
            db.put(&[*k], v);
        }
        let mut reader = db.begin();
        // Capture the snapshot view of every key we'll examine.
        let mut view = std::collections::HashMap::new();
        for k in 0..=255u8 {
            view.insert(k, reader.get(&[k]));
        }
        for (k, v) in &later {
            db.put(&[*k], v);
        }
        for k in 0..=255u8 {
            prop_assert_eq!(reader.get(&[k]), view[&k].clone());
        }
    }
}
