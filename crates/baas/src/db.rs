//! A serverless transactional database (Aurora-Serverless class).
//!
//! Multi-version concurrency control with **snapshot isolation**:
//! transactions read a consistent snapshot (the state as of their begin
//! timestamp) and buffer writes; commit performs optimistic validation
//! (first-committer-wins on write-write conflicts). An optional
//! **serializable** level additionally validates the read set, turning
//! write-skew anomalies into conflicts (an SSI-style read-set check).
//!
//! The serverless tie-in (§4.1): FaaS platforms re-execute functions on
//! failure, so any multi-step state mutation must be wrapped in a
//! transaction to stay correct under at-least-once execution.
//! [`ServerlessDb::run_transaction`] is the retry loop applications use.

use std::collections::{BTreeMap, HashMap, HashSet};
use std::sync::Arc;

use parking_lot::Mutex;

/// Commit timestamp (monotone).
type Ts = u64;

/// Transaction isolation levels.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum IsolationLevel {
    /// Snapshot isolation: write-write conflict detection only (permits
    /// write skew, as real SI databases do).
    Snapshot,
    /// Serializable via read-set validation at commit.
    Serializable,
}

/// Transaction errors.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum DbError {
    /// Another transaction committed a conflicting change first; retry.
    Conflict {
        /// The key that conflicted.
        key: Vec<u8>,
    },
    /// The retry budget of [`ServerlessDb::run_transaction`] was exhausted.
    RetriesExhausted {
        /// Attempts made.
        attempts: u32,
    },
    /// The transaction body itself failed (application error).
    Aborted(String),
}

impl std::fmt::Display for DbError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            DbError::Conflict { key } => {
                write!(
                    f,
                    "optimistic conflict on key {:?}",
                    String::from_utf8_lossy(key)
                )
            }
            DbError::RetriesExhausted { attempts } => {
                write!(f, "transaction failed after {attempts} attempts")
            }
            DbError::Aborted(reason) => write!(f, "transaction aborted: {reason}"),
        }
    }
}

impl std::error::Error for DbError {}

#[derive(Debug, Default)]
struct DbState {
    /// key -> versions sorted by commit ts; `None` value is a tombstone.
    versions: HashMap<Vec<u8>, BTreeMap<Ts, Option<Vec<u8>>>>,
    /// Last committed timestamp.
    last_commit: Ts,
    /// Committed transactions kept for validation: commit_ts -> write set.
    /// Pruned by `vacuum`.
    commit_log: BTreeMap<Ts, HashSet<Vec<u8>>>,
    reads: u64,
    writes: u64,
    commits: u64,
    aborts: u64,
}

/// The database handle. Cheap to clone; clones share state.
#[derive(Clone, Default)]
pub struct ServerlessDb {
    state: Arc<Mutex<DbState>>,
}

/// An open transaction: a snapshot timestamp plus buffered reads/writes.
pub struct Txn {
    db: ServerlessDb,
    snapshot: Ts,
    level: IsolationLevel,
    read_set: HashSet<Vec<u8>>,
    write_set: HashMap<Vec<u8>, Option<Vec<u8>>>,
}

impl ServerlessDb {
    /// Empty database.
    pub fn new() -> Self {
        Self::default()
    }

    /// Begin a snapshot-isolation transaction.
    pub fn begin(&self) -> Txn {
        self.begin_with(IsolationLevel::Snapshot)
    }

    /// Begin at an explicit isolation level.
    pub fn begin_with(&self, level: IsolationLevel) -> Txn {
        let snapshot = self.state.lock().last_commit;
        Txn {
            db: self.clone(),
            snapshot,
            level,
            read_set: HashSet::new(),
            write_set: HashMap::new(),
        }
    }

    /// Auto-committed single read (sees the latest committed state).
    pub fn get(&self, key: &[u8]) -> Option<Vec<u8>> {
        let mut st = self.state.lock();
        st.reads += 1;
        read_at(&st, key, Ts::MAX)
    }

    /// Auto-committed single write.
    pub fn put(&self, key: &[u8], value: &[u8]) {
        let mut txn = self.begin();
        txn.put(key, value);
        txn.commit()
            .expect("single-key auto-commit cannot conflict");
    }

    /// Run `body` as a transaction, retrying on optimistic conflicts up to
    /// `max_attempts` — the safe pattern for at-least-once function
    /// execution.
    pub fn run_transaction<T>(
        &self,
        max_attempts: u32,
        mut body: impl FnMut(&mut Txn) -> Result<T, DbError>,
    ) -> Result<T, DbError> {
        assert!(max_attempts >= 1);
        for _ in 0..max_attempts {
            let mut txn = self.begin();
            let out = body(&mut txn)?;
            match txn.commit() {
                Ok(()) => return Ok(out),
                Err(DbError::Conflict { .. }) => continue,
                Err(e) => return Err(e),
            }
        }
        Err(DbError::RetriesExhausted {
            attempts: max_attempts,
        })
    }

    /// Drop versions (and commit-log entries) no transaction can still
    /// see, keeping the newest version ≤ `before` per key.
    pub fn vacuum(&self, before: Ts) {
        let mut st = self.state.lock();
        for versions in st.versions.values_mut() {
            // Keep the latest version at or before the horizon plus
            // everything after it.
            if let Some((&keep, _)) = versions.range(..=before).next_back() {
                versions.retain(|&ts, _| ts >= keep);
            }
        }
        st.commit_log.retain(|&ts, _| ts > before);
    }

    /// Latest commit timestamp.
    pub fn last_commit_ts(&self) -> Ts {
        self.state.lock().last_commit
    }

    /// (reads, writes, commits, aborts) counters for billing/metrics.
    pub fn op_counts(&self) -> (u64, u64, u64, u64) {
        let st = self.state.lock();
        (st.reads, st.writes, st.commits, st.aborts)
    }

    /// Total live versions stored (space metric for vacuum tests).
    pub fn version_count(&self) -> usize {
        self.state.lock().versions.values().map(BTreeMap::len).sum()
    }
}

fn read_at(st: &DbState, key: &[u8], ts: Ts) -> Option<Vec<u8>> {
    st.versions
        .get(key)?
        .range(..=ts)
        .next_back()
        .and_then(|(_, v)| v.clone())
}

impl Txn {
    /// The snapshot timestamp this transaction reads at.
    pub fn snapshot_ts(&self) -> Ts {
        self.snapshot
    }

    /// Read a key: own writes first, then the snapshot.
    pub fn get(&mut self, key: &[u8]) -> Option<Vec<u8>> {
        if let Some(buffered) = self.write_set.get(key) {
            return buffered.clone();
        }
        self.read_set.insert(key.to_vec());
        let mut st = self.db.state.lock();
        st.reads += 1;
        read_at(&st, key, self.snapshot)
    }

    /// Buffer a write.
    pub fn put(&mut self, key: &[u8], value: &[u8]) {
        self.write_set.insert(key.to_vec(), Some(value.to_vec()));
    }

    /// Buffer a delete.
    pub fn delete(&mut self, key: &[u8]) {
        self.write_set.insert(key.to_vec(), None);
    }

    /// Validate and commit.
    ///
    /// # Errors
    /// [`DbError::Conflict`] if another transaction committed a write to a
    /// key in this transaction's write set (snapshot isolation) or read
    /// set (serializable) after this transaction's snapshot.
    pub fn commit(self) -> Result<(), DbError> {
        let mut st = self.db.state.lock();
        if self.write_set.is_empty() {
            // Read-only transactions saw a consistent snapshot; they can
            // always commit (true under both SI and serializable, since a
            // reader that writes nothing cannot participate in a cycle
            // with only one rw-antidependency).
            st.commits += 1;
            return Ok(());
        }
        // Validation against everything committed after our snapshot.
        let validate: Box<dyn Iterator<Item = &Vec<u8>>> = match self.level {
            IsolationLevel::Snapshot => Box::new(self.write_set.keys()),
            IsolationLevel::Serializable => {
                Box::new(self.write_set.keys().chain(self.read_set.iter()))
            }
        };
        for key in validate {
            let newer = st
                .commit_log
                .range(self.snapshot + 1..)
                .any(|(_, writes)| writes.contains(key));
            if newer {
                st.aborts += 1;
                return Err(DbError::Conflict { key: key.clone() });
            }
        }
        let ts = st.last_commit + 1;
        st.last_commit = ts;
        let mut written = HashSet::with_capacity(self.write_set.len());
        for (key, value) in self.write_set {
            st.writes += 1;
            st.versions
                .entry(key.clone())
                .or_default()
                .insert(ts, value);
            written.insert(key);
        }
        st.commit_log.insert(ts, written);
        st.commits += 1;
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn autocommit_roundtrip() {
        let db = ServerlessDb::new();
        db.put(b"k", b"v1");
        assert_eq!(db.get(b"k"), Some(b"v1".to_vec()));
        db.put(b"k", b"v2");
        assert_eq!(db.get(b"k"), Some(b"v2".to_vec()));
        assert_eq!(db.get(b"missing"), None);
    }

    #[test]
    fn snapshot_reads_ignore_concurrent_commits() {
        let db = ServerlessDb::new();
        db.put(b"k", b"old");
        let mut reader = db.begin();
        // A concurrent writer commits…
        db.put(b"k", b"new");
        // …but the reader's snapshot predates it.
        assert_eq!(reader.get(b"k"), Some(b"old".to_vec()));
        // A fresh transaction sees the new value.
        let mut fresh = db.begin();
        assert_eq!(fresh.get(b"k"), Some(b"new".to_vec()));
    }

    #[test]
    fn reads_see_own_writes() {
        let db = ServerlessDb::new();
        let mut txn = db.begin();
        txn.put(b"k", b"mine");
        assert_eq!(txn.get(b"k"), Some(b"mine".to_vec()));
        txn.delete(b"k");
        assert_eq!(txn.get(b"k"), None);
        txn.commit().unwrap();
        assert_eq!(db.get(b"k"), None);
    }

    #[test]
    fn write_write_conflict_first_committer_wins() {
        let db = ServerlessDb::new();
        db.put(b"k", b"base");
        let mut t1 = db.begin();
        let mut t2 = db.begin();
        t1.put(b"k", b"one");
        t2.put(b"k", b"two");
        t1.commit().unwrap();
        assert!(matches!(t2.commit(), Err(DbError::Conflict { .. })));
        assert_eq!(db.get(b"k"), Some(b"one".to_vec()));
    }

    #[test]
    fn lost_update_prevented() {
        // Classic read-modify-write race: both read 10, both add 5; the
        // second committer must conflict rather than lose an update.
        let db = ServerlessDb::new();
        db.put(b"counter", &10u64.to_le_bytes());
        let bump = |txn: &mut Txn| {
            let v = u64::from_le_bytes(txn.get(b"counter").unwrap().try_into().unwrap());
            txn.put(b"counter", &(v + 5).to_le_bytes());
        };
        let mut t1 = db.begin();
        let mut t2 = db.begin();
        bump(&mut t1);
        bump(&mut t2);
        t1.commit().unwrap();
        assert!(t2.commit().is_err());
        let v = u64::from_le_bytes(db.get(b"counter").unwrap().try_into().unwrap());
        assert_eq!(v, 15);
    }

    #[test]
    fn run_transaction_retries_to_success() {
        let db = ServerlessDb::new();
        db.put(b"counter", &0u64.to_le_bytes());
        // Interleave 10 logical increments with deliberate conflicts by
        // running pairs and retrying.
        for _ in 0..10 {
            db.run_transaction(5, |txn| {
                let v = u64::from_le_bytes(txn.get(b"counter").unwrap().try_into().unwrap());
                txn.put(b"counter", &(v + 1).to_le_bytes());
                Ok(())
            })
            .unwrap();
        }
        let v = u64::from_le_bytes(db.get(b"counter").unwrap().try_into().unwrap());
        assert_eq!(v, 10);
    }

    #[test]
    fn concurrent_increments_are_exact() {
        let db = ServerlessDb::new();
        db.put(b"n", &0u64.to_le_bytes());
        let mut handles = vec![];
        for _ in 0..8 {
            let db = db.clone();
            handles.push(std::thread::spawn(move || {
                for _ in 0..100 {
                    db.run_transaction(1000, |txn| {
                        let v = u64::from_le_bytes(txn.get(b"n").unwrap().try_into().unwrap());
                        txn.put(b"n", &(v + 1).to_le_bytes());
                        Ok(())
                    })
                    .unwrap();
                }
            }));
        }
        for h in handles {
            h.join().unwrap();
        }
        let v = u64::from_le_bytes(db.get(b"n").unwrap().try_into().unwrap());
        assert_eq!(v, 800, "increments lost or duplicated");
    }

    #[test]
    fn write_skew_allowed_under_si_but_not_serializable() {
        // Two doctors on call; each checks "at least one other on call"
        // then signs off. SI lets both commit (write skew); serializable
        // conflicts one of them.
        let setup = |level: IsolationLevel| -> (bool, bool) {
            let db = ServerlessDb::new();
            db.put(b"alice", b"on");
            db.put(b"bob", b"on");
            let mut t1 = db.begin_with(level);
            let mut t2 = db.begin_with(level);
            // Alice signs off if Bob is on.
            let bob_on = t1.get(b"bob") == Some(b"on".to_vec());
            if bob_on {
                t1.put(b"alice", b"off");
            }
            // Bob signs off if Alice is on.
            let alice_on = t2.get(b"alice") == Some(b"on".to_vec());
            if alice_on {
                t2.put(b"bob", b"off");
            }
            (t1.commit().is_ok(), t2.commit().is_ok())
        };
        let (a, b) = setup(IsolationLevel::Snapshot);
        assert!(a && b, "SI permits write skew (both commit)");
        let (a, b) = setup(IsolationLevel::Serializable);
        assert!(
            a ^ b,
            "serializable must conflict exactly one (got {a}, {b})"
        );
    }

    #[test]
    fn read_only_transactions_never_conflict() {
        let db = ServerlessDb::new();
        db.put(b"k", b"v");
        let mut t = db.begin_with(IsolationLevel::Serializable);
        let _ = t.get(b"k");
        db.put(b"k", b"v2"); // concurrent write to the read key
        t.commit().unwrap(); // read-only: still fine
    }

    #[test]
    fn tombstones_delete_across_transactions() {
        let db = ServerlessDb::new();
        db.put(b"k", b"v");
        let mut t = db.begin();
        t.delete(b"k");
        t.commit().unwrap();
        assert_eq!(db.get(b"k"), None);
        // Old snapshot still sees it (MVCC).
        let st = db.state.lock();
        assert_eq!(read_at(&st, b"k", 1), Some(b"v".to_vec()));
    }

    #[test]
    fn vacuum_reclaims_old_versions() {
        let db = ServerlessDb::new();
        for i in 0..20u64 {
            db.put(b"k", &i.to_le_bytes());
        }
        assert_eq!(db.version_count(), 20);
        let horizon = db.last_commit_ts();
        db.vacuum(horizon);
        assert_eq!(db.version_count(), 1, "vacuum should keep only the newest");
        assert_eq!(db.get(b"k"), Some(19u64.to_le_bytes().to_vec()));
    }

    #[test]
    fn conflict_validation_survives_vacuum_of_old_log() {
        let db = ServerlessDb::new();
        db.put(b"a", b"1");
        db.vacuum(db.last_commit_ts());
        // New transactions proceed normally after the log is pruned.
        let mut t = db.begin();
        t.put(b"a", b"2");
        t.commit().unwrap();
        assert_eq!(db.get(b"a"), Some(b"2".to_vec()));
    }

    #[test]
    fn op_counters_track_activity() {
        let db = ServerlessDb::new();
        db.put(b"k", b"v");
        let _ = db.get(b"k");
        let mut t1 = db.begin();
        let mut t2 = db.begin();
        t1.put(b"k", b"a");
        t2.put(b"k", b"b");
        t1.commit().unwrap();
        let _ = t2.commit();
        let (reads, writes, commits, aborts) = db.op_counts();
        assert!(reads >= 1);
        assert_eq!(writes, 2); // the auto-commit + t1
        assert_eq!(commits, 2);
        assert_eq!(aborts, 1);
    }
}
