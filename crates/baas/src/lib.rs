//! # taureau-baas
//!
//! The **Backend-as-a-Service** half of the serverless dichotomy (§2.2 of
//! *Le Taureau*): "cloud-provider managed platforms that enable services
//! beyond stateless compute". Two of the paper's BaaS categories are
//! implemented as real substrates:
//!
//! - [`blob`]: an object store in the S3 mould — buckets, keys, versioned
//!   ETags, list-by-prefix, per-GB-month + per-request billing. "Since
//!   FaaS platforms are stateless, the storage services provide a means to
//!   store state in the serverless ecosystem."
//! - [`db`]: a serverless *database* in the Aurora-Serverless mould — an
//!   MVCC store with snapshot-isolation transactions and optimistic
//!   commit. §4.1 explains precisely why this matters: "since most FaaS
//!   platforms re-execute functions transparently on failure, the
//!   transactional semantics offered by serverless database services can
//!   be crucial for ensuring correctness". Experiment E15 demonstrates
//!   the anomaly (a retried non-transactional transfer corrupts balances)
//!   and the fix (the same logic inside [`db::ServerlessDb::run_transaction`]
//!   preserves the invariant).

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

pub mod blob;
pub mod db;

pub use blob::{BlobMeta, BlobStore};
pub use db::{DbError, IsolationLevel, ServerlessDb, Txn};
