//! A BaaS blob store (S3 class): buckets, keys, version ETags,
//! list-by-prefix, and the per-GB-month + per-request billing of §2.2's
//! "users are billed only for the amount of storage they utilize, and the
//! volume of reads and writes".
//!
//! Latency is injected from the calibrated persistent-store profiles, so
//! experiments comparing blob-based state exchange to Jiffy see realistic
//! gaps (E3). The Pulsar tiered-storage extension offloads sealed ledgers
//! here.

use std::collections::BTreeMap;
use std::time::Duration;

use parking_lot::Mutex;
use rand_chacha::ChaCha8Rng;
use taureau_core::bytesize::ByteSize;
use taureau_core::clock::SharedClock;
use taureau_core::cost::{Dollars, StoragePricing};
use taureau_core::latency::{profiles, LatencyModel};
use taureau_core::metrics::MetricsRegistry;
use taureau_core::rng::det_rng;

/// Metadata of a stored object.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct BlobMeta {
    /// Object size.
    pub size: ByteSize,
    /// Monotone per-object version (ETag analogue).
    pub version: u64,
    /// Store time (clock timestamp).
    pub stored_at: Duration,
}

#[derive(Debug)]
struct Object {
    data: Vec<u8>,
    meta: BlobMeta,
}

#[derive(Debug, Default)]
struct BlobState {
    /// bucket -> key -> object. BTreeMaps so listing is ordered.
    buckets: BTreeMap<String, BTreeMap<Vec<u8>, Object>>,
    reads: u64,
    writes: u64,
    bytes_stored: u64,
}

/// The blob store. Cheap to clone; clones share state.
pub struct BlobStore {
    clock: SharedClock,
    read_latency: LatencyModel,
    write_latency: LatencyModel,
    pricing: StoragePricing,
    state: Mutex<BlobState>,
    rng: Mutex<ChaCha8Rng>,
    metrics: MetricsRegistry,
}

impl BlobStore {
    /// Store with S3-calibrated latencies and default pricing.
    pub fn new(clock: SharedClock) -> Self {
        Self::with_latency(
            clock,
            profiles::persistent_read(),
            profiles::persistent_write(),
        )
    }

    /// Store with explicit latency models (tests pass
    /// [`LatencyModel::zero`]).
    pub fn with_latency(
        clock: SharedClock,
        read_latency: LatencyModel,
        write_latency: LatencyModel,
    ) -> Self {
        Self {
            clock,
            read_latency,
            write_latency,
            pricing: StoragePricing::default(),
            state: Mutex::new(BlobState::default()),
            rng: Mutex::new(det_rng(0xB10B)),
            metrics: MetricsRegistry::new(),
        }
    }

    /// Metrics registry (op counters, stored-bytes gauge, injected-latency
    /// histograms).
    pub fn metrics(&self) -> &MetricsRegistry {
        &self.metrics
    }

    fn pay(&self, model: &LatencyModel, latency_hist: &str) {
        let d = model.sample(&mut *self.rng.lock());
        self.metrics.histogram(latency_hist).record_duration(d);
        self.clock.sleep(d);
    }

    /// Create a bucket (idempotent).
    pub fn create_bucket(&self, bucket: &str) {
        self.state
            .lock()
            .buckets
            .entry(bucket.to_string())
            .or_default();
    }

    /// PUT an object; returns its new version.
    pub fn put(&self, bucket: &str, key: &[u8], data: &[u8]) -> u64 {
        let now = self.clock.now();
        let version = {
            let mut st = self.state.lock();
            st.writes += 1;
            let old_len = st
                .buckets
                .get(bucket)
                .and_then(|b| b.get(key))
                .map(|o| o.data.len() as u64);
            st.bytes_stored -= old_len.unwrap_or(0);
            st.bytes_stored += data.len() as u64;
            let b = st.buckets.entry(bucket.to_string()).or_default();
            let version = b.get(key).map_or(0, |o| o.meta.version + 1);
            b.insert(
                key.to_vec(),
                Object {
                    data: data.to_vec(),
                    meta: BlobMeta {
                        size: ByteSize::b(data.len() as u64),
                        version,
                        stored_at: now,
                    },
                },
            );
            version
        };
        self.metrics.counter("blob_writes").inc();
        self.metrics
            .gauge("bytes_stored")
            .set(self.state.lock().bytes_stored as i64);
        self.pay(&self.write_latency, "write_latency_us");
        version
    }

    /// GET an object.
    pub fn get(&self, bucket: &str, key: &[u8]) -> Option<Vec<u8>> {
        let out = {
            let mut st = self.state.lock();
            st.reads += 1;
            st.buckets.get(bucket)?.get(key).map(|o| o.data.clone())
        };
        self.metrics.counter("blob_reads").inc();
        self.pay(&self.read_latency, "read_latency_us");
        out
    }

    /// HEAD an object's metadata (no read fee in this model).
    pub fn head(&self, bucket: &str, key: &[u8]) -> Option<BlobMeta> {
        self.state
            .lock()
            .buckets
            .get(bucket)?
            .get(key)
            .map(|o| o.meta.clone())
    }

    /// DELETE an object; returns whether it existed.
    pub fn delete(&self, bucket: &str, key: &[u8]) -> bool {
        let existed = {
            let mut st = self.state.lock();
            st.writes += 1;
            match st.buckets.get_mut(bucket).and_then(|b| b.remove(key)) {
                Some(o) => {
                    st.bytes_stored -= o.data.len() as u64;
                    true
                }
                None => false,
            }
        };
        self.metrics.counter("blob_deletes").inc();
        self.metrics
            .gauge("bytes_stored")
            .set(self.state.lock().bytes_stored as i64);
        self.pay(&self.write_latency, "write_latency_us");
        existed
    }

    /// List keys in a bucket with a prefix, in order.
    pub fn list(&self, bucket: &str, prefix: &[u8]) -> Vec<Vec<u8>> {
        let st = self.state.lock();
        st.buckets
            .get(bucket)
            .map(|b| {
                b.keys()
                    .filter(|k| k.starts_with(prefix))
                    .cloned()
                    .collect()
            })
            .unwrap_or_default()
    }

    /// Bytes currently stored.
    pub fn bytes_stored(&self) -> ByteSize {
        ByteSize::b(self.state.lock().bytes_stored)
    }

    /// (reads, writes) op counts.
    pub fn op_counts(&self) -> (u64, u64) {
        let st = self.state.lock();
        (st.reads, st.writes)
    }

    /// The bill for the current footprint held for `duration` plus all
    /// operations so far.
    pub fn bill(&self, duration: Duration) -> Dollars {
        let st = self.state.lock();
        self.pricing
            .cost(ByteSize::b(st.bytes_stored), duration, st.reads, st.writes)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use taureau_core::clock::{Clock, VirtualClock};

    fn store() -> BlobStore {
        BlobStore::with_latency(
            VirtualClock::shared(),
            LatencyModel::zero(),
            LatencyModel::zero(),
        )
    }

    #[test]
    fn put_get_roundtrip_with_versions() {
        let s = store();
        assert_eq!(s.put("b", b"k", b"v1"), 0);
        assert_eq!(s.put("b", b"k", b"v2"), 1);
        assert_eq!(s.get("b", b"k"), Some(b"v2".to_vec()));
        assert_eq!(s.head("b", b"k").unwrap().version, 1);
        assert_eq!(s.get("b", b"missing"), None);
        assert_eq!(s.get("nobucket", b"k"), None);
    }

    #[test]
    fn delete_and_accounting() {
        let s = store();
        s.put("b", b"k", &vec![0u8; 1000]);
        assert_eq!(s.bytes_stored(), ByteSize::b(1000));
        s.put("b", b"k", &[0u8; 200]); // overwrite shrinks footprint
        assert_eq!(s.bytes_stored(), ByteSize::b(200));
        assert!(s.delete("b", b"k"));
        assert!(!s.delete("b", b"k"));
        assert_eq!(s.bytes_stored(), ByteSize::ZERO);
    }

    #[test]
    fn list_by_prefix_is_ordered() {
        let s = store();
        s.put("b", b"logs/2", b"x");
        s.put("b", b"logs/1", b"x");
        s.put("b", b"data/1", b"x");
        let keys = s.list("b", b"logs/");
        assert_eq!(keys, vec![b"logs/1".to_vec(), b"logs/2".to_vec()]);
        assert_eq!(s.list("b", b"").len(), 3);
        assert!(s.list("empty", b"").is_empty());
    }

    #[test]
    fn billing_combines_storage_and_ops() {
        let s = store();
        s.put("b", b"k", &vec![0u8; 1_000_000]);
        let _ = s.get("b", b"k");
        let month = Duration::from_secs(30 * 24 * 3600);
        let bill = s.bill(month);
        // ~1 MB for a month ≈ $0.0000219 plus two ops.
        assert!(bill > 0.0 && bill < 0.001, "bill {bill}");
        assert_eq!(s.op_counts(), (1, 1));
    }

    #[test]
    fn injected_latency_advances_clock() {
        let clock = VirtualClock::shared();
        let s = BlobStore::new(clock.clone());
        let t0 = clock.now();
        s.put("b", b"k", b"v");
        let _ = s.get("b", b"k");
        assert!(clock.now() - t0 > Duration::from_millis(10));
    }
}
