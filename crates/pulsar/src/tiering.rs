//! Tiered storage — one of the "key features of Pulsar" §4.3 lists.
//!
//! Sealed ledger segments migrate from the bookies (hot, replicated,
//! memory-priced) to a BaaS blob store (cold, cheap, S3-priced). Consumers
//! read through transparently: the broker's read path falls back to the
//! cold tier when a ledger is no longer on the bookies. Offloading is
//! driven explicitly by [`crate::broker::PulsarCluster::offload_sealed`],
//! mirroring Pulsar's offload policies.

use std::sync::Arc;

use bytes::Bytes;
use taureau_baas::BlobStore;
use taureau_core::id::LedgerId;

use crate::metadata::MetadataStore;

/// The cold-tier backend configured on a cluster.
#[derive(Clone)]
pub struct TierBackend {
    /// The blob store holding offloaded segments.
    pub blob: Arc<BlobStore>,
    /// Bucket for segment objects.
    pub bucket: String,
}

fn offload_meta_key(id: LedgerId) -> String {
    format!("/offload/{}", id.raw())
}

fn object_key(id: LedgerId) -> Vec<u8> {
    format!("segment/{}", id.raw()).into_bytes()
}

/// Encode a sealed segment's entries: `[count u32] ([len u32][bytes])*`.
pub(crate) fn encode_segment(entries: &[Bytes]) -> Vec<u8> {
    let total: usize = 4 + entries.iter().map(|e| 4 + e.len()).sum::<usize>();
    let mut out = Vec::with_capacity(total);
    out.extend_from_slice(&(entries.len() as u32).to_le_bytes());
    for e in entries {
        out.extend_from_slice(&(e.len() as u32).to_le_bytes());
        out.extend_from_slice(e);
    }
    out
}

fn decode_entry(bytes: &[u8], index: u64) -> Option<Bytes> {
    let count = u32::from_le_bytes(bytes.get(0..4)?.try_into().ok()?) as u64;
    if index >= count {
        return None;
    }
    let mut pos = 4usize;
    for i in 0..count {
        let len = u32::from_le_bytes(bytes.get(pos..pos + 4)?.try_into().ok()?) as usize;
        pos += 4;
        if i == index {
            return Some(Bytes::copy_from_slice(bytes.get(pos..pos + len)?));
        }
        pos += len;
    }
    None
}

impl TierBackend {
    /// New backend writing to `bucket`.
    pub fn new(blob: Arc<BlobStore>, bucket: impl Into<String>) -> Self {
        let bucket = bucket.into();
        blob.create_bucket(&bucket);
        Self { blob, bucket }
    }

    /// Record an offloaded segment: blob object plus metadata (entry
    /// count), so readers can find it after the bookies forget it.
    pub(crate) fn store_segment(&self, meta: &MetadataStore, id: LedgerId, entries: &[Bytes]) {
        self.blob
            .put(&self.bucket, &object_key(id), &encode_segment(entries));
        meta.put(
            &offload_meta_key(id),
            entries.len().to_string().into_bytes(),
        );
    }

    /// Whether a ledger was offloaded, and its entry count if so.
    pub(crate) fn offloaded_len(&self, meta: &MetadataStore, id: LedgerId) -> Option<u64> {
        let v = meta.get(&offload_meta_key(id))?;
        std::str::from_utf8(&v.data).ok()?.parse().ok()
    }

    /// Read one entry of an offloaded segment (pays cold-tier latency).
    pub(crate) fn read_entry(
        &self,
        meta: &MetadataStore,
        id: LedgerId,
        entry: u64,
    ) -> Option<Bytes> {
        self.offloaded_len(meta, id)?;
        let bytes = self.blob.get(&self.bucket, &object_key(id))?;
        decode_entry(&bytes, entry)
    }

    /// Remove an offloaded segment (topic trim of cold data).
    pub(crate) fn delete_segment(&self, meta: &MetadataStore, id: LedgerId) {
        self.blob.delete(&self.bucket, &object_key(id));
        meta.delete(&offload_meta_key(id));
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use taureau_core::clock::VirtualClock;
    use taureau_core::latency::LatencyModel;

    fn backend() -> (TierBackend, Arc<MetadataStore>) {
        let blob = Arc::new(BlobStore::with_latency(
            VirtualClock::shared(),
            LatencyModel::zero(),
            LatencyModel::zero(),
        ));
        (
            TierBackend::new(blob, "pulsar-cold"),
            Arc::new(MetadataStore::new()),
        )
    }

    #[test]
    fn segment_codec_roundtrip() {
        let entries: Vec<Bytes> = vec![
            Bytes::from_static(b"first"),
            Bytes::new(),
            Bytes::from(vec![9u8; 1000]),
        ];
        let enc = encode_segment(&entries);
        for (i, e) in entries.iter().enumerate() {
            assert_eq!(decode_entry(&enc, i as u64).as_ref(), Some(e));
        }
        assert_eq!(decode_entry(&enc, 3), None);
    }

    #[test]
    fn store_and_read_back() {
        let (tier, meta) = backend();
        let id = LedgerId(7);
        let entries: Vec<Bytes> = (0..5u8).map(|i| Bytes::from(vec![i; 10])).collect();
        tier.store_segment(&meta, id, &entries);
        assert_eq!(tier.offloaded_len(&meta, id), Some(5));
        assert_eq!(
            tier.read_entry(&meta, id, 3),
            Some(Bytes::from(vec![3u8; 10]))
        );
        assert_eq!(tier.read_entry(&meta, id, 9), None);
        assert_eq!(tier.read_entry(&meta, LedgerId(99), 0), None);
        tier.delete_segment(&meta, id);
        assert_eq!(tier.offloaded_len(&meta, id), None);
    }
}
