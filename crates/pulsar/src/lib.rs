//! # taureau-pulsar
//!
//! A Pulsar-style messaging system implementing the architecture of §4.3
//! (Figure 1) of *Le Taureau*: **stateless brokers** that receive and
//! dispatch messages, **bookies** (à la Apache BookKeeper) that store them
//! durably in replicated append-only **ledgers**, and a **metadata store**
//! (the ZooKeeper ensemble in the figure) for coordination and
//! configuration. On top sits the paper's serverless hook: **Pulsar
//! Functions** ([`functions`]), which consume from topics, run user code,
//! and publish results — the runtime that hosts Figure 3's Count-Min
//! sketch.
//!
//! Layer map (bottom-up, matching the paper's description):
//!
//! - [`metadata`]: versioned CAS store standing in for ZooKeeper.
//! - [`bookie`]: storage nodes holding ledger fragments; fail-stop crash
//!   injection for recovery tests.
//! - [`ledger`]: the BookKeeper client — create/append/read/close with
//!   ensemble/write-quorum/ack-quorum replication and fencing-on-close.
//!   A ledger is "an append-only data structure with a single writer …
//!   after the ledger has been closed, it can only be opened in read-only
//!   mode" (§4.3).
//! - [`broker`]: topics (partitioned), producers, consumers, and the three
//!   Pulsar subscription modes (exclusive, shared, failover). Brokers are
//!   stateless: all durable state lives in ledgers + metadata, so a broker
//!   restart loses nothing (tested).
//! - [`functions`]: the serverless function runtime over topics, with
//!   function-local state and a [`Context`](functions::Context) mirroring
//!   the paper's `process(String input, Context context)` interface.

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

pub mod bookie;
pub mod broker;
pub mod error;
pub mod functions;
pub mod geo;
pub mod ledger;
pub mod message;
pub mod metadata;
pub mod tiering;

pub use broker::{Consumer, FenceCheck, Producer, PulsarCluster, PulsarConfig, SubscriptionMode};
pub use error::PulsarError;
pub use functions::{Context, FunctionConfig, FunctionRuntime};
pub use geo::GeoReplicator;
pub use message::{Message, MessageId};
