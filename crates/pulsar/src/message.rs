//! Messages and message identities.

use bytes::Bytes;
use serde::{Deserialize, Serialize};
use taureau_core::id::LedgerId;

/// A message's durable address: which ledger segment and entry it was
/// persisted as, plus the partition it belongs to. Totally ordered within a
/// partition (ledger ids grow over segment rollovers; entry ids grow within
/// a ledger).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct MessageId {
    /// Topic partition index.
    pub partition: u32,
    /// Ledger segment holding the entry.
    pub ledger: LedgerId,
    /// Entry index within the ledger.
    pub entry: u64,
}

/// A message delivered to a consumer.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Message {
    /// Durable identity (used for acknowledgment).
    pub id: MessageId,
    /// Optional partition key the producer supplied.
    pub key: Option<Bytes>,
    /// Payload bytes.
    pub payload: Bytes,
    /// Publish timestamp (clock time at the broker).
    pub publish_time: std::time::Duration,
}

impl Message {
    /// Payload as UTF-8, if valid (convenience for text-stream functions).
    pub fn payload_str(&self) -> Option<&str> {
        std::str::from_utf8(&self.payload).ok()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn message_ids_order_within_partition() {
        let a = MessageId {
            partition: 0,
            ledger: LedgerId(1),
            entry: 5,
        };
        let b = MessageId {
            partition: 0,
            ledger: LedgerId(1),
            entry: 6,
        };
        let c = MessageId {
            partition: 0,
            ledger: LedgerId(2),
            entry: 0,
        };
        assert!(a < b && b < c);
    }

    #[test]
    fn payload_str_roundtrip() {
        let m = Message {
            id: MessageId {
                partition: 0,
                ledger: LedgerId(0),
                entry: 0,
            },
            key: None,
            payload: Bytes::from_static(b"hello"),
            publish_time: std::time::Duration::ZERO,
        };
        assert_eq!(m.payload_str(), Some("hello"));
        let bin = Message {
            payload: Bytes::from_static(&[0xff, 0xfe]),
            ..m
        };
        assert_eq!(bin.payload_str(), None);
    }
}
