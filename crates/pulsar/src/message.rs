//! Messages and message identities.

use bytes::Bytes;
use serde::{Deserialize, Serialize};
use taureau_core::id::LedgerId;
use taureau_core::trace::SpanContext;

/// A message's durable address: which ledger segment and entry it was
/// persisted as, plus the partition it belongs to. Totally ordered within a
/// partition (ledger ids grow over segment rollovers; entry ids grow within
/// a ledger; batch indices grow within a batched entry).
///
/// Producer-side batching packs several messages into one ledger entry, so
/// an id also carries its position inside that entry: `batch_index` of
/// `batch_size`. Unbatched messages are the degenerate batch `0 of 1`,
/// which keeps ids from before batching existed bit-compatible — the
/// derived `Ord`/`Eq` and the entry-level cursor format are unchanged for
/// them.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct MessageId {
    /// Topic partition index.
    pub partition: u32,
    /// Ledger segment holding the entry.
    pub ledger: LedgerId,
    /// Entry index within the ledger.
    pub entry: u64,
    /// Position within the batched entry (0 for unbatched messages).
    pub batch_index: u32,
    /// Number of messages sharing this entry (1 for unbatched messages).
    pub batch_size: u32,
}

impl MessageId {
    /// Id of an unbatched message: the degenerate batch `0 of 1`.
    pub fn new(partition: u32, ledger: LedgerId, entry: u64) -> Self {
        Self {
            partition,
            ledger,
            entry,
            batch_index: 0,
            batch_size: 1,
        }
    }

    /// Id of message `batch_index` inside a `batch_size`-message entry.
    pub fn in_batch(
        partition: u32,
        ledger: LedgerId,
        entry: u64,
        batch_index: u32,
        batch_size: u32,
    ) -> Self {
        debug_assert!(batch_index < batch_size.max(1));
        Self {
            partition,
            ledger,
            entry,
            batch_index,
            batch_size,
        }
    }

    /// The entry-level (batch-erased) form of this id: what cursors,
    /// entry-level ack sets, and the `"p;l;e"` persistence format track.
    pub fn canonical(&self) -> Self {
        Self::new(self.partition, self.ledger, self.entry)
    }
}

/// A message delivered to a consumer.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Message {
    /// Durable identity (used for acknowledgment).
    pub id: MessageId,
    /// Optional partition key the producer supplied.
    pub key: Option<Bytes>,
    /// Payload bytes.
    pub payload: Bytes,
    /// Publish timestamp (clock time at the broker).
    pub publish_time: std::time::Duration,
    /// Causal trace context carried through the broker: the dispatch
    /// span's identity when the broker is traced (itself a child of the
    /// producer's publish span, recovered from the entry header), or the
    /// publish span's identity verbatim when only the producer side is
    /// traced. `None` for untraced publishes and pre-context entries.
    /// Consumers hand this to `Tracer::span_child_of` (or
    /// `FaasPlatform::invoke_traced`) so the processing hop joins the
    /// publisher's trace instead of rooting a new one.
    pub ctx: Option<SpanContext>,
}

impl Message {
    /// Payload as UTF-8, if valid (convenience for text-stream functions).
    pub fn payload_str(&self) -> Option<&str> {
        std::str::from_utf8(&self.payload).ok()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn message_ids_order_within_partition() {
        let a = MessageId::new(0, LedgerId(1), 5);
        let b = MessageId::new(0, LedgerId(1), 6);
        let c = MessageId::new(0, LedgerId(2), 0);
        assert!(a < b && b < c);
    }

    #[test]
    fn batch_ids_order_within_entry_and_canonicalize() {
        let a = MessageId::in_batch(0, LedgerId(1), 5, 0, 3);
        let b = MessageId::in_batch(0, LedgerId(1), 5, 1, 3);
        let c = MessageId::in_batch(0, LedgerId(1), 5, 2, 3);
        let next = MessageId::new(0, LedgerId(1), 6);
        assert!(a < b && b < c && c < next);
        assert_eq!(a.canonical(), b.canonical());
        // An unbatched id is already canonical.
        let plain = MessageId::new(2, LedgerId(9), 7);
        assert_eq!(plain.canonical(), plain);
    }

    #[test]
    fn payload_str_roundtrip() {
        let m = Message {
            id: MessageId::new(0, LedgerId(0), 0),
            key: None,
            payload: Bytes::from_static(b"hello"),
            publish_time: std::time::Duration::ZERO,
            ctx: None,
        };
        assert_eq!(m.payload_str(), Some("hello"));
        let bin = Message {
            payload: Bytes::from_static(&[0xff, 0xfe]),
            ..m
        };
        assert_eq!(bin.payload_str(), None);
    }
}
