//! Geo-replication — another §4.3 headline feature.
//!
//! A [`GeoReplicator`] asynchronously mirrors topics from a source cluster
//! to a remote cluster: it holds a durable `geo-<dst>` subscription on
//! each replicated topic and republishes on pump. Replication is
//! at-least-once and ordered per source partition (messages are
//! republished with their original keys, so key-routing is preserved on
//! the remote side); the subscription cursor makes it resumable across
//! source-broker restarts.

use crate::broker::{Consumer, Producer, PulsarCluster, SubscriptionMode};
use crate::error::Result;

/// One-way topic replication between two clusters.
pub struct GeoReplicator {
    /// Name of the remote region (used in the subscription name).
    remote_name: String,
    links: Vec<Link>,
}

struct Link {
    consumer: Consumer,
    producer: Producer,
}

impl GeoReplicator {
    /// Create a replicator towards `remote_name`.
    pub fn new(remote_name: impl Into<String>) -> Self {
        Self {
            remote_name: remote_name.into(),
            links: Vec::new(),
        }
    }

    /// Replicate `topic` from `src` to `dst`. The topic must exist on
    /// both; the replication subscription starts at the topic's current
    /// beginning, so pre-existing backlog replicates too.
    pub fn add_topic(
        &mut self,
        src: &PulsarCluster,
        dst: &PulsarCluster,
        topic: &str,
    ) -> Result<()> {
        let sub = format!("geo-{}", self.remote_name);
        let consumer = src.subscribe(topic, &sub, SubscriptionMode::Failover)?;
        let producer = dst.producer(topic)?;
        self.links.push(Link { consumer, producer });
        Ok(())
    }

    /// Ship everything currently available on all links; returns messages
    /// replicated. Acks on the source only after the remote publish
    /// succeeded (at-least-once).
    pub fn pump(&mut self) -> Result<usize> {
        let mut shipped = 0;
        for link in &mut self.links {
            while let Some(msg) = link.consumer.receive()? {
                match msg.key.as_deref() {
                    Some(key) => link.producer.send_keyed(key, &msg.payload)?,
                    None => link.producer.send(&msg.payload)?,
                };
                link.consumer.ack(msg.id)?;
                shipped += 1;
            }
        }
        Ok(shipped)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::broker::PulsarConfig;
    use taureau_core::clock::WallClock;

    fn cluster() -> PulsarCluster {
        PulsarCluster::new(PulsarConfig::default(), WallClock::shared())
    }

    #[test]
    fn replicates_backlog_and_new_traffic() {
        let west = cluster();
        let east = cluster();
        west.create_topic("events", 2).unwrap();
        east.create_topic("events", 2).unwrap();
        let p = west.producer("events").unwrap();
        for i in 0..10u64 {
            p.send(&i.to_le_bytes()).unwrap();
        }
        let mut geo = GeoReplicator::new("east");
        geo.add_topic(&west, &east, "events").unwrap();
        assert_eq!(geo.pump().unwrap(), 10);
        // New traffic after the link is up.
        for i in 10..15u64 {
            p.send(&i.to_le_bytes()).unwrap();
        }
        assert_eq!(geo.pump().unwrap(), 5);
        let mut reader = east
            .subscribe("events", "check", SubscriptionMode::Shared)
            .unwrap();
        assert_eq!(reader.drain().unwrap().len(), 15);
        // Idempotent pump: nothing new.
        assert_eq!(geo.pump().unwrap(), 0);
    }

    #[test]
    fn keyed_messages_keep_per_key_order_remotely() {
        let west = cluster();
        let east = cluster();
        west.create_topic("orders", 4).unwrap();
        east.create_topic("orders", 4).unwrap();
        let p = west.producer("orders").unwrap();
        for i in 0..20u64 {
            p.send_keyed(format!("user-{}", i % 3).as_bytes(), &i.to_le_bytes())
                .unwrap();
        }
        let mut geo = GeoReplicator::new("east");
        geo.add_topic(&west, &east, "orders").unwrap();
        geo.pump().unwrap();
        let mut reader = east
            .subscribe("orders", "check", SubscriptionMode::Shared)
            .unwrap();
        let mut last: std::collections::HashMap<Vec<u8>, u64> = std::collections::HashMap::new();
        for m in reader.drain().unwrap() {
            let v = u64::from_le_bytes(m.payload[..].try_into().unwrap());
            let k = m.key.unwrap().to_vec();
            if let Some(&prev) = last.get(&k) {
                assert!(v > prev, "per-key order broken remotely");
            }
            last.insert(k, v);
        }
        assert_eq!(last.len(), 3);
    }

    #[test]
    fn replication_survives_source_broker_restart() {
        let west = cluster();
        let east = cluster();
        west.create_topic("t", 1).unwrap();
        east.create_topic("t", 1).unwrap();
        let p = west.producer("t").unwrap();
        for i in 0..5u64 {
            p.send(&i.to_le_bytes()).unwrap();
        }
        let mut geo = GeoReplicator::new("east");
        geo.add_topic(&west, &east, "t").unwrap();
        geo.pump().unwrap();
        // Source broker restarts; the durable geo cursor resumes.
        west.restart_broker();
        for i in 5..8u64 {
            p.send(&i.to_le_bytes()).unwrap();
        }
        // Old consumer handle is stale after restart (its in-memory
        // consumer registration vanished) — a production replicator
        // re-subscribes; ours reattaches the link.
        let mut geo2 = GeoReplicator::new("east");
        geo2.add_topic(&west, &east, "t").unwrap();
        assert_eq!(geo2.pump().unwrap(), 3, "only unreplicated messages ship");
        let mut reader = east
            .subscribe("t", "check", SubscriptionMode::Shared)
            .unwrap();
        assert_eq!(reader.drain().unwrap().len(), 8);
    }
}
