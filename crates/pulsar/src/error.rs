//! Pulsar error types.

use taureau_core::id::LedgerId;

/// Errors from the messaging layer.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum PulsarError {
    /// Topic does not exist.
    TopicNotFound(String),
    /// Topic already exists.
    TopicExists(String),
    /// Ledger does not exist.
    LedgerNotFound(LedgerId),
    /// Appended to a ledger that is closed (fenced).
    LedgerClosed(LedgerId),
    /// Could not satisfy the ack quorum (too many bookies down).
    QuorumUnavailable {
        /// Acks needed.
        needed: usize,
        /// Acks obtained.
        got: usize,
    },
    /// Entry missing from every live replica.
    EntryUnavailable {
        /// The ledger.
        ledger: LedgerId,
        /// The entry id.
        entry: u64,
    },
    /// Not enough live bookies to form an ensemble.
    InsufficientBookies {
        /// Ensemble size requested.
        needed: usize,
        /// Live bookies available.
        alive: usize,
    },
    /// An exclusive subscription already has a consumer attached.
    ExclusiveSubscriptionBusy(String),
    /// Metadata compare-and-swap failed (stale version).
    MetadataConflict(String),
    /// A tenant's retained-entry backlog quota is full.
    TenantQuotaExceeded {
        /// The tenant.
        tenant: String,
        /// The configured cap.
        quota: u64,
    },
    /// A function with this name is already registered.
    FunctionExists(String),
    /// Function not found.
    FunctionNotFound(String),
    /// The broker no longer owns this topic (a newer epoch fenced it out).
    Fenced(String),
}

impl std::fmt::Display for PulsarError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            PulsarError::TopicNotFound(t) => write!(f, "topic not found: {t}"),
            PulsarError::TopicExists(t) => write!(f, "topic already exists: {t}"),
            PulsarError::LedgerNotFound(l) => write!(f, "ledger not found: {l}"),
            PulsarError::LedgerClosed(l) => write!(f, "ledger closed: {l}"),
            PulsarError::QuorumUnavailable { needed, got } => {
                write!(f, "ack quorum unavailable: needed {needed}, got {got}")
            }
            PulsarError::EntryUnavailable { ledger, entry } => {
                write!(
                    f,
                    "entry {entry} of {ledger} unavailable on all live replicas"
                )
            }
            PulsarError::InsufficientBookies { needed, alive } => {
                write!(f, "need {needed} bookies for ensemble, {alive} alive")
            }
            PulsarError::ExclusiveSubscriptionBusy(s) => {
                write!(f, "exclusive subscription {s} already has a consumer")
            }
            PulsarError::MetadataConflict(k) => write!(f, "metadata CAS conflict on {k}"),
            PulsarError::TenantQuotaExceeded { tenant, quota } => {
                write!(
                    f,
                    "tenant {tenant} backlog quota of {quota} entries is full"
                )
            }
            PulsarError::FunctionExists(n) => write!(f, "function already registered: {n}"),
            PulsarError::FunctionNotFound(n) => write!(f, "function not found: {n}"),
            PulsarError::Fenced(t) => write!(f, "broker fenced off topic {t}"),
        }
    }
}

impl std::error::Error for PulsarError {}

/// Convenience result alias.
pub type Result<T> = std::result::Result<T, PulsarError>;
