//! Ledgers — the BookKeeper client layer.
//!
//! §4.3: "A ledger is an append-only data structure with a single writer
//! that is assigned to multiple bookies, and their entries are replicated
//! to multiple bookie nodes. … a process can create a ledger, append
//! entries and close the ledger. After the ledger has been closed, either
//! explicitly or because the writer process crashed, it can only be opened
//! in read-only mode."
//!
//! Replication follows BookKeeper's model: each ledger has an *ensemble* of
//! bookies; each entry is written to a *write quorum* of them (chosen
//! round-robin by entry id) and acknowledged once an *ack quorum* of those
//! writes succeed. Closing records the last acknowledged entry in metadata
//! (fencing); recovery after writer crash reads the highest entry visible
//! on the ensemble.

use std::sync::Arc;

use bytes::Bytes;
use taureau_core::id::LedgerId;

use crate::bookie::Bookie;
use crate::error::{PulsarError, Result};
use crate::metadata::MetadataStore;

/// Replication parameters for new ledgers.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct LedgerConfig {
    /// Bookies assigned to the ledger.
    pub ensemble: usize,
    /// Replicas written per entry.
    pub write_quorum: usize,
    /// Acks required before an append succeeds.
    pub ack_quorum: usize,
}

impl Default for LedgerConfig {
    fn default() -> Self {
        Self {
            ensemble: 3,
            write_quorum: 2,
            ack_quorum: 2,
        }
    }
}

impl LedgerConfig {
    fn validate(&self) {
        assert!(self.ensemble >= 1);
        assert!(self.write_quorum >= 1 && self.write_quorum <= self.ensemble);
        assert!(self.ack_quorum >= 1 && self.ack_quorum <= self.write_quorum);
    }
}

/// Ledger metadata persisted in the metadata store.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct LedgerMeta {
    /// Bookie indices in the ensemble.
    pub ensemble: Vec<usize>,
    /// Replicas per entry.
    pub write_quorum: usize,
    /// Whether the ledger is sealed.
    pub closed: bool,
    /// Last entry id if closed and non-empty.
    pub last_entry: Option<u64>,
}

impl LedgerMeta {
    fn encode(&self) -> Vec<u8> {
        let ens: Vec<String> = self.ensemble.iter().map(usize::to_string).collect();
        format!(
            "{};{};{};{}",
            if self.closed { "closed" } else { "open" },
            self.last_entry.map_or("-".to_string(), |e| e.to_string()),
            self.write_quorum,
            ens.join(",")
        )
        .into_bytes()
    }

    fn decode(bytes: &[u8]) -> Option<Self> {
        let s = std::str::from_utf8(bytes).ok()?;
        let mut parts = s.split(';');
        let closed = parts.next()? == "closed";
        let last = parts.next()?;
        let last_entry = if last == "-" {
            None
        } else {
            Some(last.parse().ok()?)
        };
        let write_quorum = parts.next()?.parse().ok()?;
        let ensemble = parts
            .next()?
            .split(',')
            .filter(|x| !x.is_empty())
            .map(|x| x.parse().ok())
            .collect::<Option<Vec<usize>>>()?;
        Some(Self {
            ensemble,
            write_quorum,
            closed,
            last_entry,
        })
    }
}

/// The BookKeeper client: creates, reads, and recovers ledgers over a set
/// of bookies, with metadata in the coordination store.
#[derive(Clone)]
pub struct BookKeeper {
    bookies: Arc<Vec<Arc<Bookie>>>,
    meta: Arc<MetadataStore>,
}

fn meta_key(id: LedgerId) -> String {
    format!("/ledgers/{}", id.raw())
}

impl BookKeeper {
    /// Client over the given bookies and metadata store.
    pub fn new(bookies: Arc<Vec<Arc<Bookie>>>, meta: Arc<MetadataStore>) -> Self {
        Self { bookies, meta }
    }

    /// Number of live bookies.
    pub fn alive_bookies(&self) -> usize {
        self.bookies.iter().filter(|b| b.is_alive()).count()
    }

    /// Create a new ledger with the given replication config.
    pub fn create_ledger(&self, cfg: LedgerConfig) -> Result<LedgerWriter> {
        cfg.validate();
        let alive: Vec<usize> = self
            .bookies
            .iter()
            .enumerate()
            .filter(|(_, b)| b.is_alive())
            .map(|(i, _)| i)
            .collect();
        if alive.len() < cfg.ensemble {
            return Err(PulsarError::InsufficientBookies {
                needed: cfg.ensemble,
                alive: alive.len(),
            });
        }
        let id = LedgerId(self.meta.next_sequence());
        // Rotate the ensemble start by ledger id so load spreads.
        let start = (id.raw() as usize) % alive.len();
        let ensemble: Vec<usize> = (0..cfg.ensemble)
            .map(|i| alive[(start + i) % alive.len()])
            .collect();
        let meta = LedgerMeta {
            ensemble: ensemble.clone(),
            write_quorum: cfg.write_quorum,
            closed: false,
            last_entry: None,
        };
        self.meta.create(&meta_key(id), meta.encode())?;
        Ok(LedgerWriter {
            bk: self.clone(),
            id,
            ensemble,
            cfg,
            next_entry: 0,
            closed: false,
        })
    }

    /// Fetch ledger metadata.
    pub fn ledger_meta(&self, id: LedgerId) -> Result<LedgerMeta> {
        let v = self
            .meta
            .get(&meta_key(id))
            .ok_or(PulsarError::LedgerNotFound(id))?;
        LedgerMeta::decode(&v.data).ok_or(PulsarError::LedgerNotFound(id))
    }

    fn replicas_for(meta: &LedgerMeta, entry: u64) -> impl Iterator<Item = usize> + '_ {
        let n = meta.ensemble.len();
        let start = (entry as usize) % n;
        (0..meta.write_quorum).map(move |i| meta.ensemble[(start + i) % n])
    }

    /// Read one entry, trying each replica until a live bookie has it.
    pub fn read_entry(&self, id: LedgerId, entry: u64) -> Result<Bytes> {
        let meta = self.ledger_meta(id)?;
        for bk_idx in Self::replicas_for(&meta, entry) {
            if let Some(data) = self.bookies[bk_idx].read_entry(id, entry) {
                return Ok(data);
            }
        }
        Err(PulsarError::EntryUnavailable { ledger: id, entry })
    }

    /// Last confirmed entry of a ledger: from metadata if closed, otherwise
    /// by polling the ensemble (recovery read).
    pub fn last_entry(&self, id: LedgerId) -> Result<Option<u64>> {
        let meta = self.ledger_meta(id)?;
        if meta.closed {
            return Ok(meta.last_entry);
        }
        Ok(meta
            .ensemble
            .iter()
            .filter_map(|&i| self.bookies[i].last_entry(id))
            .max())
    }

    /// Fence and close a ledger whose writer crashed: record the highest
    /// entry visible on the ensemble as the final length.
    ///
    /// The ensemble is fenced *before* the recovery read, so a deposed
    /// writer that is still running cannot reach its ack quorum after the
    /// new owner has decided the ledger's final length.
    pub fn recover_and_close(&self, id: LedgerId) -> Result<Option<u64>> {
        let mut meta = self.ledger_meta(id)?;
        if meta.closed {
            return Ok(meta.last_entry);
        }
        for &i in &meta.ensemble {
            self.bookies[i].fence(id);
        }
        let last = meta
            .ensemble
            .iter()
            .filter_map(|&i| self.bookies[i].last_entry(id))
            .max();
        meta.closed = true;
        meta.last_entry = last;
        self.meta.put(&meta_key(id), meta.encode());
        Ok(last)
    }

    /// Delete a ledger's entries and metadata ("when the entries … are no
    /// longer needed, the whole ledger can be deleted").
    pub fn delete_ledger(&self, id: LedgerId) -> Result<()> {
        let meta = self.ledger_meta(id)?;
        for &i in &meta.ensemble {
            self.bookies[i].delete_ledger(id);
        }
        self.meta.delete(&meta_key(id));
        Ok(())
    }

    /// Ids of every ledger known to the metadata store.
    pub fn all_ledgers(&self) -> Vec<LedgerId> {
        let prefix = "/ledgers/";
        let mut ids: Vec<LedgerId> = self
            .meta
            .list_prefix(prefix)
            .into_iter()
            .filter_map(|k| k[prefix.len()..].parse().ok().map(LedgerId))
            .collect();
        ids.sort_unstable();
        ids
    }

    /// Ledgers whose ensemble includes the given bookie index.
    pub fn ledgers_on(&self, bookie: usize) -> Vec<LedgerId> {
        self.all_ledgers()
            .into_iter()
            .filter(|&id| {
                self.ledger_meta(id)
                    .map(|m| m.ensemble.contains(&bookie))
                    .unwrap_or(false)
            })
            .collect()
    }

    /// Ledgers that currently have at least one dead bookie in their
    /// ensemble — i.e. entries stored below the replication factor. The
    /// re-replication worker drains this to zero.
    pub fn underreplicated_ledgers(&self) -> Vec<LedgerId> {
        self.all_ledgers()
            .into_iter()
            .filter(|&id| {
                self.ledger_meta(id)
                    .map(|m| m.ensemble.iter().any(|&i| !self.bookies[i].is_alive()))
                    .unwrap_or(false)
            })
            .collect()
    }

    /// Repair one ledger after a bookie failure: copy every entry the dead
    /// bookie was a replica for onto `target`, then swap `dead` → `target`
    /// in the ensemble metadata.
    ///
    /// The ledger is fenced and closed first (its writer, if any, has lost
    /// its quorum anyway), so the entry set being copied is final. Swapping
    /// by ensemble *position* preserves the round-robin placement function:
    /// `replicas_for` keeps mapping each entry to the same slots, with the
    /// new bookie standing in the dead one's slot.
    pub fn rereplicate_ledger(&self, id: LedgerId, dead: usize, target: usize) -> Result<u64> {
        let mut meta = self.ledger_meta(id)?;
        if !meta.ensemble.contains(&dead) {
            return Ok(0);
        }
        if !meta.closed {
            self.recover_and_close(id)?;
            meta = self.ledger_meta(id)?;
        }
        let mut copied = 0u64;
        if let Some(last) = meta.last_entry {
            for entry in 0..=last {
                if !Self::replicas_for(&meta, entry).any(|i| i == dead) {
                    continue;
                }
                // Read from any surviving replica; the dead bookie simply
                // returns None so the iteration skips it.
                let data = self.read_entry(id, entry)?;
                if !self.bookies[target].store_recovered(id, entry, data) {
                    return Err(PulsarError::QuorumUnavailable { needed: 1, got: 0 });
                }
                copied += 1;
            }
        }
        // The ledger is closed: fence the replacement too so a zombie
        // writer cannot append through the new replica.
        self.bookies[target].fence(id);
        for slot in meta.ensemble.iter_mut() {
            if *slot == dead {
                *slot = target;
            }
        }
        self.meta.put(&meta_key(id), meta.encode());
        Ok(copied)
    }

    /// Re-replicate every ledger that had `dead` in its ensemble onto
    /// `target`. Returns `(ledgers_repaired, entries_copied)`.
    pub fn rereplicate_from(&self, dead: usize, target: usize) -> Result<(usize, u64)> {
        let mut ledgers = 0usize;
        let mut entries = 0u64;
        for id in self.ledgers_on(dead) {
            entries += self.rereplicate_ledger(id, dead, target)?;
            ledgers += 1;
        }
        Ok((ledgers, entries))
    }
}

/// The single writer of an open ledger.
pub struct LedgerWriter {
    bk: BookKeeper,
    id: LedgerId,
    ensemble: Vec<usize>,
    cfg: LedgerConfig,
    next_entry: u64,
    closed: bool,
}

impl LedgerWriter {
    /// Ledger id.
    pub fn id(&self) -> LedgerId {
        self.id
    }

    /// Entries appended so far.
    pub fn len(&self) -> u64 {
        self.next_entry
    }

    /// Whether no entries were appended.
    pub fn is_empty(&self) -> bool {
        self.next_entry == 0
    }

    /// Append an entry, replicating to the write quorum.
    ///
    /// # Errors
    /// [`PulsarError::LedgerClosed`] after close;
    /// [`PulsarError::QuorumUnavailable`] if fewer than `ack_quorum`
    /// replicas accepted the write (the entry id is *not* consumed — the
    /// broker responds by rolling over to a new ledger).
    pub fn append(&mut self, data: Bytes) -> Result<u64> {
        if self.closed {
            return Err(PulsarError::LedgerClosed(self.id));
        }
        let entry = self.next_entry;
        let n = self.ensemble.len();
        let start = (entry as usize) % n;
        let mut acks = 0;
        for i in 0..self.cfg.write_quorum {
            let bk_idx = self.ensemble[(start + i) % n];
            // `data.clone()` is a refcount bump, not a byte copy: every
            // replica in the write quorum stores a view of the SAME
            // allocation (`replicas_share_one_entry_allocation` pins this
            // down). Replicating an entry is O(quorum), not O(quorum·len).
            if self.bk.bookies[bk_idx].add_entry(self.id, entry, data.clone()) {
                acks += 1;
            }
        }
        if acks < self.cfg.ack_quorum {
            return Err(PulsarError::QuorumUnavailable {
                needed: self.cfg.ack_quorum,
                got: acks,
            });
        }
        self.next_entry += 1;
        Ok(entry)
    }

    /// Seal the ledger; subsequent appends fail and readers see the final
    /// length in metadata.
    pub fn close(&mut self) -> Result<()> {
        if self.closed {
            return Ok(());
        }
        self.closed = true;
        // Recovery (a new topic owner, or bookie-failure re-replication)
        // fences the ensemble and closes the metadata behind a writer that
        // is still running; the writer only notices on its next append.
        // That recovered state — the final length, possibly a repaired
        // ensemble — must win: overwriting it here would put a dead bookie
        // back into the ensemble and silently undo the re-replication.
        if matches!(self.bk.ledger_meta(self.id), Ok(m) if m.closed) {
            return Ok(());
        }
        let meta = LedgerMeta {
            ensemble: self.ensemble.clone(),
            write_quorum: self.cfg.write_quorum,
            closed: true,
            last_entry: self.next_entry.checked_sub(1),
        };
        self.bk.meta.put(&meta_key(self.id), meta.encode());
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cluster(n: usize) -> (BookKeeper, Arc<Vec<Arc<Bookie>>>) {
        let bookies: Arc<Vec<Arc<Bookie>>> =
            Arc::new((0..n).map(|i| Arc::new(Bookie::new(i))).collect());
        let meta = Arc::new(MetadataStore::new());
        (BookKeeper::new(bookies.clone(), meta), bookies)
    }

    #[test]
    fn meta_codec_roundtrip() {
        for meta in [
            LedgerMeta {
                ensemble: vec![0, 2, 4],
                write_quorum: 2,
                closed: false,
                last_entry: None,
            },
            LedgerMeta {
                ensemble: vec![1],
                write_quorum: 1,
                closed: true,
                last_entry: Some(41),
            },
            LedgerMeta {
                ensemble: vec![0, 1],
                write_quorum: 2,
                closed: true,
                last_entry: None,
            },
        ] {
            assert_eq!(LedgerMeta::decode(&meta.encode()), Some(meta));
        }
    }

    #[test]
    fn append_read_roundtrip() {
        let (bk, _) = cluster(3);
        let mut w = bk.create_ledger(LedgerConfig::default()).unwrap();
        for i in 0..10u64 {
            let e = w.append(Bytes::from(i.to_le_bytes().to_vec())).unwrap();
            assert_eq!(e, i);
        }
        for i in 0..10u64 {
            let data = bk.read_entry(w.id(), i).unwrap();
            assert_eq!(data, Bytes::from(i.to_le_bytes().to_vec()));
        }
    }

    #[test]
    fn fenced_writer_close_cannot_clobber_recovered_meta() {
        let (bk, bookies) = cluster(4);
        let mut w = bk.create_ledger(LedgerConfig::default()).unwrap();
        for i in 0..6u64 {
            w.append(Bytes::from(i.to_le_bytes().to_vec())).unwrap();
        }
        // A bookie in the ensemble dies; repair fences + closes the open
        // tail and swaps the dead slot for the spare — all while the
        // original writer is still open and unaware.
        let meta_before = bk.ledger_meta(w.id()).unwrap();
        let dead = meta_before.ensemble[0];
        let spare = (0..4).find(|i| !meta_before.ensemble.contains(i)).unwrap();
        bookies[dead].crash();
        bk.rereplicate_ledger(w.id(), dead, spare).unwrap();
        let repaired = bk.ledger_meta(w.id()).unwrap();
        assert!(repaired.closed);
        assert!(!repaired.ensemble.contains(&dead));

        // The deposed writer notices only on its next append (fenced),
        // and seals. Its stale view must NOT overwrite the repair.
        assert!(matches!(
            w.append(Bytes::from_static(b"zombie")),
            Err(PulsarError::QuorumUnavailable { .. })
        ));
        w.close().unwrap();
        assert_eq!(bk.ledger_meta(w.id()).unwrap(), repaired);
        assert!(bk.underreplicated_ledgers().is_empty());
    }

    #[test]
    fn entries_are_replicated_write_quorum_times() {
        let (bk, bookies) = cluster(3);
        let cfg = LedgerConfig {
            ensemble: 3,
            write_quorum: 2,
            ack_quorum: 2,
        };
        let mut w = bk.create_ledger(cfg).unwrap();
        for _ in 0..30 {
            w.append(Bytes::from_static(b"x")).unwrap();
        }
        let total: usize = bookies.iter().map(|b| b.entry_count(w.id())).sum();
        assert_eq!(total, 60, "each entry stored write_quorum=2 times");
    }

    #[test]
    fn replicas_share_one_entry_allocation() {
        // Group commit only pays off if replication doesn't multiply the
        // memcpy: the same refcounted buffer must back every replica.
        let (bk, bookies) = cluster(3);
        let cfg = LedgerConfig {
            ensemble: 3,
            write_quorum: 3,
            ack_quorum: 2,
        };
        let mut w = bk.create_ledger(cfg).unwrap();
        let data = Bytes::from(vec![7u8; 4096]);
        let src = data.as_ref().as_ptr();
        let entry = w.append(data).unwrap();
        let ptrs: Vec<*const u8> = bookies
            .iter()
            .map(|b| {
                b.read_entry(w.id(), entry)
                    .expect("replica stored")
                    .as_ref()
                    .as_ptr()
            })
            .collect();
        assert_eq!(ptrs.len(), 3);
        for p in &ptrs {
            assert_eq!(*p, src, "replica copied the entry instead of sharing it");
        }
    }

    #[test]
    fn close_seals_ledger() {
        let (bk, _) = cluster(3);
        let mut w = bk.create_ledger(LedgerConfig::default()).unwrap();
        w.append(Bytes::from_static(b"a")).unwrap();
        w.close().unwrap();
        assert!(matches!(
            w.append(Bytes::from_static(b"b")),
            Err(PulsarError::LedgerClosed(_))
        ));
        let meta = bk.ledger_meta(w.id()).unwrap();
        assert!(meta.closed);
        assert_eq!(meta.last_entry, Some(0));
        assert_eq!(bk.last_entry(w.id()).unwrap(), Some(0));
    }

    #[test]
    fn reads_survive_one_bookie_crash() {
        let (bk, bookies) = cluster(3);
        let cfg = LedgerConfig {
            ensemble: 3,
            write_quorum: 2,
            ack_quorum: 2,
        };
        let mut w = bk.create_ledger(cfg).unwrap();
        for i in 0..20u64 {
            w.append(Bytes::from(vec![i as u8])).unwrap();
        }
        bookies[1].crash();
        for i in 0..20u64 {
            assert_eq!(
                bk.read_entry(w.id(), i).unwrap(),
                Bytes::from(vec![i as u8])
            );
        }
    }

    #[test]
    fn writes_fail_when_quorum_lost() {
        let (bk, bookies) = cluster(3);
        let cfg = LedgerConfig {
            ensemble: 3,
            write_quorum: 3,
            ack_quorum: 2,
        };
        let mut w = bk.create_ledger(cfg).unwrap();
        w.append(Bytes::from_static(b"ok")).unwrap();
        bookies[0].crash();
        bookies[1].crash();
        assert!(matches!(
            w.append(Bytes::from_static(b"fails")),
            Err(PulsarError::QuorumUnavailable { needed: 2, got: 1 })
        ));
    }

    #[test]
    fn recovery_closes_orphaned_ledger() {
        let (bk, _) = cluster(3);
        let mut w = bk.create_ledger(LedgerConfig::default()).unwrap();
        for _ in 0..5 {
            w.append(Bytes::from_static(b"e")).unwrap();
        }
        let id = w.id();
        drop(w); // writer "crashes" without closing
        let last = bk.recover_and_close(id).unwrap();
        assert_eq!(last, Some(4));
        let meta = bk.ledger_meta(id).unwrap();
        assert!(meta.closed);
        // Recovery is idempotent.
        assert_eq!(bk.recover_and_close(id).unwrap(), Some(4));
    }

    #[test]
    fn create_fails_without_enough_bookies() {
        let (bk, bookies) = cluster(3);
        bookies[0].crash();
        let cfg = LedgerConfig {
            ensemble: 3,
            write_quorum: 2,
            ack_quorum: 1,
        };
        assert!(matches!(
            bk.create_ledger(cfg),
            Err(PulsarError::InsufficientBookies {
                needed: 3,
                alive: 2
            })
        ));
    }

    #[test]
    fn recovery_fences_out_deposed_writer() {
        let (bk, _) = cluster(3);
        let cfg = LedgerConfig {
            ensemble: 3,
            write_quorum: 2,
            ack_quorum: 2,
        };
        let mut w = bk.create_ledger(cfg).unwrap();
        w.append(Bytes::from_static(b"before")).unwrap();
        // New owner recovers the ledger while the old writer still runs.
        assert_eq!(bk.recover_and_close(w.id()).unwrap(), Some(0));
        // The zombie writer can no longer reach its ack quorum.
        assert!(matches!(
            w.append(Bytes::from_static(b"zombie")),
            Err(PulsarError::QuorumUnavailable { .. })
        ));
        assert_eq!(bk.last_entry(w.id()).unwrap(), Some(0));
    }

    #[test]
    fn rereplication_restores_replication_factor() {
        let bookies: Arc<Vec<Arc<Bookie>>> =
            Arc::new((0..4).map(|i| Arc::new(Bookie::new(i))).collect());
        bookies[3].crash(); // spare, not yet provisioned
        let meta = Arc::new(MetadataStore::new());
        let bk = BookKeeper::new(bookies.clone(), meta);
        let cfg = LedgerConfig {
            ensemble: 3,
            write_quorum: 2,
            ack_quorum: 2,
        };
        let mut w = bk.create_ledger(cfg).unwrap();
        for i in 0..30u64 {
            w.append(Bytes::from(vec![i as u8])).unwrap();
        }
        w.close().unwrap();
        let id = w.id();
        let dead = 1usize;
        bookies[dead].crash();
        assert_eq!(bk.underreplicated_ledgers(), vec![id]);
        // Provision the spare and repair onto it.
        bookies[3].restart();
        let (ledgers, entries) = bk.rereplicate_from(dead, 3).unwrap();
        assert_eq!(ledgers, 1);
        // write_quorum=2 over a 3-ensemble: the dead slot held 2/3 of entries.
        assert_eq!(entries, 20);
        assert!(bk.underreplicated_ledgers().is_empty());
        // Every entry is back at full replication on live bookies.
        let m = bk.ledger_meta(id).unwrap();
        assert!(!m.ensemble.contains(&dead));
        for entry in 0..30u64 {
            let copies = BookKeeper::replicas_for(&m, entry)
                .filter(|&i| bookies[i].read_entry(id, entry).is_some())
                .count();
            assert_eq!(copies, 2, "entry {entry} below replication factor");
        }
    }

    #[test]
    fn delete_ledger_reclaims_storage() {
        let (bk, bookies) = cluster(3);
        let mut w = bk.create_ledger(LedgerConfig::default()).unwrap();
        w.append(Bytes::from(vec![0u8; 1000])).unwrap();
        w.close().unwrap();
        let id = w.id();
        assert!(bookies.iter().map(|b| b.stored_bytes()).sum::<u64>() > 0);
        bk.delete_ledger(id).unwrap();
        assert_eq!(bookies.iter().map(|b| b.stored_bytes()).sum::<u64>(), 0);
        assert!(matches!(
            bk.read_entry(id, 0),
            Err(PulsarError::LedgerNotFound(_))
        ));
    }
}
