//! Bookies — the durable storage nodes of Figure 1.
//!
//! "Pulsar's storage nodes are called bookies, and are based on Apache
//! BookKeeper, a distributed write-ahead log system" (§4.3). A bookie
//! stores entries for many ledger fragments. Bookies are fail-stop: a
//! crashed bookie rejects reads and writes until restarted (its data
//! survives, as BookKeeper journals do), which is what the ledger layer's
//! quorum replication is tested against.

use std::collections::{BTreeMap, HashMap};
use std::sync::atomic::{AtomicBool, Ordering};

use bytes::Bytes;
use parking_lot::Mutex;
use taureau_core::id::LedgerId;

/// One storage node.
#[derive(Debug)]
pub struct Bookie {
    /// Index within the cluster.
    pub index: usize,
    alive: AtomicBool,
    ledgers: Mutex<HashMap<LedgerId, BTreeMap<u64, Bytes>>>,
}

impl Bookie {
    /// New live bookie.
    pub fn new(index: usize) -> Self {
        Self {
            index,
            alive: AtomicBool::new(true),
            ledgers: Mutex::new(HashMap::new()),
        }
    }

    /// Whether the bookie is serving requests.
    pub fn is_alive(&self) -> bool {
        self.alive.load(Ordering::SeqCst)
    }

    /// Fail-stop crash: requests fail until [`Bookie::restart`].
    pub fn crash(&self) {
        self.alive.store(false, Ordering::SeqCst);
    }

    /// Bring the bookie back (its stored entries survive, like a journal
    /// replay).
    pub fn restart(&self) {
        self.alive.store(true, Ordering::SeqCst);
    }

    /// Store an entry. Returns `false` if the bookie is down.
    pub fn add_entry(&self, ledger: LedgerId, entry: u64, data: Bytes) -> bool {
        if !self.is_alive() {
            return false;
        }
        self.ledgers
            .lock()
            .entry(ledger)
            .or_default()
            .insert(entry, data);
        true
    }

    /// Read an entry. `None` if down or absent.
    pub fn read_entry(&self, ledger: LedgerId, entry: u64) -> Option<Bytes> {
        if !self.is_alive() {
            return None;
        }
        self.ledgers.lock().get(&ledger)?.get(&entry).cloned()
    }

    /// Highest entry id stored for a ledger (for recovery).
    pub fn last_entry(&self, ledger: LedgerId) -> Option<u64> {
        if !self.is_alive() {
            return None;
        }
        self.ledgers
            .lock()
            .get(&ledger)?
            .keys()
            .next_back()
            .copied()
    }

    /// Drop all entries of a ledger (ledger deletion).
    pub fn delete_ledger(&self, ledger: LedgerId) {
        self.ledgers.lock().remove(&ledger);
    }

    /// Number of entries stored for a ledger (test/metrics hook; works even
    /// when crashed, as it inspects the journal, not the serving path).
    pub fn entry_count(&self, ledger: LedgerId) -> usize {
        self.ledgers.lock().get(&ledger).map_or(0, BTreeMap::len)
    }

    /// Total bytes stored on this bookie.
    pub fn stored_bytes(&self) -> u64 {
        self.ledgers
            .lock()
            .values()
            .flat_map(|l| l.values())
            .map(|b| b.len() as u64)
            .sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn add_and_read() {
        let b = Bookie::new(0);
        assert!(b.add_entry(LedgerId(1), 0, Bytes::from_static(b"e0")));
        assert!(b.add_entry(LedgerId(1), 1, Bytes::from_static(b"e1")));
        assert_eq!(
            b.read_entry(LedgerId(1), 0),
            Some(Bytes::from_static(b"e0"))
        );
        assert_eq!(b.read_entry(LedgerId(1), 9), None);
        assert_eq!(b.last_entry(LedgerId(1)), Some(1));
        assert_eq!(b.entry_count(LedgerId(1)), 2);
    }

    #[test]
    fn crash_rejects_requests_but_preserves_data() {
        let b = Bookie::new(0);
        b.add_entry(LedgerId(1), 0, Bytes::from_static(b"x"));
        b.crash();
        assert!(!b.add_entry(LedgerId(1), 1, Bytes::from_static(b"y")));
        assert_eq!(b.read_entry(LedgerId(1), 0), None);
        assert_eq!(b.last_entry(LedgerId(1)), None);
        b.restart();
        assert_eq!(b.read_entry(LedgerId(1), 0), Some(Bytes::from_static(b"x")));
    }

    #[test]
    fn delete_ledger_reclaims() {
        let b = Bookie::new(0);
        b.add_entry(LedgerId(1), 0, Bytes::from(vec![0u8; 100]));
        assert_eq!(b.stored_bytes(), 100);
        b.delete_ledger(LedgerId(1));
        assert_eq!(b.stored_bytes(), 0);
        assert_eq!(b.read_entry(LedgerId(1), 0), None);
    }
}
