//! Bookies — the durable storage nodes of Figure 1.
//!
//! "Pulsar's storage nodes are called bookies, and are based on Apache
//! BookKeeper, a distributed write-ahead log system" (§4.3). A bookie
//! stores entries for many ledger fragments. Bookies are fail-stop: a
//! crashed bookie rejects reads and writes until restarted (its data
//! survives, as BookKeeper journals do), which is what the ledger layer's
//! quorum replication is tested against.

use std::collections::BTreeMap;
use std::sync::atomic::{AtomicBool, Ordering};

use bytes::Bytes;
use taureau_core::id::LedgerId;
use taureau_core::sync::ShardedMap;

/// One storage node.
///
/// The ledger map is sharded by ledger id, so appends to different ledgers
/// (i.e. different topics' active segments) never contend on one
/// bookie-wide lock — only entries of the same ledger serialize.
#[derive(Debug)]
pub struct Bookie {
    /// Index within the cluster.
    pub index: usize,
    alive: AtomicBool,
    ledgers: ShardedMap<LedgerId, BTreeMap<u64, Bytes>>,
    fenced: ShardedMap<LedgerId, ()>,
}

impl Bookie {
    /// New live bookie.
    pub fn new(index: usize) -> Self {
        Self {
            index,
            alive: AtomicBool::new(true),
            ledgers: ShardedMap::new(),
            fenced: ShardedMap::new(),
        }
    }

    /// Whether the bookie is serving requests.
    pub fn is_alive(&self) -> bool {
        self.alive.load(Ordering::SeqCst)
    }

    /// Fail-stop crash: requests fail until [`Bookie::restart`].
    pub fn crash(&self) {
        self.alive.store(false, Ordering::SeqCst);
    }

    /// Bring the bookie back (its stored entries survive, like a journal
    /// replay).
    pub fn restart(&self) {
        self.alive.store(true, Ordering::SeqCst);
    }

    /// Store an entry. Returns `false` if the bookie is down or the ledger
    /// has been fenced here by a recovering writer.
    pub fn add_entry(&self, ledger: LedgerId, entry: u64, data: Bytes) -> bool {
        if !self.is_alive() || self.is_fenced(ledger) {
            return false;
        }
        self.ledgers.with(&ledger, |shard| {
            shard.entry(ledger).or_default().insert(entry, data);
        });
        true
    }

    /// Store an entry copied by the re-replication worker. Unlike
    /// [`Bookie::add_entry`] this ignores the fence mark: fencing stops
    /// *writers*, while repair copies entries of an already-closed ledger.
    pub fn store_recovered(&self, ledger: LedgerId, entry: u64, data: Bytes) -> bool {
        if !self.is_alive() {
            return false;
        }
        self.ledgers.with(&ledger, |shard| {
            shard.entry(ledger).or_default().insert(entry, data);
        });
        true
    }

    /// Fence a ledger: reject all future appends for it on this bookie.
    ///
    /// Recovery fences the ensemble *before* reading the tail, so a deposed
    /// writer that still believes it owns the ledger can no longer reach the
    /// ack quorum. The mark survives crashes (it lives in the journal, like
    /// BookKeeper's fence bit) and is only cleared by ledger deletion.
    pub fn fence(&self, ledger: LedgerId) {
        self.fenced.insert(ledger, ());
    }

    /// Whether appends to this ledger are fenced off on this bookie.
    pub fn is_fenced(&self, ledger: LedgerId) -> bool {
        self.fenced.contains_key(&ledger)
    }

    /// Read an entry. `None` if down or absent.
    pub fn read_entry(&self, ledger: LedgerId, entry: u64) -> Option<Bytes> {
        if !self.is_alive() {
            return None;
        }
        self.ledgers
            .with(&ledger, |shard| shard.get(&ledger)?.get(&entry).cloned())
    }

    /// Highest entry id stored for a ledger (for recovery).
    pub fn last_entry(&self, ledger: LedgerId) -> Option<u64> {
        if !self.is_alive() {
            return None;
        }
        self.ledgers.with(&ledger, |shard| {
            shard.get(&ledger)?.keys().next_back().copied()
        })
    }

    /// Drop all entries of a ledger (ledger deletion).
    pub fn delete_ledger(&self, ledger: LedgerId) {
        self.ledgers.remove(&ledger);
        self.fenced.remove(&ledger);
    }

    /// Ids of all ledgers with entries stored on this bookie (journal scan;
    /// works even when crashed — re-replication reads the survivors, not
    /// the corpse, but the repair planner may still enumerate it).
    pub fn ledger_ids(&self) -> Vec<LedgerId> {
        self.ledgers.keys()
    }

    /// Number of entries stored for a ledger (test/metrics hook; works even
    /// when crashed, as it inspects the journal, not the serving path).
    pub fn entry_count(&self, ledger: LedgerId) -> usize {
        self.ledgers
            .with(&ledger, |shard| shard.get(&ledger).map_or(0, BTreeMap::len))
    }

    /// Total bytes stored on this bookie.
    pub fn stored_bytes(&self) -> u64 {
        let mut total = 0u64;
        self.ledgers.for_each(|_, l| {
            total += l.values().map(|b| b.len() as u64).sum::<u64>();
        });
        total
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn add_and_read() {
        let b = Bookie::new(0);
        assert!(b.add_entry(LedgerId(1), 0, Bytes::from_static(b"e0")));
        assert!(b.add_entry(LedgerId(1), 1, Bytes::from_static(b"e1")));
        assert_eq!(
            b.read_entry(LedgerId(1), 0),
            Some(Bytes::from_static(b"e0"))
        );
        assert_eq!(b.read_entry(LedgerId(1), 9), None);
        assert_eq!(b.last_entry(LedgerId(1)), Some(1));
        assert_eq!(b.entry_count(LedgerId(1)), 2);
    }

    #[test]
    fn crash_rejects_requests_but_preserves_data() {
        let b = Bookie::new(0);
        b.add_entry(LedgerId(1), 0, Bytes::from_static(b"x"));
        b.crash();
        assert!(!b.add_entry(LedgerId(1), 1, Bytes::from_static(b"y")));
        assert_eq!(b.read_entry(LedgerId(1), 0), None);
        assert_eq!(b.last_entry(LedgerId(1)), None);
        b.restart();
        assert_eq!(b.read_entry(LedgerId(1), 0), Some(Bytes::from_static(b"x")));
    }

    #[test]
    fn fence_rejects_appends_but_serves_reads() {
        let b = Bookie::new(0);
        assert!(b.add_entry(LedgerId(1), 0, Bytes::from_static(b"x")));
        b.fence(LedgerId(1));
        assert!(!b.add_entry(LedgerId(1), 1, Bytes::from_static(b"y")));
        assert_eq!(b.read_entry(LedgerId(1), 0), Some(Bytes::from_static(b"x")));
        // Other ledgers are unaffected.
        assert!(b.add_entry(LedgerId(2), 0, Bytes::from_static(b"z")));
        // Deletion clears the fence mark.
        b.delete_ledger(LedgerId(1));
        assert!(!b.is_fenced(LedgerId(1)));
    }

    #[test]
    fn delete_ledger_reclaims() {
        let b = Bookie::new(0);
        b.add_entry(LedgerId(1), 0, Bytes::from(vec![0u8; 100]));
        assert_eq!(b.stored_bytes(), 100);
        b.delete_ledger(LedgerId(1));
        assert_eq!(b.stored_bytes(), 0);
        assert_eq!(b.read_entry(LedgerId(1), 0), None);
    }
}
