//! Brokers, topics, producers, consumers and subscriptions.
//!
//! §4.3: "The Pulsar broker is a stateless component … receiving and
//! dispatching messages while using bookie as durable storage for messages
//! until they are consumed." Everything durable here — topic configuration,
//! segment lists, subscription cursors — lives in the metadata store and
//! the ledgers; the in-memory broker state can be thrown away and rebuilt
//! ([`PulsarCluster::restart_broker`] does exactly that, and the tests
//! verify no message is lost).
//!
//! Topics are partitioned ("Pulsar supports partitioned topics in order to
//! scale to large data volumes"); producers route by key hash or
//! round-robin; subscriptions come in Pulsar's three classic modes
//! ([`SubscriptionMode`]). Message storage rolls over ledger segments at a
//! configurable size, and a bookie failure mid-stream triggers rollover to
//! a fresh ledger on a healthy ensemble.

use std::collections::{BTreeMap, BTreeSet, HashMap};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Instant;

use bytes::{BufMut, Bytes, BytesMut};
use parking_lot::Mutex;
use taureau_core::clock::{SharedClock, WallClock};
use taureau_core::hash::hash64;
use taureau_core::id::LedgerId;
use taureau_core::metrics::MetricsRegistry;
use taureau_core::sync::{ContentionProfiler, LockSite, ShardedMap};
use taureau_core::trace::{SpanContext, Tracer};

use crate::bookie::Bookie;
use crate::error::{PulsarError, Result};
use crate::ledger::{BookKeeper, LedgerConfig, LedgerWriter};
use crate::message::{Message, MessageId};
use crate::metadata::MetadataStore;

const ROUTE_SEED: u64 = 0x52_4f55_5445; // "ROUTE"

/// Subsystem label stamped on every span this crate records.
const TRACE_SYSTEM: &str = "taureau-pulsar";

/// Cluster configuration.
#[derive(Debug, Clone)]
pub struct PulsarConfig {
    /// Number of bookies (storage nodes).
    pub bookies: usize,
    /// Replication parameters for ledgers.
    pub ledger: LedgerConfig,
    /// Entries per ledger before rolling over to a new segment.
    pub max_entries_per_ledger: u64,
}

impl Default for PulsarConfig {
    fn default() -> Self {
        Self {
            bookies: 3,
            ledger: LedgerConfig::default(),
            max_entries_per_ledger: 1024,
        }
    }
}

/// Pulsar's subscription modes.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SubscriptionMode {
    /// One consumer only; a second attach is rejected.
    Exclusive,
    /// Messages are distributed across consumers (work-queue semantics).
    Shared,
    /// Many consumers attach, only the first (the active one) receives;
    /// on its detach the next takes over.
    Failover,
}

impl SubscriptionMode {
    fn encode(self) -> &'static str {
        match self {
            SubscriptionMode::Exclusive => "exclusive",
            SubscriptionMode::Shared => "shared",
            SubscriptionMode::Failover => "failover",
        }
    }

    fn decode(s: &str) -> Option<Self> {
        match s {
            "exclusive" => Some(SubscriptionMode::Exclusive),
            "shared" => Some(SubscriptionMode::Shared),
            "failover" => Some(SubscriptionMode::Failover),
            _ => None,
        }
    }
}

// --------------------------------------------------------------------------
// Entry codec.
//
// Unbatched: `[key_len u32 | key | publish_nanos u64 | payload]`.
//
// Batched (producer-side batching, one group-committed ledger entry for N
// messages): the `key_len` slot holds [`BATCH_MARKER`] — impossible for a
// real key, whose length is bounded far below `u32::MAX` — followed by
//
// `[BATCH_MARKER u32 | count u32 | publish_nanos u64 |
//   end_offset u32 × count | payload bytes…]`
//
// `end_offset[i]` is the exclusive end of payload `i` relative to the start
// of the payload section, so decoding message `i` is O(1): slice between
// `end_offset[i-1]` (0 for the first) and `end_offset[i]`. Batched messages
// are key-less (a partition key exists to *route*, and the whole batch
// routes together); they share one publish timestamp — the group commit
// persists them at the same instant.
//
// Decoded keys and payloads are zero-copy [`Bytes::slice`] views into the
// replicated entry buffer.

/// `key_len` sentinel marking the batched entry format.
const BATCH_MARKER: u32 = u32::MAX;

/// `key_len` sentinel marking a trace-context header: the next
/// [`SpanContext::WIRE_LEN`] bytes carry the publish span's identity, and
/// the rest of the buffer is a complete classic entry (unbatched *or*
/// batched — the inner format keeps its own marker). Like
/// [`BATCH_MARKER`], this value is impossible for a real key length, so
/// pre-context entries decode unchanged. The context rides in the entry
/// *header*, never the payload: decoded keys/payloads remain zero-copy
/// slices of the one replicated buffer.
const CTX_MARKER: u32 = u32::MAX - 1;

/// Prefix `entry` with a trace-context header when `ctx` is present.
/// Untraced publishes (`ctx: None`) produce bit-identical classic entries,
/// so enabling tracing later never invalidates stored ledgers.
fn with_ctx_header(ctx: Option<SpanContext>, entry: Bytes) -> Bytes {
    let Some(ctx) = ctx else {
        return entry;
    };
    let mut buf = BytesMut::with_capacity(4 + SpanContext::WIRE_LEN + entry.len());
    buf.put_u32_le(CTX_MARKER);
    buf.put_slice(&ctx.to_bytes());
    buf.put_slice(&entry);
    buf.freeze()
}

/// Strip a trace-context header, returning the carried context (if any)
/// and the inner classic entry as a zero-copy slice.
fn split_ctx(bytes: &Bytes) -> (Option<SpanContext>, Bytes) {
    const HDR: usize = 4 + SpanContext::WIRE_LEN;
    if bytes.len() >= HDR && bytes[0..4] == CTX_MARKER.to_le_bytes() {
        if let Some(ctx) = SpanContext::from_bytes(&bytes[4..HDR]) {
            return (Some(ctx), bytes.slice(HDR..));
        }
    }
    (None, bytes.clone())
}

fn encode_entry(key: Option<&[u8]>, publish_nanos: u64, payload: &[u8]) -> Bytes {
    let key = key.unwrap_or(&[]);
    let mut buf = BytesMut::with_capacity(4 + key.len() + 8 + payload.len());
    buf.put_u32_le(key.len() as u32);
    buf.put_slice(key);
    buf.put_u64_le(publish_nanos);
    buf.put_slice(payload);
    buf.freeze()
}

fn decode_entry(bytes: &Bytes) -> Option<(Option<Bytes>, u64, Bytes)> {
    if bytes.len() < 12 {
        return None;
    }
    let key_len = u32::from_le_bytes(bytes[0..4].try_into().ok()?) as usize;
    if bytes.len() < 4 + key_len + 8 {
        return None;
    }
    let key = if key_len == 0 {
        None
    } else {
        Some(bytes.slice(4..4 + key_len))
    };
    let ts = u64::from_le_bytes(bytes[4 + key_len..4 + key_len + 8].try_into().ok()?);
    let payload = bytes.slice(4 + key_len + 8..);
    Some((key, ts, payload))
}

fn encode_batch_entry<T: AsRef<[u8]>>(publish_nanos: u64, payloads: &[T]) -> Bytes {
    let total: usize = payloads.iter().map(|p| p.as_ref().len()).sum();
    let mut buf = BytesMut::with_capacity(16 + 4 * payloads.len() + total);
    buf.put_u32_le(BATCH_MARKER);
    buf.put_u32_le(payloads.len() as u32);
    buf.put_u64_le(publish_nanos);
    let mut end = 0u32;
    for p in payloads {
        end += p.as_ref().len() as u32;
        buf.put_u32_le(end);
    }
    for p in payloads {
        buf.put_slice(p.as_ref());
    }
    buf.freeze()
}

fn is_batch_entry(bytes: &Bytes) -> bool {
    bytes.len() >= 16 && bytes[0..4] == BATCH_MARKER.to_le_bytes()
}

/// Number of messages in a batched entry, or `None` if not batch-framed.
fn batch_count(bytes: &Bytes) -> Option<u32> {
    if !is_batch_entry(bytes) {
        return None;
    }
    Some(u32::from_le_bytes(bytes[4..8].try_into().ok()?))
}

/// Decode message `index` of a batched entry: O(1) via the offset table,
/// returning a zero-copy slice of the entry buffer.
fn decode_batch_message(bytes: &Bytes, index: u32) -> Option<(u64, Bytes)> {
    let count = batch_count(bytes)?;
    if index >= count {
        return None;
    }
    let ts = u64::from_le_bytes(bytes.get(8..16)?.try_into().ok()?);
    let end_at = |i: u32| -> Option<usize> {
        let off = 16 + 4 * i as usize;
        Some(u32::from_le_bytes(bytes.get(off..off + 4)?.try_into().ok()?) as usize)
    };
    let base = 16 + 4 * count as usize;
    let start = if index == 0 { 0 } else { end_at(index - 1)? };
    let end = end_at(index)?;
    if start > end || base + end > bytes.len() {
        return None;
    }
    Some((ts, bytes.slice(base + start..base + end)))
}

// --------------------------------------------------------------------------

/// Next position a subscription will read, per partition.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
struct ReadPos {
    /// Index into the partition's segment list.
    seg: usize,
    /// Entry within that segment.
    entry: u64,
    /// Message index within a batched entry (0 for unbatched entries or at
    /// an entry boundary).
    batch: u32,
}

impl ReadPos {
    /// The beginning of a partition.
    const START: ReadPos = ReadPos {
        seg: 0,
        entry: 0,
        batch: 0,
    };

    /// First message of entry `entry` in segment `seg`.
    fn at(seg: usize, entry: u64) -> Self {
        Self {
            seg,
            entry,
            batch: 0,
        }
    }
}

#[derive(Debug)]
struct SubState {
    mode: SubscriptionMode,
    /// Per-partition read position.
    read: Vec<ReadPos>,
    /// Per-partition mark-delete: everything at or before this is acked.
    mark_delete: Vec<Option<MessageId>>,
    /// Individually acked messages above the mark-delete position. Always
    /// entry-level ([`MessageId::canonical`]) ids: a batched entry enters
    /// this set only once *all* its messages are acked.
    acked: BTreeSet<MessageId>,
    /// Delivered but not yet acked (per-message ids, batch-indexed).
    pending: BTreeSet<MessageId>,
    /// Acked message indices of partially-acked batched entries, keyed by
    /// the entry's canonical id. In-memory only: a broker restart forgets
    /// partial acks and redelivers the whole entry — the same at-least-once
    /// contract unacked messages already have.
    partial: BTreeMap<MessageId, BTreeSet<u32>>,
    /// Attached consumers (by id); order matters for failover.
    consumers: Vec<u64>,
}

struct Partition {
    /// Ledger segments, oldest first. The last may be open.
    segments: Vec<LedgerId>,
    /// Open writer, if any.
    writer: Option<LedgerWriter>,
}

struct Topic {
    partitions: Vec<Partition>,
    subs: HashMap<String, SubState>,
    /// Round-robin counter for key-less producers.
    rr: u64,
}

/// Ownership check installed by a cluster layer: returns `true` while this
/// broker instance may serve the named topic. Consulted on every publish,
/// dispatch, ack, and subscribe, so a broker deposed by a newer ownership
/// epoch fails fast with [`PulsarError::Fenced`] instead of serving (or
/// corrupting) state it no longer owns.
pub type FenceCheck = Arc<dyn Fn(&str) -> bool + Send + Sync>;

struct ClusterInner {
    clock: SharedClock,
    cfg: PulsarConfig,
    bk: BookKeeper,
    bookies: Arc<Vec<Arc<Bookie>>>,
    meta: Arc<MetadataStore>,
    /// Topic-ownership fence installed by the cluster layer (standalone
    /// brokers leave it unset and serve everything).
    fence_check: Mutex<Option<FenceCheck>>,
    /// Broker-side topic state, sharded by topic-name hash so operations on
    /// different topics never serialize on one broker-wide lock. Lock
    /// ordering: topic shard → metadata shard → tier/quotas mutex; nothing
    /// acquires a topic shard while holding another, so no cycles.
    topics: ShardedMap<String, Topic>,
    metrics: MetricsRegistry,
    tracer: Mutex<Tracer>,
    next_consumer: AtomicU64,
    /// When set, `receive_scan` attributes its wall time across dispatch
    /// phases (lock acquisition, cursor bookkeeping, entry reads, decode,
    /// delivery) into the metrics registry. One relaxed load per scan when
    /// off; see [`PulsarCluster::set_dispatch_profiling`].
    dispatch_prof: AtomicBool,
    /// Optional cold tier for sealed segments (§4.3 "tiered storage").
    tier: Mutex<Option<crate::tiering::TierBackend>>,
    /// Per-tenant retained-entry quotas (§4.3 "multi-tenancy").
    quotas: Mutex<HashMap<String, u64>>,
}

/// Snapshot of dispatch-phase attribution: cumulative nanosecond totals
/// per phase since the cluster was created (counters only advance while
/// [`PulsarCluster::set_dispatch_profiling`] is on). `wall_ns` covers the
/// whole `receive_scan` call; the five phases are measured directly
/// against the same clock, so `wall_ns - explained_ns()` is the honest
/// unattributed remainder (loop control, span bookkeeping, closure
/// entry/exit) — it is *not* forced to zero by construction.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct DispatchProfile {
    /// `receive_scan` calls profiled.
    pub scans: u64,
    /// Messages delivered by profiled scans.
    pub messages: u64,
    /// Total wall time of profiled scans.
    pub wall_ns: u64,
    /// Topic-shard lock acquisition: entering the shard (hash, lock wait,
    /// lazy topic rebuild). Cross-check against the `pulsar.topics`
    /// [`LockSite`] wait histogram for the blocked component alone.
    pub lock_ns: u64,
    /// Cursor bookkeeping: read-position advance, acked-set and
    /// mark-delete skip checks, partial-batch resume, segment-length
    /// probes — the subscription-scan state machine.
    pub cursor_ns: u64,
    /// Ledger entry reads (bookie or cold tier).
    pub read_ns: u64,
    /// Entry decode and message construction (zero-copy slicing, ids,
    /// per-message trace spans).
    pub decode_ns: u64,
    /// Delivery callback (`on_msg`) — consumer-side work.
    pub deliver_ns: u64,
}

impl DispatchProfile {
    /// Named phases, in pipeline order.
    pub fn phases(&self) -> [(&'static str, u64); 5] {
        [
            ("topic_shard_lock", self.lock_ns),
            ("cursor_bookkeeping", self.cursor_ns),
            ("entry_read", self.read_ns),
            ("decode", self.decode_ns),
            ("deliver", self.deliver_ns),
        ]
    }

    /// Sum of the directly measured phases.
    pub fn explained_ns(&self) -> u64 {
        self.phases().iter().map(|(_, ns)| ns).sum()
    }

    /// Fraction of dispatch wall time the named phases account for.
    pub fn explained_fraction(&self) -> f64 {
        if self.wall_ns == 0 {
            0.0
        } else {
            (self.explained_ns() as f64 / self.wall_ns as f64).min(1.0)
        }
    }

    /// The most expensive phase — the dispatch-side bottleneck.
    pub fn top_phase(&self) -> (&'static str, u64) {
        self.phases()
            .into_iter()
            .max_by_key(|(_, ns)| *ns)
            .unwrap_or(("none", 0))
    }
}

/// Checkpoint clock for phase attribution: `tick` charges the time since
/// the previous checkpoint to one accumulator. Inert (no clock reads)
/// when constructed off.
struct PhaseClock {
    last: Option<Instant>,
}

impl PhaseClock {
    fn start(on: bool) -> Self {
        Self {
            last: on.then(Instant::now),
        }
    }

    #[inline]
    fn tick(&mut self, acc: &mut u64) {
        if let Some(last) = self.last {
            let now = Instant::now();
            *acc += now.duration_since(last).as_nanos() as u64;
            self.last = Some(now);
        }
    }
}

/// Per-scan phase accumulators, flushed to the metrics registry once per
/// `receive_scan` (striped-counter adds; no per-message registry lookups).
#[derive(Default)]
struct DispatchAcc {
    lock_ns: u64,
    cursor_ns: u64,
    read_ns: u64,
    decode_ns: u64,
    deliver_ns: u64,
}

/// A Pulsar cluster: brokers + bookies + metadata, in process.
///
/// Cheap to clone; clones share the cluster.
#[derive(Clone)]
pub struct PulsarCluster {
    inner: Arc<ClusterInner>,
}

impl PulsarCluster {
    /// Create a cluster with the given config on the given clock.
    pub fn new(cfg: PulsarConfig, clock: SharedClock) -> Self {
        let bookies: Arc<Vec<Arc<Bookie>>> =
            Arc::new((0..cfg.bookies).map(|i| Arc::new(Bookie::new(i))).collect());
        let meta = Arc::new(MetadataStore::new());
        Self::with_shared(cfg, clock, bookies, meta)
    }

    /// Create a broker instance over *shared* bookies and metadata.
    ///
    /// This is the multi-broker entry point: each simulated broker node
    /// gets its own `PulsarCluster` (its own in-memory topic state), while
    /// the bookie fleet and the metadata store are shared — exactly the
    /// stateless-broker split of §4.3. A topic's surviving state after a
    /// broker death is whatever lives in the shared layers, which is what
    /// the new owner's lazy `load_topic` rebuilds from.
    pub fn with_shared(
        cfg: PulsarConfig,
        clock: SharedClock,
        bookies: Arc<Vec<Arc<Bookie>>>,
        meta: Arc<MetadataStore>,
    ) -> Self {
        let bk = BookKeeper::new(bookies.clone(), meta.clone());
        Self {
            inner: Arc::new(ClusterInner {
                clock,
                cfg,
                bk,
                bookies,
                meta,
                fence_check: Mutex::new(None),
                topics: ShardedMap::new(),
                metrics: MetricsRegistry::new(),
                tracer: Mutex::new(Tracer::disabled()),
                next_consumer: AtomicU64::new(0),
                dispatch_prof: AtomicBool::new(false),
                tier: Mutex::new(None),
                quotas: Mutex::new(HashMap::new()),
            }),
        }
    }

    /// Install a topic-ownership fence (see [`FenceCheck`]). The cluster
    /// layer points this at its epoch-fenced lease table; operations on
    /// topics the check rejects fail with [`PulsarError::Fenced`].
    pub fn set_fence_check(&self, check: FenceCheck) {
        *self.inner.fence_check.lock() = Some(check);
    }

    /// Shared metadata store (cluster layer + tests).
    pub fn metadata(&self) -> &Arc<MetadataStore> {
        &self.inner.meta
    }

    fn check_fence(&self, topic: &str) -> Result<()> {
        // Clone the hook out of the lock: the check may consult the
        // cluster control plane, which must not nest inside broker locks.
        let check = self.inner.fence_check.lock().clone();
        if let Some(check) = check {
            if !check(topic) {
                self.inner.metrics.counter("fenced_rejections").inc();
                return Err(PulsarError::Fenced(topic.to_string()));
            }
        }
        Ok(())
    }

    /// Default 3-bookie cluster on a wall clock.
    pub fn with_defaults() -> Self {
        Self::new(PulsarConfig::default(), WallClock::shared())
    }

    /// The cluster's bookies (for failure injection in tests/benches).
    pub fn bookies(&self) -> &[Arc<Bookie>] {
        &self.inner.bookies
    }

    /// Metrics registry.
    pub fn metrics(&self) -> &MetricsRegistry {
        &self.inner.metrics
    }

    /// Attach a tracer; publish and dispatch paths record spans on it.
    pub fn set_tracer(&self, tracer: Tracer) {
        *self.inner.tracer.lock() = tracer;
    }

    /// The attached tracer (disabled unless [`PulsarCluster::set_tracer`]
    /// was called).
    pub fn tracer(&self) -> Tracer {
        self.inner.tracer.lock().clone()
    }

    /// Direct BookKeeper access (used by benches).
    pub fn bookkeeper(&self) -> &BookKeeper {
        &self.inner.bk
    }

    /// Attach a contention [`LockSite`] named `pulsar.topics` to the
    /// broker's topic-shard map and register it with `prof`: every
    /// `with_topic` acquisition (publish, dispatch, ack, cursor and
    /// subscription maintenance) then reports per-shard wait/hold timings.
    /// Idempotent: a second call returns the already-attached site.
    pub fn enable_contention_profiling(&self, prof: &ContentionProfiler) -> Arc<LockSite> {
        if let Some(site) = self.inner.topics.profiler() {
            return Arc::clone(site);
        }
        let site = prof.site("pulsar.topics", self.inner.topics.shard_count());
        if !self.inner.topics.attach_profiler(Arc::clone(&site)) {
            // Raced another caller; use whoever won.
            return Arc::clone(self.inner.topics.profiler().expect("just attached"));
        }
        site
    }

    /// Toggle dispatch-phase attribution: when on, every `receive_scan`
    /// splits its wall time into `pulsar.dispatch.*_ns` counters (wall,
    /// lock acquisition, cursor bookkeeping, entry read, decode,
    /// delivery) readable from [`PulsarCluster::metrics`] and summarized
    /// by [`PulsarCluster::dispatch_profile`]. Costs a handful of clock
    /// reads per delivered message while on; one relaxed atomic load per
    /// scan while off.
    pub fn set_dispatch_profiling(&self, on: bool) {
        self.inner.dispatch_prof.store(on, Ordering::Relaxed);
    }

    /// Snapshot of the dispatch-phase attribution counters.
    pub fn dispatch_profile(&self) -> DispatchProfile {
        let c = |name: &str| self.inner.metrics.counter(name).get();
        DispatchProfile {
            scans: c("pulsar.dispatch.scans"),
            messages: c("pulsar.dispatch.messages"),
            wall_ns: c("pulsar.dispatch.wall_ns"),
            lock_ns: c("pulsar.dispatch.lock_ns"),
            cursor_ns: c("pulsar.dispatch.cursor_ns"),
            read_ns: c("pulsar.dispatch.read_ns"),
            decode_ns: c("pulsar.dispatch.decode_ns"),
            deliver_ns: c("pulsar.dispatch.deliver_ns"),
        }
    }

    /// Configure a cold tier: sealed segments can now be offloaded to the
    /// blob store and read back transparently (§4.3 "tiered storage").
    pub fn enable_tiering(&self, blob: std::sync::Arc<taureau_baas::BlobStore>, bucket: &str) {
        *self.inner.tier.lock() = Some(crate::tiering::TierBackend::new(blob, bucket));
    }

    /// Offload every sealed (non-open) segment of a topic to the cold
    /// tier, freeing the bookies. Returns segments offloaded.
    ///
    /// # Errors
    /// [`PulsarError::TopicNotFound`] for unknown topics. Calling without
    /// [`PulsarCluster::enable_tiering`] is a no-op returning 0.
    pub fn offload_sealed(&self, topic: &str) -> Result<usize> {
        let tier = match self.inner.tier.lock().clone() {
            Some(t) => t,
            None => return Ok(0),
        };
        self.with_topic(topic, |inner, t| {
            let mut offloaded = 0;
            for part in &t.partitions {
                for &lid in &part.segments {
                    // Skip the open segment and anything already offloaded.
                    if part.writer.as_ref().is_some_and(|w| w.id() == lid) {
                        continue;
                    }
                    if tier.offloaded_len(&inner.meta, lid).is_some() {
                        continue;
                    }
                    let Ok(Some(last)) = inner.bk.last_entry(lid) else {
                        // Empty sealed segment: record as zero entries.
                        if inner.bk.ledger_meta(lid).is_ok() {
                            tier.store_segment(&inner.meta, lid, &[]);
                            let _ = inner.bk.delete_ledger(lid);
                            offloaded += 1;
                        }
                        continue;
                    };
                    let entries: Result<Vec<Bytes>> =
                        (0..=last).map(|e| inner.bk.read_entry(lid, e)).collect();
                    tier.store_segment(&inner.meta, lid, &entries?);
                    inner.bk.delete_ledger(lid)?;
                    inner.metrics.counter("segments_offloaded").inc();
                    offloaded += 1;
                }
            }
            Ok(offloaded)
        })
    }

    /// The tenant of a topic: the segment before the first `/` in the
    /// topic name (Pulsar's `tenant/namespace/topic` convention,
    /// flattened), or the whole name for un-namespaced topics.
    pub fn tenant_of(topic: &str) -> &str {
        topic.split('/').next().unwrap_or(topic)
    }

    /// Cap the total retained entries across a tenant's topics
    /// (multi-tenancy backlog quota). Publishing beyond the cap fails with
    /// [`PulsarError::TenantQuotaExceeded`] until consumers ack and the
    /// topic is trimmed.
    pub fn set_tenant_quota(&self, tenant: &str, max_retained_entries: u64) {
        self.inner
            .quotas
            .lock()
            .insert(tenant.to_string(), max_retained_entries);
    }

    /// Create a topic with `partitions` partitions.
    pub fn create_topic(&self, name: &str, partitions: u32) -> Result<()> {
        assert!(partitions >= 1);
        let key = format!("/topics/{name}");
        if self.inner.meta.get(&key).is_some() {
            return Err(PulsarError::TopicExists(name.to_string()));
        }
        self.inner
            .meta
            .create(&key, partitions.to_string().into_bytes())?;
        for p in 0..partitions {
            self.inner
                .meta
                .put(&format!("/topics/{name}/{p}/segments"), Vec::new());
        }
        self.inner.topics.insert(
            name.to_string(),
            Topic {
                partitions: (0..partitions)
                    .map(|_| Partition {
                        segments: Vec::new(),
                        writer: None,
                    })
                    .collect(),
                subs: HashMap::new(),
                rr: 0,
            },
        );
        Ok(())
    }

    /// Number of partitions of a topic.
    pub fn partitions(&self, topic: &str) -> Result<u32> {
        let v = self
            .inner
            .meta
            .get(&format!("/topics/{topic}"))
            .ok_or_else(|| PulsarError::TopicNotFound(topic.to_string()))?;
        std::str::from_utf8(&v.data)
            .ok()
            .and_then(|s| s.parse().ok())
            .ok_or_else(|| PulsarError::TopicNotFound(topic.to_string()))
    }

    /// Attach a producer to a topic.
    pub fn producer(&self, topic: &str) -> Result<Producer> {
        self.partitions(topic)?;
        Ok(Producer {
            cluster: self.clone(),
            topic: topic.to_string(),
        })
    }

    /// Attach a consumer under a named subscription, creating the
    /// subscription at the topic's current *beginning* if new.
    pub fn subscribe(
        &self,
        topic: &str,
        subscription: &str,
        mode: SubscriptionMode,
    ) -> Result<Consumer> {
        self.check_fence(topic)?;
        let nparts = self.partitions(topic)? as usize;
        let cid = self.with_topic(topic, |inner, t| {
            let sub = t
                .subs
                .entry(subscription.to_string())
                .or_insert_with(|| SubState {
                    mode,
                    read: vec![ReadPos::START; nparts],
                    mark_delete: vec![None; nparts],
                    acked: BTreeSet::new(),
                    pending: BTreeSet::new(),
                    partial: BTreeMap::new(),
                    consumers: Vec::new(),
                });
            if sub.mode == SubscriptionMode::Exclusive && !sub.consumers.is_empty() {
                return Err(PulsarError::ExclusiveSubscriptionBusy(
                    subscription.to_string(),
                ));
            }
            let cid = inner.next_consumer.fetch_add(1, Ordering::Relaxed);
            sub.consumers.push(cid);
            // Persist subscription existence for broker restarts.
            inner.meta.put(
                &format!("/topics/{topic}/subs/{subscription}"),
                mode.encode().as_bytes().to_vec(),
            );
            Ok(cid)
        })?;
        Ok(Consumer {
            cluster: self.clone(),
            topic: topic.to_string(),
            subscription: subscription.to_string(),
            id: cid,
            rr_part: 0,
        })
    }

    // -- internals ----------------------------------------------------------

    /// Run `f` with the topic's broker-side state, holding only that
    /// topic's shard lock. Rebuilds the state from metadata if it is not
    /// loaded (stateless broker); the rebuild happens inside the shard
    /// lock so concurrent callers see it exactly once.
    fn with_topic<R>(
        &self,
        name: &str,
        f: impl FnOnce(&ClusterInner, &mut Topic) -> Result<R>,
    ) -> Result<R> {
        let inner = &*self.inner;
        inner.topics.with(name, |shard| {
            if !shard.contains_key(name) {
                let t = Self::load_topic(inner, name)?;
                shard.insert(name.to_string(), t);
            }
            f(inner, shard.get_mut(name).expect("just inserted"))
        })
    }

    /// Rebuild broker-side state for a topic from metadata (stateless
    /// broker). Touches only the metadata store and bookies — never
    /// another topic's shard.
    fn load_topic(inner: &ClusterInner, name: &str) -> Result<Topic> {
        let nparts: u32 = {
            let v = inner
                .meta
                .get(&format!("/topics/{name}"))
                .ok_or_else(|| PulsarError::TopicNotFound(name.to_string()))?;
            std::str::from_utf8(&v.data)
                .ok()
                .and_then(|s| s.parse().ok())
                .ok_or_else(|| PulsarError::TopicNotFound(name.to_string()))?
        };
        let mut partitions = Vec::with_capacity(nparts as usize);
        for p in 0..nparts {
            let segs = inner
                .meta
                .get(&format!("/topics/{name}/{p}/segments"))
                .map(|v| decode_segments(&v.data))
                .unwrap_or_default();
            // Any open tail segment belongs to a dead broker: fence it.
            if let Some(&last) = segs.last() {
                let _ = inner.bk.recover_and_close(last);
            }
            partitions.push(Partition {
                segments: segs,
                writer: None,
            });
        }
        let mut subs = HashMap::new();
        for key in inner.meta.list_prefix(&format!("/topics/{name}/subs/")) {
            let sub_name = key.rsplit('/').next().unwrap_or_default().to_string();
            let mode = inner
                .meta
                .get(&key)
                .and_then(|v| SubscriptionMode::decode(std::str::from_utf8(&v.data).ok()?))
                .unwrap_or(SubscriptionMode::Shared);
            // Restore cursors from persisted mark-delete positions.
            let mut read = Vec::with_capacity(nparts as usize);
            let mut mark_delete = Vec::with_capacity(nparts as usize);
            for p in 0..nparts {
                let md = inner
                    .meta
                    .get(&format!("/topics/{name}/{p}/cursor/{sub_name}"))
                    .and_then(|v| decode_cursor(&v.data));
                let pos = match md {
                    Some(id) => {
                        match partitions[p as usize]
                            .segments
                            .iter()
                            .position(|&l| l == id.ledger)
                        {
                            Some(seg) => ReadPos::at(seg, id.entry + 1),
                            // The cursor's segment was trimmed after the
                            // mark-delete advanced past it: everything it
                            // covered is gone, so resume at the start of
                            // what survives. (Treating the first surviving
                            // segment as the cursor's would silently skip
                            // its unconsumed prefix — entry loss.)
                            None => ReadPos::START,
                        }
                    }
                    None => ReadPos::START,
                };
                read.push(pos);
                mark_delete.push(md);
            }
            subs.insert(
                sub_name,
                SubState {
                    mode,
                    read,
                    mark_delete,
                    acked: BTreeSet::new(),
                    pending: BTreeSet::new(),
                    partial: BTreeMap::new(),
                    consumers: Vec::new(),
                },
            );
        }
        Ok(Topic {
            partitions,
            subs,
            rr: 0,
        })
    }

    /// Drop all in-memory broker state; the next operation rebuilds it from
    /// metadata + ledgers. Models a broker restart — the statelessness
    /// claim of §4.3.
    pub fn restart_broker(&self) {
        self.inner.topics.clear();
    }

    /// Drop one topic's in-memory state (its ownership moved to another
    /// broker). The next local operation — if the fence readmits it —
    /// rebuilds from shared metadata, same as after
    /// [`PulsarCluster::restart_broker`].
    pub fn unload_topic(&self, name: &str) {
        self.inner.topics.remove(name);
    }

    fn persist_segments(inner: &ClusterInner, topic: &str, p: usize, segs: &[LedgerId]) {
        inner.meta.put(
            &format!("/topics/{topic}/{p}/segments"),
            encode_segments(segs),
        );
    }

    /// Publish steps 1–2, shared by single and batched publishing.
    /// Step 1: make sure the topic is loaded (shard locked and released).
    /// Step 2: multi-tenancy backlog quota — total retained entries
    /// across the tenant's loaded topics must stay under the cap. The
    /// scan visits shards one at a time without holding the target
    /// topic's shard, so two publishers scanning each other's tenants
    /// cannot deadlock. (Concurrent publishers may both pass a nearly
    /// full quota check; the cap is a backlog bound, not a ledger.)
    ///
    /// The quota is denominated in *ledger entries*: a batched entry counts
    /// once no matter how many messages it packs — amortizing the backlog
    /// cost is exactly what batching is for.
    fn check_quota(&self, topic: &str) -> Result<()> {
        let inner = &*self.inner;
        self.with_topic(topic, |_, _| Ok(()))?;
        let tenant = Self::tenant_of(topic);
        if let Some(quota) = inner.quotas.lock().get(tenant).copied() {
            let mut retained = 0u64;
            inner.topics.for_each(|name, t| {
                if Self::tenant_of(name) == tenant {
                    for part in &t.partitions {
                        for seg in 0..part.segments.len() {
                            retained += Self::segment_len(inner, part, seg);
                        }
                    }
                }
            });
            if retained >= quota {
                inner.metrics.counter("quota_rejections").inc();
                return Err(PulsarError::TenantQuotaExceeded {
                    tenant: tenant.to_string(),
                    quota,
                });
            }
        }
        Ok(())
    }

    /// Publish step 3: append one encoded entry to the partition's open
    /// ledger, with up to one rollover retry on quorum failure. The entry
    /// buffer is refcounted ([`Bytes`]) — the writer hands the *same*
    /// allocation to every replica in the write quorum (and to the retry),
    /// so a publish copies payload bytes exactly once, at encode time.
    fn append_with_rollover(
        inner: &ClusterInner,
        tracer: &Tracer,
        topic: &str,
        p: usize,
        part: &mut Partition,
        entry_bytes: &Bytes,
    ) -> Result<(LedgerId, u64)> {
        for attempt in 0..2 {
            // Open a writer if needed, rolling over at the segment cap.
            let need_new = match &part.writer {
                None => true,
                Some(w) => w.len() >= inner.cfg.max_entries_per_ledger,
            };
            if need_new {
                if let Some(mut w) = part.writer.take() {
                    let _ = w.close();
                }
                let w = inner.bk.create_ledger(inner.cfg.ledger)?;
                part.segments.push(w.id());
                Self::persist_segments(inner, topic, p, &part.segments);
                part.writer = Some(w);
            }
            let w = part.writer.as_mut().expect("writer just ensured");
            let mut append_span = tracer.span(TRACE_SYSTEM, "pulsar.bookie_append");
            append_span.attr("ledger", w.id().raw());
            append_span.attr("attempt", attempt);
            let appended = w.append(entry_bytes.clone());
            drop(append_span);
            match appended {
                Ok(entry) => return Ok((w.id(), entry)),
                Err(PulsarError::QuorumUnavailable { .. }) => {
                    // Seal the wounded ledger and roll over to a fresh
                    // ensemble on the retry.
                    let mut w = part.writer.take().expect("writer present");
                    let _ = w.close();
                    continue;
                }
                Err(e) => return Err(e),
            }
        }
        Err(PulsarError::QuorumUnavailable {
            needed: inner.cfg.ledger.ack_quorum,
            got: 0,
        })
    }

    fn publish(&self, topic: &str, key: Option<&[u8]>, payload: &[u8]) -> Result<MessageId> {
        self.check_fence(topic)?;
        let tracer = self.tracer();
        let mut span = tracer.span(TRACE_SYSTEM, "pulsar.publish");
        span.attr("topic", topic);
        span.attr("bytes", payload.len());
        let now = self.inner.clock.now();
        if let Err(e) = self.check_quota(topic) {
            if matches!(e, PulsarError::TenantQuotaExceeded { .. }) {
                span.attr("outcome", "quota_rejected");
            }
            return Err(e);
        }
        // Step 3: append under the target topic's shard lock only.
        let result = self.with_topic(topic, |inner, t| {
            let nparts = t.partitions.len();
            let p = match key {
                Some(k) => (hash64(ROUTE_SEED, k) % nparts as u64) as usize,
                None => {
                    t.rr = t.rr.wrapping_add(1);
                    (t.rr as usize) % nparts
                }
            };
            span.attr("partition", p);
            let entry_bytes = with_ctx_header(
                span.context(),
                encode_entry(key, now.as_nanos() as u64, payload),
            );
            let (lid, entry) = Self::append_with_rollover(
                inner,
                &tracer,
                topic,
                p,
                &mut t.partitions[p],
                &entry_bytes,
            )?;
            inner.metrics.counter("messages_published").inc();
            Ok(MessageId::new(p as u32, lid, entry))
        });
        match &result {
            Ok(_) => span.attr("outcome", "ok"),
            Err(PulsarError::QuorumUnavailable { .. }) => {
                span.attr("outcome", "quorum_unavailable");
            }
            Err(_) => {}
        }
        result
    }

    /// Publish `payloads` as one group-committed ledger entry (producer
    /// batching, §4.3): one quota check, one entry encode, one replicated
    /// append for the whole batch — the per-entry costs that dominate
    /// small-message publishing are paid once and amortized over N.
    ///
    /// Returns one [`MessageId`] per message, carrying its batch offset.
    /// Batches route like key-less messages (round-robin over partitions,
    /// the whole batch to one partition). Empty input publishes nothing;
    /// a single payload degenerates to the unbatched path, so ids from
    /// this method are always consistent with [`Producer::send`].
    fn publish_batch<T: AsRef<[u8]>>(&self, topic: &str, payloads: &[T]) -> Result<Vec<MessageId>> {
        if payloads.is_empty() {
            return Ok(Vec::new());
        }
        if payloads.len() == 1 {
            return self
                .publish(topic, None, payloads[0].as_ref())
                .map(|id| vec![id]);
        }
        self.check_fence(topic)?;
        let tracer = self.tracer();
        let mut span = tracer.span(TRACE_SYSTEM, "pulsar.publish_batch");
        span.attr("topic", topic);
        span.attr("messages", payloads.len());
        let now = self.inner.clock.now();
        if let Err(e) = self.check_quota(topic) {
            if matches!(e, PulsarError::TenantQuotaExceeded { .. }) {
                span.attr("outcome", "quota_rejected");
            }
            return Err(e);
        }
        let result = self.with_topic(topic, |inner, t| {
            let nparts = t.partitions.len();
            t.rr = t.rr.wrapping_add(1);
            let p = (t.rr as usize) % nparts;
            span.attr("partition", p);
            let entry_bytes = with_ctx_header(
                span.context(),
                encode_batch_entry(now.as_nanos() as u64, payloads),
            );
            span.attr("bytes", entry_bytes.len());
            let (lid, entry) = Self::append_with_rollover(
                inner,
                &tracer,
                topic,
                p,
                &mut t.partitions[p],
                &entry_bytes,
            )?;
            let n = payloads.len() as u32;
            inner.metrics.counter("messages_published").add(n as u64);
            inner.metrics.counter("batch_entries_appended").inc();
            inner
                .metrics
                .counter("batch_bytes_encoded")
                .add(entry_bytes.len() as u64);
            Ok((0..n)
                .map(|i| MessageId::in_batch(p as u32, lid, entry, i, n))
                .collect())
        });
        match &result {
            Ok(_) => span.attr("outcome", "ok"),
            Err(PulsarError::QuorumUnavailable { .. }) => {
                span.attr("outcome", "quorum_unavailable");
            }
            Err(_) => {}
        }
        result
    }

    /// Segment length: closed segments from metadata, the open one from the
    /// writer, offloaded ones from the cold-tier record.
    fn segment_len(inner: &ClusterInner, part: &Partition, seg_idx: usize) -> u64 {
        let lid = part.segments[seg_idx];
        if let Some(w) = &part.writer {
            if w.id() == lid {
                return w.len();
            }
        }
        match inner.bk.last_entry(lid) {
            Ok(Some(last)) => last + 1,
            _ => {
                if let Some(tier) = &*inner.tier.lock() {
                    if let Some(n) = tier.offloaded_len(&inner.meta, lid) {
                        return n;
                    }
                }
                0
            }
        }
    }

    /// Read an entry from the bookies, falling back to the cold tier for
    /// offloaded segments.
    fn read_entry_any(inner: &ClusterInner, lid: LedgerId, entry: u64) -> Result<Bytes> {
        match inner.bk.read_entry(lid, entry) {
            Ok(b) => Ok(b),
            Err(e) => {
                if let Some(tier) = &*inner.tier.lock() {
                    if let Some(b) = tier.read_entry(&inner.meta, lid, entry) {
                        inner.metrics.counter("tier_reads").inc();
                        return Ok(b);
                    }
                }
                Err(e)
            }
        }
    }

    /// Unified dispatch scan: deliver up to `max` messages under ONE
    /// topic-shard lock acquisition, starting the partition round-robin at
    /// `start_part`, invoking `on_msg` per message. Returns the count.
    ///
    /// Batched entries decode lazily: the offset table makes locating
    /// message `i` O(1), and each payload is a refcounted slice of the
    /// single ledger-entry buffer — dispatch copies no payload bytes.
    fn receive_scan(
        &self,
        topic: &str,
        subscription: &str,
        consumer_id: u64,
        start_part: &mut usize,
        max: usize,
        on_msg: &mut dyn FnMut(Message),
    ) -> Result<usize> {
        if max == 0 {
            return Ok(0);
        }
        self.check_fence(topic)?;
        let tracer = self.tracer();
        let mut span = tracer.span(TRACE_SYSTEM, "pulsar.dispatch");
        span.attr("topic", topic);
        span.attr("subscription", subscription);
        let prof = self.inner.dispatch_prof.load(Ordering::Relaxed);
        let wall_start = prof.then(Instant::now);
        let mut acc = DispatchAcc::default();
        let result = self.with_topic(topic, |inner, t| {
            let mut clk = PhaseClock::start(prof);
            if let (Some(t0), Some(t1)) = (wall_start, clk.last) {
                // Outside-the-lock to inside-the-lock: topic hash, shard
                // lock wait, and any lazy topic rebuild.
                acc.lock_ns += t1.duration_since(t0).as_nanos() as u64;
            }
            let nparts = t.partitions.len();
            let sub = t
                .subs
                .get_mut(subscription)
                .ok_or_else(|| PulsarError::TopicNotFound(format!("{topic}:{subscription}")))?;
            // Failover: only the active (first attached) consumer receives.
            if sub.mode == SubscriptionMode::Failover && sub.consumers.first() != Some(&consumer_id)
            {
                return Ok(0);
            }
            let mut delivered = 0usize;
            'parts: for scan in 0..nparts {
                let p = (*start_part + scan) % nparts;
                loop {
                    if delivered >= max {
                        break 'parts;
                    }
                    let pos = sub.read[p];
                    let part = &t.partitions[p];
                    if pos.seg >= part.segments.len() {
                        break; // nothing ever written here
                    }
                    let seg_len = Self::segment_len(inner, part, pos.seg);
                    if pos.entry >= seg_len {
                        // Move to the next segment if this one is closed and
                        // fully read.
                        let is_open = part
                            .writer
                            .as_ref()
                            .is_some_and(|w| w.id() == part.segments[pos.seg]);
                        if !is_open && pos.seg + 1 < part.segments.len() {
                            sub.read[p] = ReadPos::at(pos.seg + 1, 0);
                            continue;
                        }
                        break; // caught up on this partition
                    }
                    let lid = part.segments[pos.seg];
                    let canonical = MessageId::new(p as u32, lid, pos.entry);
                    if sub.acked.contains(&canonical) {
                        // Individually acked earlier (redelivery path).
                        sub.read[p] = ReadPos::at(pos.seg, pos.entry + 1);
                        continue;
                    }
                    // Also skip anything the mark-delete cursor already covers
                    // (individual acks get folded into mark-delete and leave
                    // the acked set).
                    // When md's segment was trimmed, nothing that survives
                    // is covered by it, so no skip applies.
                    if let Some(md) = sub.mark_delete[p] {
                        if let Some(md_seg) = part.segments.iter().position(|&l| l == md.ledger) {
                            if (pos.seg, pos.entry) <= (md_seg, md.entry) {
                                sub.read[p] = ReadPos::at(pos.seg, pos.entry + 1);
                                continue;
                            }
                        }
                    }
                    clk.tick(&mut acc.cursor_ns);
                    let raw = Self::read_entry_any(inner, lid, pos.entry)?;
                    clk.tick(&mut acc.read_ns);
                    // Peel the producer's trace context off the entry header
                    // (no-op slice for pre-context entries).
                    let (pub_ctx, raw) = split_ctx(&raw);
                    let mut msg = if let Some(n) = batch_count(&raw) {
                        // Resume inside the entry, skipping indices already
                        // acked through the partial-batch set.
                        let mut idx = pos.batch;
                        if let Some(done) = sub.partial.get(&canonical) {
                            while idx < n && done.contains(&idx) {
                                idx += 1;
                            }
                        }
                        if idx >= n {
                            sub.read[p] = ReadPos::at(pos.seg, pos.entry + 1);
                            continue;
                        }
                        let (ts, payload) = decode_batch_message(&raw, idx).ok_or(
                            PulsarError::EntryUnavailable {
                                ledger: lid,
                                entry: pos.entry,
                            },
                        )?;
                        let id = MessageId::in_batch(p as u32, lid, pos.entry, idx, n);
                        sub.read[p] = if idx + 1 < n {
                            ReadPos {
                                seg: pos.seg,
                                entry: pos.entry,
                                batch: idx + 1,
                            }
                        } else {
                            ReadPos::at(pos.seg, pos.entry + 1)
                        };
                        sub.pending.insert(id);
                        Message {
                            id,
                            key: None,
                            payload,
                            publish_time: std::time::Duration::from_nanos(ts),
                            ctx: None,
                        }
                    } else {
                        let (key, ts, payload) =
                            decode_entry(&raw).ok_or(PulsarError::EntryUnavailable {
                                ledger: lid,
                                entry: pos.entry,
                            })?;
                        sub.read[p] = ReadPos::at(pos.seg, pos.entry + 1);
                        sub.pending.insert(canonical);
                        Message {
                            id: canonical,
                            key,
                            payload,
                            publish_time: std::time::Duration::from_nanos(ts),
                            ctx: None,
                        }
                    };
                    // Join the publisher's trace: a per-message dispatch span
                    // child-of the publish span when the broker is traced,
                    // else pass the publish context through verbatim so a
                    // traced consumer can still link up.
                    let msg_span = pub_ctx.map(|pc| {
                        let mut g =
                            tracer.span_child_of(TRACE_SYSTEM, "pulsar.dispatch_msg", Some(pc));
                        g.attr("partition", p);
                        g.attr("entry", pos.entry);
                        g
                    });
                    msg.ctx = msg_span.as_ref().and_then(|g| g.context()).or(pub_ctx);
                    clk.tick(&mut acc.decode_ns);
                    *start_part = (p + 1) % nparts;
                    inner.metrics.counter("messages_delivered").inc();
                    span.attr("partition", p);
                    span.attr("ledger", lid.raw());
                    span.attr("entry", pos.entry);
                    delivered += 1;
                    on_msg(msg);
                    drop(msg_span);
                    clk.tick(&mut acc.deliver_ns);
                }
            }
            // Loop-termination probes since the last delivery are cursor
            // scan work.
            clk.tick(&mut acc.cursor_ns);
            Ok(delivered)
        });
        if let Some(t0) = wall_start {
            let m = &self.inner.metrics;
            m.counter("pulsar.dispatch.scans").inc();
            if let Ok(n) = &result {
                m.counter("pulsar.dispatch.messages").add(*n as u64);
            }
            m.counter("pulsar.dispatch.wall_ns")
                .add(t0.elapsed().as_nanos() as u64);
            m.counter("pulsar.dispatch.lock_ns").add(acc.lock_ns);
            m.counter("pulsar.dispatch.cursor_ns").add(acc.cursor_ns);
            m.counter("pulsar.dispatch.read_ns").add(acc.read_ns);
            m.counter("pulsar.dispatch.decode_ns").add(acc.decode_ns);
            m.counter("pulsar.dispatch.deliver_ns").add(acc.deliver_ns);
        }
        result
    }

    fn receive_from(
        &self,
        topic: &str,
        subscription: &str,
        consumer_id: u64,
        start_part: &mut usize,
    ) -> Result<Option<Message>> {
        let mut slot = None;
        self.receive_scan(topic, subscription, consumer_id, start_part, 1, &mut |m| {
            slot = Some(m);
        })?;
        Ok(slot)
    }

    fn receive_many_from(
        &self,
        topic: &str,
        subscription: &str,
        consumer_id: u64,
        start_part: &mut usize,
        max: usize,
    ) -> Result<Vec<Message>> {
        let mut out = Vec::new();
        self.receive_scan(
            topic,
            subscription,
            consumer_id,
            start_part,
            max,
            &mut |m| {
                out.push(m);
            },
        )?;
        Ok(out)
    }

    fn ack(&self, topic: &str, subscription: &str, id: MessageId) -> Result<()> {
        self.check_fence(topic)?;
        self.with_topic(topic, |inner, t| {
            let sub = t
                .subs
                .get_mut(subscription)
                .ok_or_else(|| PulsarError::TopicNotFound(format!("{topic}:{subscription}")))?;
            sub.pending.remove(&id);
            // Batched messages ack at message granularity, but the cursor
            // machinery below is entry-granular: record per-index acks in
            // `partial` and only fold the canonical entry id into the acked
            // set once every index of the batch has been acked.
            let id = if id.batch_size > 1 {
                let canonical = id.canonical();
                let covered = sub.acked.contains(&canonical)
                    || sub.mark_delete[id.partition as usize].is_some_and(|md| {
                        (md.ledger, md.entry) >= (canonical.ledger, canonical.entry)
                    });
                if covered {
                    return Ok(()); // duplicate ack of a completed batch
                }
                let done = sub.partial.entry(canonical).or_default();
                done.insert(id.batch_index);
                if (done.len() as u32) < id.batch_size {
                    return Ok(()); // batch still partially unacked
                }
                sub.partial.remove(&canonical);
                canonical
            } else {
                // Same idempotence guard for unbatched ids: re-acking a
                // message the mark-delete already covers (e.g. a failover
                // redelivery acked twice) must not park the id in `acked`
                // forever — the fold loop below only matches ids *above*
                // the cursor, so a stale insert would never drain.
                let covered = sub.acked.contains(&id)
                    || sub.mark_delete[id.partition as usize]
                        .is_some_and(|md| (md.ledger, md.entry) >= (id.ledger, id.entry));
                if covered {
                    return Ok(());
                }
                id
            };
            sub.acked.insert(id);
            // Advance the mark-delete position while the next message is acked.
            let p = id.partition as usize;
            let part = &t.partitions[p];
            loop {
                let next = match sub.mark_delete[p] {
                    None => {
                        // First position of the partition.
                        match part.segments.first() {
                            Some(&l) => MessageId::new(id.partition, l, 0),
                            None => break,
                        }
                    }
                    Some(md) => {
                        // Position after md: next entry, or first entry of the
                        // next segment.
                        match part.segments.iter().position(|&l| l == md.ledger) {
                            Some(seg_idx) => {
                                let seg_len = Self::segment_len(inner, part, seg_idx);
                                if md.entry + 1 < seg_len {
                                    MessageId::new(id.partition, md.ledger, md.entry + 1)
                                } else if seg_idx + 1 < part.segments.len() {
                                    MessageId::new(id.partition, part.segments[seg_idx + 1], 0)
                                } else {
                                    break;
                                }
                            }
                            // md's segment was trimmed away: the next
                            // ackable position is the first entry of the
                            // oldest surviving segment. (The old
                            // `unwrap_or(0)` built the next id from the
                            // trimmed ledger, which never matches a real
                            // ack — the cursor would stall forever.)
                            None => match part.segments.first() {
                                Some(&l) => MessageId::new(id.partition, l, 0),
                                None => break,
                            },
                        }
                    }
                };
                if sub.acked.remove(&next) {
                    sub.mark_delete[p] = Some(next);
                } else {
                    break;
                }
            }
            if let Some(md) = sub.mark_delete[p] {
                inner.meta.put(
                    &format!("/topics/{topic}/{p}/cursor/{subscription}"),
                    encode_cursor(&md),
                );
            }
            Ok(())
        })
    }

    fn redeliver(&self, topic: &str, subscription: &str) -> Result<usize> {
        self.with_topic(topic, |_inner, t| {
            let sub = t
                .subs
                .get_mut(subscription)
                .ok_or_else(|| PulsarError::TopicNotFound(format!("{topic}:{subscription}")))?;
            let n = sub.pending.len();
            // Rewind each partition's read position to just after mark-delete;
            // already-acked messages are skipped during delivery.
            for p in 0..t.partitions.len() {
                let pos = match sub.mark_delete[p] {
                    None => ReadPos::START,
                    Some(md) => match t.partitions[p]
                        .segments
                        .iter()
                        .position(|&l| l == md.ledger)
                    {
                        Some(seg) => ReadPos::at(seg, md.entry + 1),
                        // md's segment was trimmed: rewind to the start of
                        // what survives rather than skipping into the
                        // first segment's unconsumed prefix.
                        None => ReadPos::START,
                    },
                };
                sub.read[p] = pos;
            }
            sub.pending.clear();
            Ok(n)
        })
    }

    fn detach(&self, topic: &str, subscription: &str, consumer_id: u64) {
        // No lazy rebuild: detaching from an unloaded topic is a no-op.
        self.inner.topics.with(topic, |shard| {
            if let Some(t) = shard.get_mut(topic) {
                if let Some(sub) = t.subs.get_mut(subscription) {
                    sub.consumers.retain(|&c| c != consumer_id);
                }
            }
        });
    }

    /// Delete ledger segments that every subscription has fully consumed
    /// ("durable storage for messages until they are consumed"). Returns
    /// the number of segments reclaimed.
    pub fn trim_consumed(&self, topic: &str) -> Result<usize> {
        self.with_topic(topic, |inner, t| {
            let mut reclaimed = 0;
            for p in 0..t.partitions.len() {
                loop {
                    let part = &t.partitions[p];
                    let Some(&first) = part.segments.first() else {
                        break;
                    };
                    // The open segment is never trimmed.
                    if part.writer.as_ref().is_some_and(|w| w.id() == first) {
                        break;
                    }
                    let seg_len = Self::segment_len(inner, part, 0);
                    // Every subscription must have mark-deleted past this
                    // segment's final entry.
                    let all_consumed = !t.subs.is_empty()
                        && t.subs.values().all(|sub| match sub.mark_delete[p] {
                            Some(md) => md.ledger != first || md.entry + 1 >= seg_len,
                            None => seg_len == 0,
                        })
                        && t.subs.values().all(|sub| {
                            sub.mark_delete[p]
                                .map(|md| md.ledger != first)
                                .unwrap_or(seg_len == 0)
                                || seg_len == 0
                        });
                    if !all_consumed {
                        break;
                    }
                    // Delete from whichever tier holds the segment.
                    if inner.bk.delete_ledger(first).is_err() {
                        if let Some(tier) = &*inner.tier.lock() {
                            tier.delete_segment(&inner.meta, first);
                        }
                    }
                    t.partitions[p].segments.remove(0);
                    // Re-base read positions that referenced segment indices.
                    for sub in t.subs.values_mut() {
                        if sub.read[p].seg > 0 {
                            sub.read[p].seg -= 1;
                        } else {
                            sub.read[p] = ReadPos::START;
                        }
                    }
                    let segs = t.partitions[p].segments.clone();
                    Self::persist_segments(inner, topic, p, &segs);
                    reclaimed += 1;
                }
            }
            Ok(reclaimed)
        })
    }

    /// Total messages currently retained on the bookies for a topic.
    pub fn retained_entries(&self, topic: &str) -> Result<u64> {
        self.with_topic(topic, |inner, t| {
            let mut total = 0;
            for part in &t.partitions {
                for seg_idx in 0..part.segments.len() {
                    total += Self::segment_len(inner, part, seg_idx);
                }
            }
            Ok(total)
        })
    }
}

fn encode_segments(segs: &[LedgerId]) -> Vec<u8> {
    segs.iter()
        .map(|l| l.raw().to_string())
        .collect::<Vec<_>>()
        .join(",")
        .into_bytes()
}

fn decode_segments(bytes: &[u8]) -> Vec<LedgerId> {
    std::str::from_utf8(bytes)
        .unwrap_or("")
        .split(',')
        .filter(|s| !s.is_empty())
        .filter_map(|s| s.parse().ok().map(LedgerId))
        .collect()
}

fn encode_cursor(id: &MessageId) -> Vec<u8> {
    format!("{};{};{}", id.partition, id.ledger.raw(), id.entry).into_bytes()
}

fn decode_cursor(bytes: &[u8]) -> Option<MessageId> {
    let s = std::str::from_utf8(bytes).ok()?;
    let mut it = s.split(';');
    Some(MessageId::new(
        it.next()?.parse().ok()?,
        LedgerId(it.next()?.parse().ok()?),
        it.next()?.parse().ok()?,
    ))
}

/// A producer attached to a topic.
#[derive(Clone)]
pub struct Producer {
    cluster: PulsarCluster,
    topic: String,
}

impl Producer {
    /// Topic name.
    pub fn topic(&self) -> &str {
        &self.topic
    }

    /// Publish a key-less message (round-robin partition routing).
    pub fn send(&self, payload: &[u8]) -> Result<MessageId> {
        self.cluster.publish(&self.topic, None, payload)
    }

    /// Publish with a partition key (all messages with one key land on one
    /// partition, preserving per-key order).
    pub fn send_keyed(&self, key: &[u8], payload: &[u8]) -> Result<MessageId> {
        self.cluster.publish(&self.topic, Some(key), payload)
    }

    /// Publish several messages as one group-committed ledger entry: one
    /// quota check, one encode, one replicated append. The whole batch
    /// lands on one partition (round-robin, like key-less `send`); ids come
    /// back in payload order. See [`BatchBuilder`] for incremental packing.
    pub fn send_batch<T: AsRef<[u8]>>(&self, payloads: &[T]) -> Result<Vec<MessageId>> {
        self.cluster.publish_batch(&self.topic, payloads)
    }

    /// Start building a batch to flush through this producer.
    pub fn batch(&self) -> BatchBuilder<'_> {
        BatchBuilder {
            producer: self,
            payloads: Vec::new(),
        }
    }
}

/// Incrementally packs messages for one group-committed publish.
///
/// Accumulates refcounted payloads and submits them in a single
/// [`Producer::send_batch`] call on [`flush`](BatchBuilder::flush).
/// Dropping an unflushed builder publishes nothing.
pub struct BatchBuilder<'a> {
    producer: &'a Producer,
    payloads: Vec<Bytes>,
}

impl BatchBuilder<'_> {
    /// Append one message to the pending batch.
    pub fn add(&mut self, payload: impl Into<Bytes>) -> &mut Self {
        self.payloads.push(payload.into());
        self
    }

    /// Number of messages currently pending.
    pub fn len(&self) -> usize {
        self.payloads.len()
    }

    /// True when no messages are pending.
    pub fn is_empty(&self) -> bool {
        self.payloads.is_empty()
    }

    /// Publish everything added so far as one batch and reset the builder.
    pub fn flush(&mut self) -> Result<Vec<MessageId>> {
        let payloads = std::mem::take(&mut self.payloads);
        self.producer.send_batch(&payloads)
    }
}

/// A consumer attached to a subscription.
pub struct Consumer {
    cluster: PulsarCluster,
    topic: String,
    subscription: String,
    id: u64,
    rr_part: usize,
}

impl Consumer {
    /// Topic name.
    pub fn topic(&self) -> &str {
        &self.topic
    }

    /// Subscription name.
    pub fn subscription(&self) -> &str {
        &self.subscription
    }

    /// Pull the next available message (non-blocking; `None` when caught
    /// up, or when this consumer is a passive failover replica).
    pub fn receive(&mut self) -> Result<Option<Message>> {
        self.cluster
            .receive_from(&self.topic, &self.subscription, self.id, &mut self.rr_part)
    }

    /// Pull up to `max` available messages under a single broker lock
    /// acquisition (batched dispatch). Returns fewer (possibly zero) when
    /// caught up; messages still need individual [`ack`](Consumer::ack)s.
    pub fn receive_batch(&mut self, max: usize) -> Result<Vec<Message>> {
        self.cluster.receive_many_from(
            &self.topic,
            &self.subscription,
            self.id,
            &mut self.rr_part,
            max,
        )
    }

    /// Acknowledge a message; advances the subscription's mark-delete
    /// cursor when contiguous.
    pub fn ack(&self, id: MessageId) -> Result<()> {
        self.cluster.ack(&self.topic, &self.subscription, id)
    }

    /// Request redelivery of everything delivered but not acked (what a
    /// crashed consumer's replacement calls). Returns how many messages
    /// were outstanding.
    pub fn redeliver_unacked(&self) -> Result<usize> {
        self.cluster.redeliver(&self.topic, &self.subscription)
    }

    /// Drain all currently-available messages, acking each.
    pub fn drain(&mut self) -> Result<Vec<Message>> {
        let mut out = Vec::new();
        while let Some(m) = self.receive()? {
            self.ack(m.id)?;
            out.push(m);
        }
        Ok(out)
    }
}

impl Drop for Consumer {
    fn drop(&mut self) {
        self.cluster
            .detach(&self.topic, &self.subscription, self.id);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small_cluster() -> PulsarCluster {
        let cfg = PulsarConfig {
            bookies: 3,
            ledger: LedgerConfig {
                ensemble: 3,
                write_quorum: 2,
                ack_quorum: 2,
            },
            max_entries_per_ledger: 8,
        };
        PulsarCluster::new(cfg, WallClock::shared())
    }

    #[test]
    fn entry_codec_roundtrip() {
        for (key, payload) in [
            (None, &b"hello"[..]),
            (Some(&b"k"[..]), &b""[..]),
            (Some(&b"key-long"[..]), &b"payload"[..]),
        ] {
            let enc = encode_entry(key, 42, payload);
            let (k, ts, p) = decode_entry(&enc).unwrap();
            assert_eq!(k.as_deref(), key);
            assert_eq!(ts, 42);
            assert_eq!(&p[..], payload);
        }
    }

    #[test]
    fn batch_codec_roundtrip() {
        let payloads: Vec<&[u8]> = vec![b"alpha", b"", b"gamma-longer-payload", b"d"];
        let enc = encode_batch_entry(99, &payloads);
        assert!(is_batch_entry(&enc));
        assert_eq!(batch_count(&enc), Some(payloads.len() as u32));
        for (i, p) in payloads.iter().enumerate() {
            let (ts, got) = decode_batch_message(&enc, i as u32).unwrap();
            assert_eq!(ts, 99);
            assert_eq!(&got[..], *p);
        }
        assert!(decode_batch_message(&enc, payloads.len() as u32).is_none());
        // Decoded payloads are zero-copy slices of the one entry buffer.
        let (_, first) = decode_batch_message(&enc, 0).unwrap();
        let base = enc.as_ref().as_ptr() as usize;
        let fp = first.as_ref().as_ptr() as usize;
        assert!(
            fp >= base && fp < base + enc.len(),
            "payload not a slice of the entry"
        );
        // An unbatched entry is never misread as a batch: its first field is
        // a key length, which a real key can't push to u32::MAX.
        let plain = encode_entry(Some(b"key"), 7, b"payload");
        assert!(!is_batch_entry(&plain));
        assert_eq!(batch_count(&plain), None);
    }

    #[test]
    fn ctx_header_codec_roundtrip() {
        use taureau_core::trace::{SpanId, TraceId};
        let ctx = SpanContext {
            trace_id: TraceId(0xfeed),
            span_id: SpanId(0xbeef),
        };
        // Untraced publishes stay bit-identical to the classic format.
        let plain = encode_entry(Some(b"k"), 42, b"payload");
        assert_eq!(with_ctx_header(None, plain.clone()), plain);
        let (got, inner) = split_ctx(&plain);
        assert_eq!(got, None);
        assert_eq!(inner, plain);
        // Traced entry: header peels off, classic entry decodes unchanged.
        let wrapped = with_ctx_header(Some(ctx), plain.clone());
        assert_eq!(wrapped.len(), plain.len() + 4 + SpanContext::WIRE_LEN);
        let (got, inner) = split_ctx(&wrapped);
        assert_eq!(got, Some(ctx));
        let (k, ts, p) = decode_entry(&inner).unwrap();
        assert_eq!(
            (k.as_deref(), ts, &p[..]),
            (Some(&b"k"[..]), 42, &b"payload"[..])
        );
        // A batched entry keeps its own marker inside the ctx header, and
        // the peeled slice is still zero-copy into the wrapped buffer.
        let batch = encode_batch_entry(7, &[b"a".as_slice(), b"bb"]);
        let (got, inner) = split_ctx(&with_ctx_header(Some(ctx), batch.clone()));
        assert_eq!(got, Some(ctx));
        assert_eq!(batch_count(&inner), Some(2));
        assert_eq!(inner, batch);
    }

    #[test]
    fn dispatch_links_messages_into_publish_trace() {
        let c = small_cluster();
        let tracer = Tracer::new(WallClock::shared());
        c.set_tracer(tracer.clone());
        c.create_topic("t", 1).unwrap();
        let p = c.producer("t").unwrap();
        p.send(b"solo").unwrap();
        p.send_batch(&[b"b0".as_slice(), b"b1"]).unwrap();
        let mut consumer = c.subscribe("t", "s", SubscriptionMode::Exclusive).unwrap();
        let got = consumer.drain().unwrap();
        assert_eq!(got.len(), 3);
        let spans = tracer.spans();
        let publishes: Vec<_> = spans
            .iter()
            .filter(|s| s.name == "pulsar.publish" || s.name == "pulsar.publish_batch")
            .collect();
        assert_eq!(publishes.len(), 2);
        // Every delivered message carries the per-message dispatch span,
        // which lives in the *publisher's* trace as a child of its publish
        // span — not in the dispatch scan's own trace.
        for m in &got {
            let ctx = m.ctx.expect("traced broker must stamp msg ctx");
            let rec = spans
                .iter()
                .find(|s| s.span_id == ctx.span_id)
                .expect("msg ctx names a recorded span");
            assert_eq!(rec.name, "pulsar.dispatch_msg");
            let publisher = publishes
                .iter()
                .find(|s| s.trace_id == ctx.trace_id)
                .expect("dispatch_msg joins a publish trace");
            assert_eq!(rec.parent, Some(publisher.span_id));
        }
        let batch_traces: std::collections::HashSet<_> =
            got[1..].iter().map(|m| m.ctx.unwrap().trace_id).collect();
        assert_eq!(batch_traces.len(), 1, "one batch, one publish trace");
        assert_ne!(got[0].ctx.unwrap().trace_id, got[1].ctx.unwrap().trace_id);
    }

    #[test]
    fn untraced_broker_passes_publish_ctx_verbatim() {
        let c = small_cluster();
        let tracer = Tracer::new(WallClock::shared());
        c.set_tracer(tracer.clone());
        c.create_topic("t", 1).unwrap();
        c.producer("t").unwrap().send(b"x").unwrap();
        // Broker loses its tracer before dispatch: the publish context
        // recovered from the entry header flows through unchanged.
        c.set_tracer(Tracer::disabled());
        let mut consumer = c.subscribe("t", "s", SubscriptionMode::Exclusive).unwrap();
        let m = consumer.receive().unwrap().unwrap();
        let publish = tracer
            .spans()
            .into_iter()
            .find(|s| s.name == "pulsar.publish")
            .unwrap();
        assert_eq!(
            m.ctx,
            Some(SpanContext {
                trace_id: publish.trace_id,
                span_id: publish.span_id,
            })
        );
        // And a fully untraced publish yields no context at all.
        let c2 = small_cluster();
        c2.create_topic("t", 1).unwrap();
        c2.producer("t").unwrap().send(b"y").unwrap();
        let mut consumer2 = c2.subscribe("t", "s", SubscriptionMode::Exclusive).unwrap();
        assert_eq!(consumer2.receive().unwrap().unwrap().ctx, None);
    }

    #[test]
    fn dispatch_profile_attributes_scan_time() {
        let c = small_cluster();
        c.create_topic("t", 2).unwrap();
        let p = c.producer("t").unwrap();
        for i in 0..10u64 {
            p.send(&i.to_le_bytes()).unwrap();
        }
        // Off by default: dispatch leaves the counters untouched.
        let mut consumer = c.subscribe("t", "s", SubscriptionMode::Exclusive).unwrap();
        let _ = consumer.receive_batch(4).unwrap();
        assert_eq!(c.dispatch_profile(), DispatchProfile::default());
        // On: every scan splits its wall time into the named phases.
        c.set_dispatch_profiling(true);
        let mut rest = 0;
        loop {
            let chunk = consumer.receive_batch(100).unwrap();
            if chunk.is_empty() {
                break;
            }
            rest += chunk.len();
        }
        assert_eq!(rest, 6);
        let prof = c.dispatch_profile();
        assert!(
            prof.scans >= 2,
            "drain plus final empty scan: {}",
            prof.scans
        );
        assert_eq!(prof.messages, 6);
        assert!(prof.wall_ns > 0);
        assert!(prof.explained_ns() > 0);
        // Checkpoints partition the scan window, so the named phases can
        // never sum past the wall clock that contains them.
        assert!(prof.explained_ns() <= prof.wall_ns);
        assert_eq!(prof.phases().len(), 5);
        let (top, ns) = prof.top_phase();
        assert!(ns > 0, "top phase {top} must have time attributed");
        // Off again: counters freeze.
        c.set_dispatch_profiling(false);
        let _ = consumer.receive_batch(100).unwrap();
        assert_eq!(c.dispatch_profile(), prof);
    }

    #[test]
    fn contention_profiling_times_topic_shard_lock() {
        let c = small_cluster();
        let prof = ContentionProfiler::new();
        let site = c.enable_contention_profiling(&prof);
        assert_eq!(site.name(), "pulsar.topics");
        // Idempotent: a second call returns the same site, not a new one.
        assert!(Arc::ptr_eq(&site, &c.enable_contention_profiling(&prof)));
        c.create_topic("t", 1).unwrap();
        let p = c.producer("t").unwrap();
        for _ in 0..5 {
            p.send(b"x").unwrap();
        }
        let snap = site.snapshot();
        // taureau-core's default `lock-prof` feature is on in this build,
        // so every shard acquisition is counted.
        assert!(
            snap.acquisitions >= 5,
            "publishes acquire the topic shard: {}",
            snap.acquisitions
        );
    }

    #[test]
    fn send_batch_roundtrip_and_ids() {
        let c = small_cluster();
        c.create_topic("t", 1).unwrap();
        let p = c.producer("t").unwrap();
        let ids = p.send_batch(&[b"a".as_slice(), b"bb", b"ccc"]).unwrap();
        assert_eq!(ids.len(), 3);
        // One ledger entry for the whole batch, indexed ids in order.
        for (i, id) in ids.iter().enumerate() {
            assert_eq!(id.batch_index, i as u32);
            assert_eq!(id.batch_size, 3);
            assert_eq!(id.canonical(), ids[0].canonical());
        }
        assert_eq!(c.retained_entries("t").unwrap(), 1);
        let mut consumer = c.subscribe("t", "s", SubscriptionMode::Exclusive).unwrap();
        let got = consumer.drain().unwrap();
        assert_eq!(got.len(), 3);
        for (m, (id, want)) in got.iter().zip(ids.iter().zip([&b"a"[..], b"bb", b"ccc"])) {
            assert_eq!(&m.id, id);
            assert_eq!(&m.payload[..], want);
        }
        assert!(consumer.receive().unwrap().is_none());
    }

    #[test]
    fn receive_batch_matches_unbatched_delivery() {
        let c = small_cluster();
        c.create_topic("mixed", 1).unwrap();
        let p = c.producer("mixed").unwrap();
        // Interleave unbatched sends and batches, spanning a segment
        // rollover (8 entries/segment in small_cluster).
        let mut want: Vec<Vec<u8>> = Vec::new();
        for i in 0..6u64 {
            p.send(&i.to_le_bytes()).unwrap();
            want.push(i.to_le_bytes().to_vec());
        }
        let batch: Vec<Vec<u8>> = (100..140u64).map(|i| i.to_le_bytes().to_vec()).collect();
        p.send_batch(&batch).unwrap();
        want.extend(batch.iter().cloned());
        p.send(b"tail").unwrap();
        want.push(b"tail".to_vec());
        let mut consumer = c
            .subscribe("mixed", "s", SubscriptionMode::Exclusive)
            .unwrap();
        let mut got = Vec::new();
        loop {
            let chunk = consumer.receive_batch(7).unwrap();
            if chunk.is_empty() {
                break;
            }
            for m in chunk {
                consumer.ack(m.id).unwrap();
                got.push(m.payload.to_vec());
            }
        }
        assert_eq!(got, want);
    }

    #[test]
    fn batch_builder_flushes_one_entry() {
        let c = small_cluster();
        c.create_topic("t", 1).unwrap();
        let p = c.producer("t").unwrap();
        let mut b = p.batch();
        assert!(b.is_empty());
        b.add(&b"x"[..]).add(&b"y"[..]);
        assert_eq!(b.len(), 2);
        let ids = b.flush().unwrap();
        assert_eq!(ids.len(), 2);
        assert!(b.is_empty());
        assert_eq!(c.retained_entries("t").unwrap(), 1);
        // Empty flush publishes nothing.
        assert!(b.flush().unwrap().is_empty());
        assert_eq!(c.retained_entries("t").unwrap(), 1);
    }

    #[test]
    fn partial_batch_ack_redelivers_only_unacked() {
        let c = small_cluster();
        c.create_topic("t", 1).unwrap();
        let p = c.producer("t").unwrap();
        p.send_batch(&[b"m0".as_slice(), b"m1", b"m2", b"m3"])
            .unwrap();
        let mut consumer = c.subscribe("t", "s", SubscriptionMode::Exclusive).unwrap();
        let got = consumer.receive_batch(4).unwrap();
        assert_eq!(got.len(), 4);
        // Ack only indices 0 and 2.
        consumer.ack(got[0].id).unwrap();
        consumer.ack(got[2].id).unwrap();
        assert_eq!(consumer.redeliver_unacked().unwrap(), 2);
        let again = consumer.receive_batch(10).unwrap();
        let payloads: Vec<_> = again.iter().map(|m| m.payload.to_vec()).collect();
        assert_eq!(payloads, vec![b"m1".to_vec(), b"m3".to_vec()]);
        // Finishing the batch advances the cursor past the entry.
        for m in &again {
            consumer.ack(m.id).unwrap();
        }
        assert!(consumer.receive().unwrap().is_none());
        assert_eq!(consumer.redeliver_unacked().unwrap(), 0);
        assert!(consumer.receive().unwrap().is_none());
    }

    #[test]
    fn fully_acked_batch_survives_restart_partially_acked_redelivers() {
        let c = small_cluster();
        c.create_topic("t", 1).unwrap();
        let p = c.producer("t").unwrap();
        p.send_batch(&[b"a0".as_slice(), b"a1"]).unwrap();
        p.send_batch(&[b"b0".as_slice(), b"b1"]).unwrap();
        let mut consumer = c.subscribe("t", "s", SubscriptionMode::Exclusive).unwrap();
        let got = consumer.receive_batch(4).unwrap();
        assert_eq!(got.len(), 4);
        // Fully ack the first batch; half-ack the second.
        consumer.ack(got[0].id).unwrap();
        consumer.ack(got[1].id).unwrap();
        consumer.ack(got[2].id).unwrap();
        c.restart_broker();
        let mut consumer = c.subscribe("t", "s", SubscriptionMode::Exclusive).unwrap();
        let rest = consumer.drain().unwrap();
        // Partial-ack state is in-memory only: the half-acked entry comes
        // back whole (at-least-once); the fully-acked one does not.
        let payloads: Vec<_> = rest.iter().map(|m| m.payload.to_vec()).collect();
        assert_eq!(payloads, vec![b"b0".to_vec(), b"b1".to_vec()]);
    }

    #[test]
    fn duplicate_ack_of_batch_message_is_idempotent() {
        let c = small_cluster();
        c.create_topic("t", 1).unwrap();
        let p = c.producer("t").unwrap();
        p.send_batch(&[b"x".as_slice(), b"y"]).unwrap();
        let mut consumer = c.subscribe("t", "s", SubscriptionMode::Exclusive).unwrap();
        let got = consumer.receive_batch(2).unwrap();
        consumer.ack(got[0].id).unwrap();
        consumer.ack(got[0].id).unwrap(); // duplicate before completion
        consumer.ack(got[1].id).unwrap();
        consumer.ack(got[1].id).unwrap(); // duplicate after completion
        assert!(consumer.receive().unwrap().is_none());
        assert_eq!(consumer.redeliver_unacked().unwrap(), 0);
        assert!(consumer.receive().unwrap().is_none());
    }

    #[test]
    fn publish_consume_ack() {
        let c = small_cluster();
        c.create_topic("events", 1).unwrap();
        let producer = c.producer("events").unwrap();
        let mut consumer = c
            .subscribe("events", "sub", SubscriptionMode::Exclusive)
            .unwrap();
        for i in 0..20u64 {
            producer.send(&i.to_le_bytes()).unwrap();
        }
        let got = consumer.drain().unwrap();
        assert_eq!(got.len(), 20);
        let payloads: Vec<u64> = got
            .iter()
            .map(|m| u64::from_le_bytes(m.payload[..].try_into().unwrap()))
            .collect();
        assert_eq!(payloads, (0..20).collect::<Vec<_>>());
        // Caught up.
        assert!(consumer.receive().unwrap().is_none());
    }

    #[test]
    fn segment_rollover_is_transparent() {
        let c = small_cluster(); // 8 entries per segment
        c.create_topic("t", 1).unwrap();
        let p = c.producer("t").unwrap();
        for i in 0..50u64 {
            p.send(&i.to_le_bytes()).unwrap();
        }
        let mut consumer = c.subscribe("t", "s", SubscriptionMode::Exclusive).unwrap();
        assert_eq!(consumer.drain().unwrap().len(), 50);
        // At least ceil(50/8)=7 segments were created.
        assert!(c.retained_entries("t").unwrap() == 50);
    }

    #[test]
    fn keyed_messages_preserve_per_key_order_across_partitions() {
        let c = small_cluster();
        c.create_topic("orders", 4).unwrap();
        let p = c.producer("orders").unwrap();
        for i in 0..40u64 {
            let key = format!("user-{}", i % 5);
            p.send_keyed(key.as_bytes(), &i.to_le_bytes()).unwrap();
        }
        let mut consumer = c
            .subscribe("orders", "s", SubscriptionMode::Shared)
            .unwrap();
        let msgs = consumer.drain().unwrap();
        assert_eq!(msgs.len(), 40);
        // Per-key sequences must be increasing.
        let mut last: HashMap<Vec<u8>, u64> = HashMap::new();
        for m in msgs {
            let v = u64::from_le_bytes(m.payload[..].try_into().unwrap());
            let k = m.key.unwrap().to_vec();
            if let Some(&prev) = last.get(&k) {
                assert!(v > prev, "key order violated: {prev} then {v}");
            }
            last.insert(k, v);
        }
        assert_eq!(last.len(), 5);
    }

    #[test]
    fn exclusive_subscription_rejects_second_consumer() {
        let c = small_cluster();
        c.create_topic("t", 1).unwrap();
        let _c1 = c.subscribe("t", "s", SubscriptionMode::Exclusive).unwrap();
        assert!(matches!(
            c.subscribe("t", "s", SubscriptionMode::Exclusive),
            Err(PulsarError::ExclusiveSubscriptionBusy(_))
        ));
    }

    #[test]
    fn shared_subscription_splits_work() {
        let c = small_cluster();
        c.create_topic("work", 1).unwrap();
        let p = c.producer("work").unwrap();
        for i in 0..30u64 {
            p.send(&i.to_le_bytes()).unwrap();
        }
        let mut c1 = c
            .subscribe("work", "workers", SubscriptionMode::Shared)
            .unwrap();
        let mut c2 = c
            .subscribe("work", "workers", SubscriptionMode::Shared)
            .unwrap();
        let mut n1 = 0;
        let mut n2 = 0;
        loop {
            let mut progressed = false;
            if let Some(m) = c1.receive().unwrap() {
                c1.ack(m.id).unwrap();
                n1 += 1;
                progressed = true;
            }
            if let Some(m) = c2.receive().unwrap() {
                c2.ack(m.id).unwrap();
                n2 += 1;
                progressed = true;
            }
            if !progressed {
                break;
            }
        }
        // Each message delivered exactly once across the pair.
        assert_eq!(n1 + n2, 30, "n1={n1} n2={n2}");
        assert!(n1 > 0 && n2 > 0, "both consumers should get work");
    }

    #[test]
    fn failover_only_active_consumer_receives() {
        let c = small_cluster();
        c.create_topic("t", 1).unwrap();
        let p = c.producer("t").unwrap();
        p.send(b"m").unwrap();
        let mut active = c.subscribe("t", "s", SubscriptionMode::Failover).unwrap();
        let mut standby = c.subscribe("t", "s", SubscriptionMode::Failover).unwrap();
        assert!(standby.receive().unwrap().is_none());
        let m = active.receive().unwrap().unwrap();
        active.ack(m.id).unwrap();
        // Active detaches; standby takes over.
        p.send(b"m2").unwrap();
        drop(active);
        let m2 = standby.receive().unwrap().unwrap();
        assert_eq!(&m2.payload[..], b"m2");
    }

    #[test]
    fn two_subscriptions_each_get_all_messages() {
        let c = small_cluster();
        c.create_topic("fanout", 1).unwrap();
        let p = c.producer("fanout").unwrap();
        for i in 0..10u64 {
            p.send(&i.to_le_bytes()).unwrap();
        }
        let mut s1 = c
            .subscribe("fanout", "analytics", SubscriptionMode::Exclusive)
            .unwrap();
        let mut s2 = c
            .subscribe("fanout", "archive", SubscriptionMode::Exclusive)
            .unwrap();
        assert_eq!(s1.drain().unwrap().len(), 10);
        assert_eq!(s2.drain().unwrap().len(), 10);
    }

    #[test]
    fn unacked_messages_are_redelivered() {
        let c = small_cluster();
        c.create_topic("t", 1).unwrap();
        let p = c.producer("t").unwrap();
        for i in 0..5u64 {
            p.send(&i.to_le_bytes()).unwrap();
        }
        let mut consumer = c.subscribe("t", "s", SubscriptionMode::Exclusive).unwrap();
        // Receive all, ack only the first two.
        let mut msgs = Vec::new();
        while let Some(m) = consumer.receive().unwrap() {
            msgs.push(m);
        }
        consumer.ack(msgs[0].id).unwrap();
        consumer.ack(msgs[1].id).unwrap();
        let outstanding = consumer.redeliver_unacked().unwrap();
        assert_eq!(outstanding, 3);
        let redelivered = consumer.drain().unwrap();
        assert_eq!(redelivered.len(), 3);
        assert_eq!(
            u64::from_le_bytes(redelivered[0].payload[..].try_into().unwrap()),
            2
        );
    }

    #[test]
    fn broker_restart_loses_nothing() {
        let c = small_cluster();
        c.create_topic("t", 2).unwrap();
        let p = c.producer("t").unwrap();
        let mut consumer = c.subscribe("t", "s", SubscriptionMode::Shared).unwrap();
        for i in 0..20u64 {
            p.send(&i.to_le_bytes()).unwrap();
        }
        // Consume and ack half.
        for _ in 0..10 {
            let m = consumer.receive().unwrap().unwrap();
            consumer.ack(m.id).unwrap();
        }
        // Broker dies; all in-memory state gone.
        c.restart_broker();
        // A fresh consumer on the same subscription resumes from the
        // mark-delete position: the 10 unconsumed messages arrive.
        let mut c2 = c.subscribe("t", "s", SubscriptionMode::Shared).unwrap();
        let rest = c2.drain().unwrap();
        assert_eq!(rest.len(), 10, "messages lost or duplicated across restart");
        // And publishing still works (new ledgers after fencing).
        p.send(b"after").unwrap();
        assert_eq!(c2.drain().unwrap().len(), 1);
    }

    #[test]
    fn bookie_crash_mid_stream_rolls_over() {
        let cfg = PulsarConfig {
            bookies: 4,
            ledger: LedgerConfig {
                ensemble: 3,
                write_quorum: 3,
                ack_quorum: 2,
            },
            max_entries_per_ledger: 1000,
        };
        let c = PulsarCluster::new(cfg, WallClock::shared());
        c.create_topic("t", 1).unwrap();
        let p = c.producer("t").unwrap();
        for i in 0..10u64 {
            p.send(&i.to_le_bytes()).unwrap();
        }
        // Two bookies die; the current ensemble can't meet ack quorum, so
        // the broker must seal and roll to the remaining bookies… but only
        // 2 are alive and ensemble needs 3 → publishing fails.
        c.bookies()[0].crash();
        c.bookies()[1].crash();
        let res = p.send(b"x");
        assert!(res.is_err());
        // One comes back: rollover succeeds and the stream continues.
        c.bookies()[0].restart();
        p.send(b"recovered").unwrap();
        let mut consumer = c.subscribe("t", "s", SubscriptionMode::Exclusive).unwrap();
        let msgs = consumer.drain().unwrap();
        assert_eq!(msgs.len(), 11);
    }

    #[test]
    fn trim_consumed_reclaims_segments() {
        let c = small_cluster(); // 8 entries/segment
        c.create_topic("t", 1).unwrap();
        let p = c.producer("t").unwrap();
        let mut consumer = c.subscribe("t", "s", SubscriptionMode::Exclusive).unwrap();
        for i in 0..30u64 {
            p.send(&i.to_le_bytes()).unwrap();
        }
        assert_eq!(consumer.drain().unwrap().len(), 30);
        let reclaimed = c.trim_consumed("t").unwrap();
        assert!(reclaimed >= 3, "reclaimed {reclaimed} segments");
        // Remaining retained entries are only the open segment's.
        assert!(c.retained_entries("t").unwrap() <= 8);
    }

    #[test]
    fn tiered_storage_reads_through_after_offload() {
        use taureau_core::latency::LatencyModel;
        let c = small_cluster(); // 8 entries per segment
        let blob = std::sync::Arc::new(taureau_baas::BlobStore::with_latency(
            WallClock::shared(),
            LatencyModel::zero(),
            LatencyModel::zero(),
        ));
        c.enable_tiering(blob.clone(), "cold");
        c.create_topic("t", 1).unwrap();
        let p = c.producer("t").unwrap();
        for i in 0..30u64 {
            p.send(&i.to_le_bytes()).unwrap();
        }
        // Offload the sealed segments; the open one stays hot.
        let offloaded = c.offload_sealed("t").unwrap();
        assert!(offloaded >= 3, "offloaded {offloaded}");
        let (_, writes) = blob.op_counts();
        assert_eq!(writes as usize, offloaded);
        // Bookies no longer hold the offloaded bytes…
        let hot: u64 = c.bookies().iter().map(|b| b.stored_bytes()).sum();
        assert!(hot < 30 * 20, "bookies still hold {hot} bytes");
        // …but a fresh consumer still reads the full stream, in order.
        let mut consumer = c.subscribe("t", "s", SubscriptionMode::Exclusive).unwrap();
        let msgs = consumer.drain().unwrap();
        assert_eq!(msgs.len(), 30);
        let payloads: Vec<u64> = msgs
            .iter()
            .map(|m| u64::from_le_bytes(m.payload[..].try_into().unwrap()))
            .collect();
        assert_eq!(payloads, (0..30).collect::<Vec<_>>());
        assert!(c.metrics().counter("tier_reads").get() > 0);
        // Trim after consumption reclaims cold segments too.
        let reclaimed = c.trim_consumed("t").unwrap();
        assert!(reclaimed >= 3);
    }

    #[test]
    fn offload_without_tier_is_noop() {
        let c = small_cluster();
        c.create_topic("t", 1).unwrap();
        let p = c.producer("t").unwrap();
        for i in 0..20u64 {
            p.send(&i.to_le_bytes()).unwrap();
        }
        assert_eq!(c.offload_sealed("t").unwrap(), 0);
    }

    #[test]
    fn tenant_backlog_quota_enforced_and_released_by_trim() {
        let c = small_cluster();
        c.create_topic("acme/orders", 1).unwrap();
        c.create_topic("acme/logs", 1).unwrap();
        c.create_topic("other/t", 1).unwrap();
        c.set_tenant_quota("acme", 10);
        let orders = c.producer("acme/orders").unwrap();
        let logs = c.producer("acme/logs").unwrap();
        let mut consumer = c
            .subscribe("acme/orders", "s", SubscriptionMode::Exclusive)
            .unwrap();
        for i in 0..6u64 {
            orders.send(&i.to_le_bytes()).unwrap();
        }
        for i in 0..4u64 {
            logs.send(&i.to_le_bytes()).unwrap();
        }
        // Quota full across the tenant's topics.
        assert!(matches!(
            orders.send(b"over"),
            Err(PulsarError::TenantQuotaExceeded { quota: 10, .. })
        ));
        // Another tenant is unaffected.
        let other = c.producer("other/t").unwrap();
        assert!(other.send(b"fine").is_ok());
        // Consuming + trimming releases quota.
        assert_eq!(consumer.drain().unwrap().len(), 6);
        // Roll the open segment by filling it, then trim: simplest is to
        // trim after the cursor passed the sealed segments. With 8
        // entries/segment and only 6 sent, the open segment cannot be
        // trimmed — so quota stays tight; verify the error persists…
        assert!(orders.send(b"still-over").is_err());
        // …until the other topic's backlog is consumed and trimmed.
        let mut log_reader = c
            .subscribe("acme/logs", "s", SubscriptionMode::Exclusive)
            .unwrap();
        assert_eq!(log_reader.drain().unwrap().len(), 4);
        assert_eq!(c.metrics().counter("quota_rejections").get(), 2);
    }

    #[test]
    fn unknown_topic_errors() {
        let c = small_cluster();
        assert!(matches!(
            c.producer("nope"),
            Err(PulsarError::TopicNotFound(_))
        ));
        assert!(matches!(
            c.subscribe("nope", "s", SubscriptionMode::Shared),
            Err(PulsarError::TopicNotFound(_))
        ));
        c.create_topic("t", 1).unwrap();
        assert!(matches!(
            c.create_topic("t", 1),
            Err(PulsarError::TopicExists(_))
        ));
    }
}
