//! Brokers, topics, producers, consumers and subscriptions.
//!
//! §4.3: "The Pulsar broker is a stateless component … receiving and
//! dispatching messages while using bookie as durable storage for messages
//! until they are consumed." Everything durable here — topic configuration,
//! segment lists, subscription cursors — lives in the metadata store and
//! the ledgers; the in-memory broker state can be thrown away and rebuilt
//! ([`PulsarCluster::restart_broker`] does exactly that, and the tests
//! verify no message is lost).
//!
//! Topics are partitioned ("Pulsar supports partitioned topics in order to
//! scale to large data volumes"); producers route by key hash or
//! round-robin; subscriptions come in Pulsar's three classic modes
//! ([`SubscriptionMode`]). Message storage rolls over ledger segments at a
//! configurable size, and a bookie failure mid-stream triggers rollover to
//! a fresh ledger on a healthy ensemble.

use std::collections::{BTreeSet, HashMap};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

use bytes::{BufMut, Bytes, BytesMut};
use parking_lot::Mutex;
use taureau_core::clock::{SharedClock, WallClock};
use taureau_core::hash::hash64;
use taureau_core::id::LedgerId;
use taureau_core::metrics::MetricsRegistry;
use taureau_core::sync::ShardedMap;
use taureau_core::trace::Tracer;

use crate::bookie::Bookie;
use crate::error::{PulsarError, Result};
use crate::ledger::{BookKeeper, LedgerConfig, LedgerWriter};
use crate::message::{Message, MessageId};
use crate::metadata::MetadataStore;

const ROUTE_SEED: u64 = 0x52_4f55_5445; // "ROUTE"

/// Subsystem label stamped on every span this crate records.
const TRACE_SYSTEM: &str = "taureau-pulsar";

/// Cluster configuration.
#[derive(Debug, Clone)]
pub struct PulsarConfig {
    /// Number of bookies (storage nodes).
    pub bookies: usize,
    /// Replication parameters for ledgers.
    pub ledger: LedgerConfig,
    /// Entries per ledger before rolling over to a new segment.
    pub max_entries_per_ledger: u64,
}

impl Default for PulsarConfig {
    fn default() -> Self {
        Self {
            bookies: 3,
            ledger: LedgerConfig::default(),
            max_entries_per_ledger: 1024,
        }
    }
}

/// Pulsar's subscription modes.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SubscriptionMode {
    /// One consumer only; a second attach is rejected.
    Exclusive,
    /// Messages are distributed across consumers (work-queue semantics).
    Shared,
    /// Many consumers attach, only the first (the active one) receives;
    /// on its detach the next takes over.
    Failover,
}

impl SubscriptionMode {
    fn encode(self) -> &'static str {
        match self {
            SubscriptionMode::Exclusive => "exclusive",
            SubscriptionMode::Shared => "shared",
            SubscriptionMode::Failover => "failover",
        }
    }

    fn decode(s: &str) -> Option<Self> {
        match s {
            "exclusive" => Some(SubscriptionMode::Exclusive),
            "shared" => Some(SubscriptionMode::Shared),
            "failover" => Some(SubscriptionMode::Failover),
            _ => None,
        }
    }
}

// --------------------------------------------------------------------------
// Entry codec: [key_len u32 | key | publish_nanos u64 | payload]

fn encode_entry(key: Option<&[u8]>, publish_nanos: u64, payload: &[u8]) -> Bytes {
    let key = key.unwrap_or(&[]);
    let mut buf = BytesMut::with_capacity(4 + key.len() + 8 + payload.len());
    buf.put_u32_le(key.len() as u32);
    buf.put_slice(key);
    buf.put_u64_le(publish_nanos);
    buf.put_slice(payload);
    buf.freeze()
}

fn decode_entry(bytes: &Bytes) -> Option<(Option<Bytes>, u64, Bytes)> {
    if bytes.len() < 12 {
        return None;
    }
    let key_len = u32::from_le_bytes(bytes[0..4].try_into().ok()?) as usize;
    if bytes.len() < 4 + key_len + 8 {
        return None;
    }
    let key = if key_len == 0 {
        None
    } else {
        Some(bytes.slice(4..4 + key_len))
    };
    let ts = u64::from_le_bytes(bytes[4 + key_len..4 + key_len + 8].try_into().ok()?);
    let payload = bytes.slice(4 + key_len + 8..);
    Some((key, ts, payload))
}

// --------------------------------------------------------------------------

/// Next position a subscription will read, per partition.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
struct ReadPos {
    /// Index into the partition's segment list.
    seg: usize,
    /// Entry within that segment.
    entry: u64,
}

#[derive(Debug)]
struct SubState {
    mode: SubscriptionMode,
    /// Per-partition read position.
    read: Vec<ReadPos>,
    /// Per-partition mark-delete: everything at or before this is acked.
    mark_delete: Vec<Option<MessageId>>,
    /// Individually acked messages above the mark-delete position.
    acked: BTreeSet<MessageId>,
    /// Delivered but not yet acked.
    pending: BTreeSet<MessageId>,
    /// Attached consumers (by id); order matters for failover.
    consumers: Vec<u64>,
}

struct Partition {
    /// Ledger segments, oldest first. The last may be open.
    segments: Vec<LedgerId>,
    /// Open writer, if any.
    writer: Option<LedgerWriter>,
}

struct Topic {
    partitions: Vec<Partition>,
    subs: HashMap<String, SubState>,
    /// Round-robin counter for key-less producers.
    rr: u64,
}

struct ClusterInner {
    clock: SharedClock,
    cfg: PulsarConfig,
    bk: BookKeeper,
    bookies: Arc<Vec<Arc<Bookie>>>,
    meta: Arc<MetadataStore>,
    /// Broker-side topic state, sharded by topic-name hash so operations on
    /// different topics never serialize on one broker-wide lock. Lock
    /// ordering: topic shard → metadata shard → tier/quotas mutex; nothing
    /// acquires a topic shard while holding another, so no cycles.
    topics: ShardedMap<String, Topic>,
    metrics: MetricsRegistry,
    tracer: Mutex<Tracer>,
    next_consumer: AtomicU64,
    /// Optional cold tier for sealed segments (§4.3 "tiered storage").
    tier: Mutex<Option<crate::tiering::TierBackend>>,
    /// Per-tenant retained-entry quotas (§4.3 "multi-tenancy").
    quotas: Mutex<HashMap<String, u64>>,
}

/// A Pulsar cluster: brokers + bookies + metadata, in process.
///
/// Cheap to clone; clones share the cluster.
#[derive(Clone)]
pub struct PulsarCluster {
    inner: Arc<ClusterInner>,
}

impl PulsarCluster {
    /// Create a cluster with the given config on the given clock.
    pub fn new(cfg: PulsarConfig, clock: SharedClock) -> Self {
        let bookies: Arc<Vec<Arc<Bookie>>> =
            Arc::new((0..cfg.bookies).map(|i| Arc::new(Bookie::new(i))).collect());
        let meta = Arc::new(MetadataStore::new());
        let bk = BookKeeper::new(bookies.clone(), meta.clone());
        Self {
            inner: Arc::new(ClusterInner {
                clock,
                cfg,
                bk,
                bookies,
                meta,
                topics: ShardedMap::new(),
                metrics: MetricsRegistry::new(),
                tracer: Mutex::new(Tracer::disabled()),
                next_consumer: AtomicU64::new(0),
                tier: Mutex::new(None),
                quotas: Mutex::new(HashMap::new()),
            }),
        }
    }

    /// Default 3-bookie cluster on a wall clock.
    pub fn with_defaults() -> Self {
        Self::new(PulsarConfig::default(), WallClock::shared())
    }

    /// The cluster's bookies (for failure injection in tests/benches).
    pub fn bookies(&self) -> &[Arc<Bookie>] {
        &self.inner.bookies
    }

    /// Metrics registry.
    pub fn metrics(&self) -> &MetricsRegistry {
        &self.inner.metrics
    }

    /// Attach a tracer; publish and dispatch paths record spans on it.
    pub fn set_tracer(&self, tracer: Tracer) {
        *self.inner.tracer.lock() = tracer;
    }

    /// The attached tracer (disabled unless [`PulsarCluster::set_tracer`]
    /// was called).
    pub fn tracer(&self) -> Tracer {
        self.inner.tracer.lock().clone()
    }

    /// Direct BookKeeper access (used by benches).
    pub fn bookkeeper(&self) -> &BookKeeper {
        &self.inner.bk
    }

    /// Configure a cold tier: sealed segments can now be offloaded to the
    /// blob store and read back transparently (§4.3 "tiered storage").
    pub fn enable_tiering(&self, blob: std::sync::Arc<taureau_baas::BlobStore>, bucket: &str) {
        *self.inner.tier.lock() = Some(crate::tiering::TierBackend::new(blob, bucket));
    }

    /// Offload every sealed (non-open) segment of a topic to the cold
    /// tier, freeing the bookies. Returns segments offloaded.
    ///
    /// # Errors
    /// [`PulsarError::TopicNotFound`] for unknown topics. Calling without
    /// [`PulsarCluster::enable_tiering`] is a no-op returning 0.
    pub fn offload_sealed(&self, topic: &str) -> Result<usize> {
        let tier = match self.inner.tier.lock().clone() {
            Some(t) => t,
            None => return Ok(0),
        };
        self.with_topic(topic, |inner, t| {
            let mut offloaded = 0;
            for part in &t.partitions {
                for &lid in &part.segments {
                    // Skip the open segment and anything already offloaded.
                    if part.writer.as_ref().is_some_and(|w| w.id() == lid) {
                        continue;
                    }
                    if tier.offloaded_len(&inner.meta, lid).is_some() {
                        continue;
                    }
                    let Ok(Some(last)) = inner.bk.last_entry(lid) else {
                        // Empty sealed segment: record as zero entries.
                        if inner.bk.ledger_meta(lid).is_ok() {
                            tier.store_segment(&inner.meta, lid, &[]);
                            let _ = inner.bk.delete_ledger(lid);
                            offloaded += 1;
                        }
                        continue;
                    };
                    let entries: Result<Vec<Bytes>> =
                        (0..=last).map(|e| inner.bk.read_entry(lid, e)).collect();
                    tier.store_segment(&inner.meta, lid, &entries?);
                    inner.bk.delete_ledger(lid)?;
                    inner.metrics.counter("segments_offloaded").inc();
                    offloaded += 1;
                }
            }
            Ok(offloaded)
        })
    }

    /// The tenant of a topic: the segment before the first `/` in the
    /// topic name (Pulsar's `tenant/namespace/topic` convention,
    /// flattened), or the whole name for un-namespaced topics.
    pub fn tenant_of(topic: &str) -> &str {
        topic.split('/').next().unwrap_or(topic)
    }

    /// Cap the total retained entries across a tenant's topics
    /// (multi-tenancy backlog quota). Publishing beyond the cap fails with
    /// [`PulsarError::TenantQuotaExceeded`] until consumers ack and the
    /// topic is trimmed.
    pub fn set_tenant_quota(&self, tenant: &str, max_retained_entries: u64) {
        self.inner
            .quotas
            .lock()
            .insert(tenant.to_string(), max_retained_entries);
    }

    /// Create a topic with `partitions` partitions.
    pub fn create_topic(&self, name: &str, partitions: u32) -> Result<()> {
        assert!(partitions >= 1);
        let key = format!("/topics/{name}");
        if self.inner.meta.get(&key).is_some() {
            return Err(PulsarError::TopicExists(name.to_string()));
        }
        self.inner
            .meta
            .create(&key, partitions.to_string().into_bytes())?;
        for p in 0..partitions {
            self.inner
                .meta
                .put(&format!("/topics/{name}/{p}/segments"), Vec::new());
        }
        self.inner.topics.insert(
            name.to_string(),
            Topic {
                partitions: (0..partitions)
                    .map(|_| Partition {
                        segments: Vec::new(),
                        writer: None,
                    })
                    .collect(),
                subs: HashMap::new(),
                rr: 0,
            },
        );
        Ok(())
    }

    /// Number of partitions of a topic.
    pub fn partitions(&self, topic: &str) -> Result<u32> {
        let v = self
            .inner
            .meta
            .get(&format!("/topics/{topic}"))
            .ok_or_else(|| PulsarError::TopicNotFound(topic.to_string()))?;
        std::str::from_utf8(&v.data)
            .ok()
            .and_then(|s| s.parse().ok())
            .ok_or_else(|| PulsarError::TopicNotFound(topic.to_string()))
    }

    /// Attach a producer to a topic.
    pub fn producer(&self, topic: &str) -> Result<Producer> {
        self.partitions(topic)?;
        Ok(Producer {
            cluster: self.clone(),
            topic: topic.to_string(),
        })
    }

    /// Attach a consumer under a named subscription, creating the
    /// subscription at the topic's current *beginning* if new.
    pub fn subscribe(
        &self,
        topic: &str,
        subscription: &str,
        mode: SubscriptionMode,
    ) -> Result<Consumer> {
        let nparts = self.partitions(topic)? as usize;
        let cid = self.with_topic(topic, |inner, t| {
            let sub = t
                .subs
                .entry(subscription.to_string())
                .or_insert_with(|| SubState {
                    mode,
                    read: vec![ReadPos { seg: 0, entry: 0 }; nparts],
                    mark_delete: vec![None; nparts],
                    acked: BTreeSet::new(),
                    pending: BTreeSet::new(),
                    consumers: Vec::new(),
                });
            if sub.mode == SubscriptionMode::Exclusive && !sub.consumers.is_empty() {
                return Err(PulsarError::ExclusiveSubscriptionBusy(
                    subscription.to_string(),
                ));
            }
            let cid = inner.next_consumer.fetch_add(1, Ordering::Relaxed);
            sub.consumers.push(cid);
            // Persist subscription existence for broker restarts.
            inner.meta.put(
                &format!("/topics/{topic}/subs/{subscription}"),
                mode.encode().as_bytes().to_vec(),
            );
            Ok(cid)
        })?;
        Ok(Consumer {
            cluster: self.clone(),
            topic: topic.to_string(),
            subscription: subscription.to_string(),
            id: cid,
            rr_part: 0,
        })
    }

    // -- internals ----------------------------------------------------------

    /// Run `f` with the topic's broker-side state, holding only that
    /// topic's shard lock. Rebuilds the state from metadata if it is not
    /// loaded (stateless broker); the rebuild happens inside the shard
    /// lock so concurrent callers see it exactly once.
    fn with_topic<R>(
        &self,
        name: &str,
        f: impl FnOnce(&ClusterInner, &mut Topic) -> Result<R>,
    ) -> Result<R> {
        let inner = &*self.inner;
        inner.topics.with(name, |shard| {
            if !shard.contains_key(name) {
                let t = Self::load_topic(inner, name)?;
                shard.insert(name.to_string(), t);
            }
            f(inner, shard.get_mut(name).expect("just inserted"))
        })
    }

    /// Rebuild broker-side state for a topic from metadata (stateless
    /// broker). Touches only the metadata store and bookies — never
    /// another topic's shard.
    fn load_topic(inner: &ClusterInner, name: &str) -> Result<Topic> {
        let nparts: u32 = {
            let v = inner
                .meta
                .get(&format!("/topics/{name}"))
                .ok_or_else(|| PulsarError::TopicNotFound(name.to_string()))?;
            std::str::from_utf8(&v.data)
                .ok()
                .and_then(|s| s.parse().ok())
                .ok_or_else(|| PulsarError::TopicNotFound(name.to_string()))?
        };
        let mut partitions = Vec::with_capacity(nparts as usize);
        for p in 0..nparts {
            let segs = inner
                .meta
                .get(&format!("/topics/{name}/{p}/segments"))
                .map(|v| decode_segments(&v.data))
                .unwrap_or_default();
            // Any open tail segment belongs to a dead broker: fence it.
            if let Some(&last) = segs.last() {
                let _ = inner.bk.recover_and_close(last);
            }
            partitions.push(Partition {
                segments: segs,
                writer: None,
            });
        }
        let mut subs = HashMap::new();
        for key in inner.meta.list_prefix(&format!("/topics/{name}/subs/")) {
            let sub_name = key.rsplit('/').next().unwrap_or_default().to_string();
            let mode = inner
                .meta
                .get(&key)
                .and_then(|v| SubscriptionMode::decode(std::str::from_utf8(&v.data).ok()?))
                .unwrap_or(SubscriptionMode::Shared);
            // Restore cursors from persisted mark-delete positions.
            let mut read = Vec::with_capacity(nparts as usize);
            let mut mark_delete = Vec::with_capacity(nparts as usize);
            for p in 0..nparts {
                let md = inner
                    .meta
                    .get(&format!("/topics/{name}/{p}/cursor/{sub_name}"))
                    .and_then(|v| decode_cursor(&v.data));
                let pos = match md {
                    Some(id) => {
                        let seg = partitions[p as usize]
                            .segments
                            .iter()
                            .position(|&l| l == id.ledger)
                            .unwrap_or(0);
                        ReadPos {
                            seg,
                            entry: id.entry + 1,
                        }
                    }
                    None => ReadPos { seg: 0, entry: 0 },
                };
                read.push(pos);
                mark_delete.push(md);
            }
            subs.insert(
                sub_name,
                SubState {
                    mode,
                    read,
                    mark_delete,
                    acked: BTreeSet::new(),
                    pending: BTreeSet::new(),
                    consumers: Vec::new(),
                },
            );
        }
        Ok(Topic {
            partitions,
            subs,
            rr: 0,
        })
    }

    /// Drop all in-memory broker state; the next operation rebuilds it from
    /// metadata + ledgers. Models a broker restart — the statelessness
    /// claim of §4.3.
    pub fn restart_broker(&self) {
        self.inner.topics.clear();
    }

    fn persist_segments(inner: &ClusterInner, topic: &str, p: usize, segs: &[LedgerId]) {
        inner.meta.put(
            &format!("/topics/{topic}/{p}/segments"),
            encode_segments(segs),
        );
    }

    fn publish(&self, topic: &str, key: Option<&[u8]>, payload: &[u8]) -> Result<MessageId> {
        let tracer = self.tracer();
        let mut span = tracer.span(TRACE_SYSTEM, "pulsar.publish");
        span.attr("topic", topic);
        span.attr("bytes", payload.len());
        let now = self.inner.clock.now();
        let inner = &*self.inner;
        // Step 1: make sure the topic is loaded (shard locked and released).
        self.with_topic(topic, |_, _| Ok(()))?;
        // Step 2: multi-tenancy backlog quota — total retained entries
        // across the tenant's loaded topics must stay under the cap. The
        // scan visits shards one at a time without holding the target
        // topic's shard, so two publishers scanning each other's tenants
        // cannot deadlock. (Concurrent publishers may both pass a nearly
        // full quota check; the cap is a backlog bound, not a ledger.)
        let tenant = Self::tenant_of(topic);
        if let Some(quota) = inner.quotas.lock().get(tenant).copied() {
            let mut retained = 0u64;
            inner.topics.for_each(|name, t| {
                if Self::tenant_of(name) == tenant {
                    for part in &t.partitions {
                        for seg in 0..part.segments.len() {
                            retained += Self::segment_len(inner, part, seg);
                        }
                    }
                }
            });
            if retained >= quota {
                inner.metrics.counter("quota_rejections").inc();
                span.attr("outcome", "quota_rejected");
                return Err(PulsarError::TenantQuotaExceeded {
                    tenant: tenant.to_string(),
                    quota,
                });
            }
        }
        // Step 3: append under the target topic's shard lock only.
        let result = self.with_topic(topic, |inner, t| {
            let nparts = t.partitions.len();
            let p = match key {
                Some(k) => (hash64(ROUTE_SEED, k) % nparts as u64) as usize,
                None => {
                    t.rr = t.rr.wrapping_add(1);
                    (t.rr as usize) % nparts
                }
            };
            span.attr("partition", p);
            let entry_bytes = encode_entry(key, now.as_nanos() as u64, payload);
            let part = &mut t.partitions[p];
            // Up to one rollover retry on quorum failure.
            for attempt in 0..2 {
                // Open a writer if needed, rolling over at the segment cap.
                let need_new = match &part.writer {
                    None => true,
                    Some(w) => w.len() >= inner.cfg.max_entries_per_ledger,
                };
                if need_new {
                    if let Some(mut w) = part.writer.take() {
                        let _ = w.close();
                    }
                    let w = inner.bk.create_ledger(inner.cfg.ledger)?;
                    part.segments.push(w.id());
                    Self::persist_segments(inner, topic, p, &part.segments);
                    part.writer = Some(w);
                }
                let w = part.writer.as_mut().expect("writer just ensured");
                let mut append_span = tracer.span(TRACE_SYSTEM, "pulsar.bookie_append");
                append_span.attr("ledger", w.id().raw());
                append_span.attr("attempt", attempt);
                let appended = w.append(entry_bytes.clone());
                drop(append_span);
                match appended {
                    Ok(entry) => {
                        inner.metrics.counter("messages_published").inc();
                        return Ok(MessageId {
                            partition: p as u32,
                            ledger: w.id(),
                            entry,
                        });
                    }
                    Err(PulsarError::QuorumUnavailable { .. }) => {
                        // Seal the wounded ledger and roll over to a fresh
                        // ensemble on the retry.
                        let mut w = part.writer.take().expect("writer present");
                        let _ = w.close();
                        continue;
                    }
                    Err(e) => return Err(e),
                }
            }
            Err(PulsarError::QuorumUnavailable {
                needed: inner.cfg.ledger.ack_quorum,
                got: 0,
            })
        });
        match &result {
            Ok(_) => span.attr("outcome", "ok"),
            Err(PulsarError::QuorumUnavailable { .. }) => {
                span.attr("outcome", "quorum_unavailable");
            }
            Err(_) => {}
        }
        result
    }

    /// Segment length: closed segments from metadata, the open one from the
    /// writer, offloaded ones from the cold-tier record.
    fn segment_len(inner: &ClusterInner, part: &Partition, seg_idx: usize) -> u64 {
        let lid = part.segments[seg_idx];
        if let Some(w) = &part.writer {
            if w.id() == lid {
                return w.len();
            }
        }
        match inner.bk.last_entry(lid) {
            Ok(Some(last)) => last + 1,
            _ => {
                if let Some(tier) = &*inner.tier.lock() {
                    if let Some(n) = tier.offloaded_len(&inner.meta, lid) {
                        return n;
                    }
                }
                0
            }
        }
    }

    /// Read an entry from the bookies, falling back to the cold tier for
    /// offloaded segments.
    fn read_entry_any(inner: &ClusterInner, lid: LedgerId, entry: u64) -> Result<Bytes> {
        match inner.bk.read_entry(lid, entry) {
            Ok(b) => Ok(b),
            Err(e) => {
                if let Some(tier) = &*inner.tier.lock() {
                    if let Some(b) = tier.read_entry(&inner.meta, lid, entry) {
                        inner.metrics.counter("tier_reads").inc();
                        return Ok(b);
                    }
                }
                Err(e)
            }
        }
    }

    fn receive_from(
        &self,
        topic: &str,
        subscription: &str,
        consumer_id: u64,
        start_part: &mut usize,
    ) -> Result<Option<Message>> {
        let tracer = self.tracer();
        let mut span = tracer.span(TRACE_SYSTEM, "pulsar.dispatch");
        span.attr("topic", topic);
        span.attr("subscription", subscription);
        self.with_topic(topic, |inner, t| {
            let nparts = t.partitions.len();
            let sub = t
                .subs
                .get_mut(subscription)
                .ok_or_else(|| PulsarError::TopicNotFound(format!("{topic}:{subscription}")))?;
            // Failover: only the active (first attached) consumer receives.
            if sub.mode == SubscriptionMode::Failover && sub.consumers.first() != Some(&consumer_id)
            {
                return Ok(None);
            }
            for scan in 0..nparts {
                let p = (*start_part + scan) % nparts;
                loop {
                    let pos = sub.read[p];
                    let part = &t.partitions[p];
                    if pos.seg >= part.segments.len() {
                        break; // nothing ever written here
                    }
                    let seg_len = Self::segment_len(inner, part, pos.seg);
                    if pos.entry >= seg_len {
                        // Move to the next segment if this one is closed and
                        // fully read.
                        let is_open = part
                            .writer
                            .as_ref()
                            .is_some_and(|w| w.id() == part.segments[pos.seg]);
                        if !is_open && pos.seg + 1 < part.segments.len() {
                            sub.read[p] = ReadPos {
                                seg: pos.seg + 1,
                                entry: 0,
                            };
                            continue;
                        }
                        break; // caught up on this partition
                    }
                    let lid = part.segments[pos.seg];
                    let id = MessageId {
                        partition: p as u32,
                        ledger: lid,
                        entry: pos.entry,
                    };
                    sub.read[p] = ReadPos {
                        seg: pos.seg,
                        entry: pos.entry + 1,
                    };
                    if sub.acked.contains(&id) {
                        continue; // individually acked earlier (redelivery path)
                    }
                    // Also skip anything the mark-delete cursor already covers
                    // (individual acks get folded into mark-delete and leave
                    // the acked set).
                    if let Some(md) = sub.mark_delete[p] {
                        let md_seg = part
                            .segments
                            .iter()
                            .position(|&l| l == md.ledger)
                            .unwrap_or(0);
                        if (pos.seg, pos.entry) <= (md_seg, md.entry) {
                            continue;
                        }
                    }
                    let raw = Self::read_entry_any(inner, lid, pos.entry)?;
                    let (key, ts, payload) =
                        decode_entry(&raw).ok_or(PulsarError::EntryUnavailable {
                            ledger: lid,
                            entry: pos.entry,
                        })?;
                    sub.pending.insert(id);
                    *start_part = (p + 1) % nparts;
                    inner.metrics.counter("messages_delivered").inc();
                    span.attr("partition", p);
                    span.attr("ledger", lid.raw());
                    span.attr("entry", pos.entry);
                    return Ok(Some(Message {
                        id,
                        key,
                        payload,
                        publish_time: std::time::Duration::from_nanos(ts),
                    }));
                }
            }
            Ok(None)
        })
    }

    fn ack(&self, topic: &str, subscription: &str, id: MessageId) -> Result<()> {
        self.with_topic(topic, |inner, t| {
            let sub = t
                .subs
                .get_mut(subscription)
                .ok_or_else(|| PulsarError::TopicNotFound(format!("{topic}:{subscription}")))?;
            sub.pending.remove(&id);
            sub.acked.insert(id);
            // Advance the mark-delete position while the next message is acked.
            let p = id.partition as usize;
            let part = &t.partitions[p];
            loop {
                let next = match sub.mark_delete[p] {
                    None => {
                        // First position of the partition.
                        match part.segments.first() {
                            Some(&l) => MessageId {
                                partition: id.partition,
                                ledger: l,
                                entry: 0,
                            },
                            None => break,
                        }
                    }
                    Some(md) => {
                        // Position after md: next entry, or first entry of the
                        // next segment.
                        let seg_idx = part
                            .segments
                            .iter()
                            .position(|&l| l == md.ledger)
                            .unwrap_or(0);
                        let seg_len = Self::segment_len(inner, part, seg_idx);
                        if md.entry + 1 < seg_len {
                            MessageId {
                                partition: id.partition,
                                ledger: md.ledger,
                                entry: md.entry + 1,
                            }
                        } else if seg_idx + 1 < part.segments.len() {
                            MessageId {
                                partition: id.partition,
                                ledger: part.segments[seg_idx + 1],
                                entry: 0,
                            }
                        } else {
                            break;
                        }
                    }
                };
                if sub.acked.remove(&next) {
                    sub.mark_delete[p] = Some(next);
                } else {
                    break;
                }
            }
            if let Some(md) = sub.mark_delete[p] {
                inner.meta.put(
                    &format!("/topics/{topic}/{p}/cursor/{subscription}"),
                    encode_cursor(&md),
                );
            }
            Ok(())
        })
    }

    fn redeliver(&self, topic: &str, subscription: &str) -> Result<usize> {
        self.with_topic(topic, |_inner, t| {
            let sub = t
                .subs
                .get_mut(subscription)
                .ok_or_else(|| PulsarError::TopicNotFound(format!("{topic}:{subscription}")))?;
            let n = sub.pending.len();
            // Rewind each partition's read position to just after mark-delete;
            // already-acked messages are skipped during delivery.
            for p in 0..t.partitions.len() {
                let pos = match sub.mark_delete[p] {
                    None => ReadPos { seg: 0, entry: 0 },
                    Some(md) => {
                        let seg = t.partitions[p]
                            .segments
                            .iter()
                            .position(|&l| l == md.ledger)
                            .unwrap_or(0);
                        ReadPos {
                            seg,
                            entry: md.entry + 1,
                        }
                    }
                };
                sub.read[p] = pos;
            }
            sub.pending.clear();
            Ok(n)
        })
    }

    fn detach(&self, topic: &str, subscription: &str, consumer_id: u64) {
        // No lazy rebuild: detaching from an unloaded topic is a no-op.
        self.inner.topics.with(topic, |shard| {
            if let Some(t) = shard.get_mut(topic) {
                if let Some(sub) = t.subs.get_mut(subscription) {
                    sub.consumers.retain(|&c| c != consumer_id);
                }
            }
        });
    }

    /// Delete ledger segments that every subscription has fully consumed
    /// ("durable storage for messages until they are consumed"). Returns
    /// the number of segments reclaimed.
    pub fn trim_consumed(&self, topic: &str) -> Result<usize> {
        self.with_topic(topic, |inner, t| {
            let mut reclaimed = 0;
            for p in 0..t.partitions.len() {
                loop {
                    let part = &t.partitions[p];
                    let Some(&first) = part.segments.first() else {
                        break;
                    };
                    // The open segment is never trimmed.
                    if part.writer.as_ref().is_some_and(|w| w.id() == first) {
                        break;
                    }
                    let seg_len = Self::segment_len(inner, part, 0);
                    // Every subscription must have mark-deleted past this
                    // segment's final entry.
                    let all_consumed = !t.subs.is_empty()
                        && t.subs.values().all(|sub| match sub.mark_delete[p] {
                            Some(md) => md.ledger != first || md.entry + 1 >= seg_len,
                            None => seg_len == 0,
                        })
                        && t.subs.values().all(|sub| {
                            sub.mark_delete[p]
                                .map(|md| md.ledger != first)
                                .unwrap_or(seg_len == 0)
                                || seg_len == 0
                        });
                    if !all_consumed {
                        break;
                    }
                    // Delete from whichever tier holds the segment.
                    if inner.bk.delete_ledger(first).is_err() {
                        if let Some(tier) = &*inner.tier.lock() {
                            tier.delete_segment(&inner.meta, first);
                        }
                    }
                    t.partitions[p].segments.remove(0);
                    // Re-base read positions that referenced segment indices.
                    for sub in t.subs.values_mut() {
                        if sub.read[p].seg > 0 {
                            sub.read[p].seg -= 1;
                        } else {
                            sub.read[p] = ReadPos { seg: 0, entry: 0 };
                        }
                    }
                    let segs = t.partitions[p].segments.clone();
                    Self::persist_segments(inner, topic, p, &segs);
                    reclaimed += 1;
                }
            }
            Ok(reclaimed)
        })
    }

    /// Total messages currently retained on the bookies for a topic.
    pub fn retained_entries(&self, topic: &str) -> Result<u64> {
        self.with_topic(topic, |inner, t| {
            let mut total = 0;
            for part in &t.partitions {
                for seg_idx in 0..part.segments.len() {
                    total += Self::segment_len(inner, part, seg_idx);
                }
            }
            Ok(total)
        })
    }
}

fn encode_segments(segs: &[LedgerId]) -> Vec<u8> {
    segs.iter()
        .map(|l| l.raw().to_string())
        .collect::<Vec<_>>()
        .join(",")
        .into_bytes()
}

fn decode_segments(bytes: &[u8]) -> Vec<LedgerId> {
    std::str::from_utf8(bytes)
        .unwrap_or("")
        .split(',')
        .filter(|s| !s.is_empty())
        .filter_map(|s| s.parse().ok().map(LedgerId))
        .collect()
}

fn encode_cursor(id: &MessageId) -> Vec<u8> {
    format!("{};{};{}", id.partition, id.ledger.raw(), id.entry).into_bytes()
}

fn decode_cursor(bytes: &[u8]) -> Option<MessageId> {
    let s = std::str::from_utf8(bytes).ok()?;
    let mut it = s.split(';');
    Some(MessageId {
        partition: it.next()?.parse().ok()?,
        ledger: LedgerId(it.next()?.parse().ok()?),
        entry: it.next()?.parse().ok()?,
    })
}

/// A producer attached to a topic.
#[derive(Clone)]
pub struct Producer {
    cluster: PulsarCluster,
    topic: String,
}

impl Producer {
    /// Topic name.
    pub fn topic(&self) -> &str {
        &self.topic
    }

    /// Publish a key-less message (round-robin partition routing).
    pub fn send(&self, payload: &[u8]) -> Result<MessageId> {
        self.cluster.publish(&self.topic, None, payload)
    }

    /// Publish with a partition key (all messages with one key land on one
    /// partition, preserving per-key order).
    pub fn send_keyed(&self, key: &[u8], payload: &[u8]) -> Result<MessageId> {
        self.cluster.publish(&self.topic, Some(key), payload)
    }
}

/// A consumer attached to a subscription.
pub struct Consumer {
    cluster: PulsarCluster,
    topic: String,
    subscription: String,
    id: u64,
    rr_part: usize,
}

impl Consumer {
    /// Topic name.
    pub fn topic(&self) -> &str {
        &self.topic
    }

    /// Subscription name.
    pub fn subscription(&self) -> &str {
        &self.subscription
    }

    /// Pull the next available message (non-blocking; `None` when caught
    /// up, or when this consumer is a passive failover replica).
    pub fn receive(&mut self) -> Result<Option<Message>> {
        self.cluster
            .receive_from(&self.topic, &self.subscription, self.id, &mut self.rr_part)
    }

    /// Acknowledge a message; advances the subscription's mark-delete
    /// cursor when contiguous.
    pub fn ack(&self, id: MessageId) -> Result<()> {
        self.cluster.ack(&self.topic, &self.subscription, id)
    }

    /// Request redelivery of everything delivered but not acked (what a
    /// crashed consumer's replacement calls). Returns how many messages
    /// were outstanding.
    pub fn redeliver_unacked(&self) -> Result<usize> {
        self.cluster.redeliver(&self.topic, &self.subscription)
    }

    /// Drain all currently-available messages, acking each.
    pub fn drain(&mut self) -> Result<Vec<Message>> {
        let mut out = Vec::new();
        while let Some(m) = self.receive()? {
            self.ack(m.id)?;
            out.push(m);
        }
        Ok(out)
    }
}

impl Drop for Consumer {
    fn drop(&mut self) {
        self.cluster
            .detach(&self.topic, &self.subscription, self.id);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small_cluster() -> PulsarCluster {
        let cfg = PulsarConfig {
            bookies: 3,
            ledger: LedgerConfig {
                ensemble: 3,
                write_quorum: 2,
                ack_quorum: 2,
            },
            max_entries_per_ledger: 8,
        };
        PulsarCluster::new(cfg, WallClock::shared())
    }

    #[test]
    fn entry_codec_roundtrip() {
        for (key, payload) in [
            (None, &b"hello"[..]),
            (Some(&b"k"[..]), &b""[..]),
            (Some(&b"key-long"[..]), &b"payload"[..]),
        ] {
            let enc = encode_entry(key, 42, payload);
            let (k, ts, p) = decode_entry(&enc).unwrap();
            assert_eq!(k.as_deref(), key);
            assert_eq!(ts, 42);
            assert_eq!(&p[..], payload);
        }
    }

    #[test]
    fn publish_consume_ack() {
        let c = small_cluster();
        c.create_topic("events", 1).unwrap();
        let producer = c.producer("events").unwrap();
        let mut consumer = c
            .subscribe("events", "sub", SubscriptionMode::Exclusive)
            .unwrap();
        for i in 0..20u64 {
            producer.send(&i.to_le_bytes()).unwrap();
        }
        let got = consumer.drain().unwrap();
        assert_eq!(got.len(), 20);
        let payloads: Vec<u64> = got
            .iter()
            .map(|m| u64::from_le_bytes(m.payload[..].try_into().unwrap()))
            .collect();
        assert_eq!(payloads, (0..20).collect::<Vec<_>>());
        // Caught up.
        assert!(consumer.receive().unwrap().is_none());
    }

    #[test]
    fn segment_rollover_is_transparent() {
        let c = small_cluster(); // 8 entries per segment
        c.create_topic("t", 1).unwrap();
        let p = c.producer("t").unwrap();
        for i in 0..50u64 {
            p.send(&i.to_le_bytes()).unwrap();
        }
        let mut consumer = c.subscribe("t", "s", SubscriptionMode::Exclusive).unwrap();
        assert_eq!(consumer.drain().unwrap().len(), 50);
        // At least ceil(50/8)=7 segments were created.
        assert!(c.retained_entries("t").unwrap() == 50);
    }

    #[test]
    fn keyed_messages_preserve_per_key_order_across_partitions() {
        let c = small_cluster();
        c.create_topic("orders", 4).unwrap();
        let p = c.producer("orders").unwrap();
        for i in 0..40u64 {
            let key = format!("user-{}", i % 5);
            p.send_keyed(key.as_bytes(), &i.to_le_bytes()).unwrap();
        }
        let mut consumer = c
            .subscribe("orders", "s", SubscriptionMode::Shared)
            .unwrap();
        let msgs = consumer.drain().unwrap();
        assert_eq!(msgs.len(), 40);
        // Per-key sequences must be increasing.
        let mut last: HashMap<Vec<u8>, u64> = HashMap::new();
        for m in msgs {
            let v = u64::from_le_bytes(m.payload[..].try_into().unwrap());
            let k = m.key.unwrap().to_vec();
            if let Some(&prev) = last.get(&k) {
                assert!(v > prev, "key order violated: {prev} then {v}");
            }
            last.insert(k, v);
        }
        assert_eq!(last.len(), 5);
    }

    #[test]
    fn exclusive_subscription_rejects_second_consumer() {
        let c = small_cluster();
        c.create_topic("t", 1).unwrap();
        let _c1 = c.subscribe("t", "s", SubscriptionMode::Exclusive).unwrap();
        assert!(matches!(
            c.subscribe("t", "s", SubscriptionMode::Exclusive),
            Err(PulsarError::ExclusiveSubscriptionBusy(_))
        ));
    }

    #[test]
    fn shared_subscription_splits_work() {
        let c = small_cluster();
        c.create_topic("work", 1).unwrap();
        let p = c.producer("work").unwrap();
        for i in 0..30u64 {
            p.send(&i.to_le_bytes()).unwrap();
        }
        let mut c1 = c
            .subscribe("work", "workers", SubscriptionMode::Shared)
            .unwrap();
        let mut c2 = c
            .subscribe("work", "workers", SubscriptionMode::Shared)
            .unwrap();
        let mut n1 = 0;
        let mut n2 = 0;
        loop {
            let mut progressed = false;
            if let Some(m) = c1.receive().unwrap() {
                c1.ack(m.id).unwrap();
                n1 += 1;
                progressed = true;
            }
            if let Some(m) = c2.receive().unwrap() {
                c2.ack(m.id).unwrap();
                n2 += 1;
                progressed = true;
            }
            if !progressed {
                break;
            }
        }
        // Each message delivered exactly once across the pair.
        assert_eq!(n1 + n2, 30, "n1={n1} n2={n2}");
        assert!(n1 > 0 && n2 > 0, "both consumers should get work");
    }

    #[test]
    fn failover_only_active_consumer_receives() {
        let c = small_cluster();
        c.create_topic("t", 1).unwrap();
        let p = c.producer("t").unwrap();
        p.send(b"m").unwrap();
        let mut active = c.subscribe("t", "s", SubscriptionMode::Failover).unwrap();
        let mut standby = c.subscribe("t", "s", SubscriptionMode::Failover).unwrap();
        assert!(standby.receive().unwrap().is_none());
        let m = active.receive().unwrap().unwrap();
        active.ack(m.id).unwrap();
        // Active detaches; standby takes over.
        p.send(b"m2").unwrap();
        drop(active);
        let m2 = standby.receive().unwrap().unwrap();
        assert_eq!(&m2.payload[..], b"m2");
    }

    #[test]
    fn two_subscriptions_each_get_all_messages() {
        let c = small_cluster();
        c.create_topic("fanout", 1).unwrap();
        let p = c.producer("fanout").unwrap();
        for i in 0..10u64 {
            p.send(&i.to_le_bytes()).unwrap();
        }
        let mut s1 = c
            .subscribe("fanout", "analytics", SubscriptionMode::Exclusive)
            .unwrap();
        let mut s2 = c
            .subscribe("fanout", "archive", SubscriptionMode::Exclusive)
            .unwrap();
        assert_eq!(s1.drain().unwrap().len(), 10);
        assert_eq!(s2.drain().unwrap().len(), 10);
    }

    #[test]
    fn unacked_messages_are_redelivered() {
        let c = small_cluster();
        c.create_topic("t", 1).unwrap();
        let p = c.producer("t").unwrap();
        for i in 0..5u64 {
            p.send(&i.to_le_bytes()).unwrap();
        }
        let mut consumer = c.subscribe("t", "s", SubscriptionMode::Exclusive).unwrap();
        // Receive all, ack only the first two.
        let mut msgs = Vec::new();
        while let Some(m) = consumer.receive().unwrap() {
            msgs.push(m);
        }
        consumer.ack(msgs[0].id).unwrap();
        consumer.ack(msgs[1].id).unwrap();
        let outstanding = consumer.redeliver_unacked().unwrap();
        assert_eq!(outstanding, 3);
        let redelivered = consumer.drain().unwrap();
        assert_eq!(redelivered.len(), 3);
        assert_eq!(
            u64::from_le_bytes(redelivered[0].payload[..].try_into().unwrap()),
            2
        );
    }

    #[test]
    fn broker_restart_loses_nothing() {
        let c = small_cluster();
        c.create_topic("t", 2).unwrap();
        let p = c.producer("t").unwrap();
        let mut consumer = c.subscribe("t", "s", SubscriptionMode::Shared).unwrap();
        for i in 0..20u64 {
            p.send(&i.to_le_bytes()).unwrap();
        }
        // Consume and ack half.
        for _ in 0..10 {
            let m = consumer.receive().unwrap().unwrap();
            consumer.ack(m.id).unwrap();
        }
        // Broker dies; all in-memory state gone.
        c.restart_broker();
        // A fresh consumer on the same subscription resumes from the
        // mark-delete position: the 10 unconsumed messages arrive.
        let mut c2 = c.subscribe("t", "s", SubscriptionMode::Shared).unwrap();
        let rest = c2.drain().unwrap();
        assert_eq!(rest.len(), 10, "messages lost or duplicated across restart");
        // And publishing still works (new ledgers after fencing).
        p.send(b"after").unwrap();
        assert_eq!(c2.drain().unwrap().len(), 1);
    }

    #[test]
    fn bookie_crash_mid_stream_rolls_over() {
        let cfg = PulsarConfig {
            bookies: 4,
            ledger: LedgerConfig {
                ensemble: 3,
                write_quorum: 3,
                ack_quorum: 2,
            },
            max_entries_per_ledger: 1000,
        };
        let c = PulsarCluster::new(cfg, WallClock::shared());
        c.create_topic("t", 1).unwrap();
        let p = c.producer("t").unwrap();
        for i in 0..10u64 {
            p.send(&i.to_le_bytes()).unwrap();
        }
        // Two bookies die; the current ensemble can't meet ack quorum, so
        // the broker must seal and roll to the remaining bookies… but only
        // 2 are alive and ensemble needs 3 → publishing fails.
        c.bookies()[0].crash();
        c.bookies()[1].crash();
        let res = p.send(b"x");
        assert!(res.is_err());
        // One comes back: rollover succeeds and the stream continues.
        c.bookies()[0].restart();
        p.send(b"recovered").unwrap();
        let mut consumer = c.subscribe("t", "s", SubscriptionMode::Exclusive).unwrap();
        let msgs = consumer.drain().unwrap();
        assert_eq!(msgs.len(), 11);
    }

    #[test]
    fn trim_consumed_reclaims_segments() {
        let c = small_cluster(); // 8 entries/segment
        c.create_topic("t", 1).unwrap();
        let p = c.producer("t").unwrap();
        let mut consumer = c.subscribe("t", "s", SubscriptionMode::Exclusive).unwrap();
        for i in 0..30u64 {
            p.send(&i.to_le_bytes()).unwrap();
        }
        assert_eq!(consumer.drain().unwrap().len(), 30);
        let reclaimed = c.trim_consumed("t").unwrap();
        assert!(reclaimed >= 3, "reclaimed {reclaimed} segments");
        // Remaining retained entries are only the open segment's.
        assert!(c.retained_entries("t").unwrap() <= 8);
    }

    #[test]
    fn tiered_storage_reads_through_after_offload() {
        use taureau_core::latency::LatencyModel;
        let c = small_cluster(); // 8 entries per segment
        let blob = std::sync::Arc::new(taureau_baas::BlobStore::with_latency(
            WallClock::shared(),
            LatencyModel::zero(),
            LatencyModel::zero(),
        ));
        c.enable_tiering(blob.clone(), "cold");
        c.create_topic("t", 1).unwrap();
        let p = c.producer("t").unwrap();
        for i in 0..30u64 {
            p.send(&i.to_le_bytes()).unwrap();
        }
        // Offload the sealed segments; the open one stays hot.
        let offloaded = c.offload_sealed("t").unwrap();
        assert!(offloaded >= 3, "offloaded {offloaded}");
        let (_, writes) = blob.op_counts();
        assert_eq!(writes as usize, offloaded);
        // Bookies no longer hold the offloaded bytes…
        let hot: u64 = c.bookies().iter().map(|b| b.stored_bytes()).sum();
        assert!(hot < 30 * 20, "bookies still hold {hot} bytes");
        // …but a fresh consumer still reads the full stream, in order.
        let mut consumer = c.subscribe("t", "s", SubscriptionMode::Exclusive).unwrap();
        let msgs = consumer.drain().unwrap();
        assert_eq!(msgs.len(), 30);
        let payloads: Vec<u64> = msgs
            .iter()
            .map(|m| u64::from_le_bytes(m.payload[..].try_into().unwrap()))
            .collect();
        assert_eq!(payloads, (0..30).collect::<Vec<_>>());
        assert!(c.metrics().counter("tier_reads").get() > 0);
        // Trim after consumption reclaims cold segments too.
        let reclaimed = c.trim_consumed("t").unwrap();
        assert!(reclaimed >= 3);
    }

    #[test]
    fn offload_without_tier_is_noop() {
        let c = small_cluster();
        c.create_topic("t", 1).unwrap();
        let p = c.producer("t").unwrap();
        for i in 0..20u64 {
            p.send(&i.to_le_bytes()).unwrap();
        }
        assert_eq!(c.offload_sealed("t").unwrap(), 0);
    }

    #[test]
    fn tenant_backlog_quota_enforced_and_released_by_trim() {
        let c = small_cluster();
        c.create_topic("acme/orders", 1).unwrap();
        c.create_topic("acme/logs", 1).unwrap();
        c.create_topic("other/t", 1).unwrap();
        c.set_tenant_quota("acme", 10);
        let orders = c.producer("acme/orders").unwrap();
        let logs = c.producer("acme/logs").unwrap();
        let mut consumer = c
            .subscribe("acme/orders", "s", SubscriptionMode::Exclusive)
            .unwrap();
        for i in 0..6u64 {
            orders.send(&i.to_le_bytes()).unwrap();
        }
        for i in 0..4u64 {
            logs.send(&i.to_le_bytes()).unwrap();
        }
        // Quota full across the tenant's topics.
        assert!(matches!(
            orders.send(b"over"),
            Err(PulsarError::TenantQuotaExceeded { quota: 10, .. })
        ));
        // Another tenant is unaffected.
        let other = c.producer("other/t").unwrap();
        assert!(other.send(b"fine").is_ok());
        // Consuming + trimming releases quota.
        assert_eq!(consumer.drain().unwrap().len(), 6);
        // Roll the open segment by filling it, then trim: simplest is to
        // trim after the cursor passed the sealed segments. With 8
        // entries/segment and only 6 sent, the open segment cannot be
        // trimmed — so quota stays tight; verify the error persists…
        assert!(orders.send(b"still-over").is_err());
        // …until the other topic's backlog is consumed and trimmed.
        let mut log_reader = c
            .subscribe("acme/logs", "s", SubscriptionMode::Exclusive)
            .unwrap();
        assert_eq!(log_reader.drain().unwrap().len(), 4);
        assert_eq!(c.metrics().counter("quota_rejections").get(), 2);
    }

    #[test]
    fn unknown_topic_errors() {
        let c = small_cluster();
        assert!(matches!(
            c.producer("nope"),
            Err(PulsarError::TopicNotFound(_))
        ));
        assert!(matches!(
            c.subscribe("nope", "s", SubscriptionMode::Shared),
            Err(PulsarError::TopicNotFound(_))
        ));
        c.create_topic("t", 1).unwrap();
        assert!(matches!(
            c.create_topic("t", 1),
            Err(PulsarError::TopicExists(_))
        ));
    }
}
