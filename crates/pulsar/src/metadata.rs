//! Versioned metadata store — the ZooKeeper stand-in of Figure 1.
//!
//! Pulsar uses a ZooKeeper ensemble for "coordination and configuration
//! management": ledger metadata, topic ownership, subscription cursors.
//! This in-process equivalent provides the two primitives those uses need:
//! versioned reads and compare-and-swap writes (so concurrent brokers can't
//! clobber each other's updates), plus watch-free sequential node creation
//! for id allocation.

use std::collections::BTreeMap;

use parking_lot::Mutex;

use crate::error::{PulsarError, Result};

/// A value with its version (ZooKeeper zxid analogue).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Versioned {
    /// Stored bytes.
    pub data: Vec<u8>,
    /// Monotone version, starting at 0 on create.
    pub version: u64,
}

/// In-process versioned KV store with CAS semantics.
#[derive(Debug, Default)]
pub struct MetadataStore {
    state: Mutex<MetaState>,
}

#[derive(Debug, Default)]
struct MetaState {
    nodes: BTreeMap<String, Versioned>,
    next_seq: u64,
}

impl MetadataStore {
    /// Empty store.
    pub fn new() -> Self {
        Self::default()
    }

    /// Read a node.
    pub fn get(&self, key: &str) -> Option<Versioned> {
        self.state.lock().nodes.get(key).cloned()
    }

    /// Create a node; fails if it exists.
    pub fn create(&self, key: &str, data: Vec<u8>) -> Result<()> {
        let mut st = self.state.lock();
        if st.nodes.contains_key(key) {
            return Err(PulsarError::MetadataConflict(key.to_string()));
        }
        st.nodes
            .insert(key.to_string(), Versioned { data, version: 0 });
        Ok(())
    }

    /// Compare-and-swap: write succeeds only if the stored version matches
    /// `expected_version` (pass `None` to create-if-absent).
    pub fn cas(&self, key: &str, data: Vec<u8>, expected_version: Option<u64>) -> Result<u64> {
        let mut st = self.state.lock();
        match (st.nodes.get_mut(key), expected_version) {
            (None, None) => {
                st.nodes
                    .insert(key.to_string(), Versioned { data, version: 0 });
                Ok(0)
            }
            (Some(node), Some(v)) if node.version == v => {
                node.data = data;
                node.version += 1;
                Ok(node.version)
            }
            _ => Err(PulsarError::MetadataConflict(key.to_string())),
        }
    }

    /// Unconditional write (used where a single owner is already
    /// guaranteed, e.g. cursor updates by the owning subscription).
    pub fn put(&self, key: &str, data: Vec<u8>) -> u64 {
        let mut st = self.state.lock();
        match st.nodes.get_mut(key) {
            Some(node) => {
                node.data = data;
                node.version += 1;
                node.version
            }
            None => {
                st.nodes
                    .insert(key.to_string(), Versioned { data, version: 0 });
                0
            }
        }
    }

    /// Delete a node (idempotent).
    pub fn delete(&self, key: &str) {
        self.state.lock().nodes.remove(key);
    }

    /// Keys under a prefix (ZooKeeper getChildren analogue).
    pub fn list_prefix(&self, prefix: &str) -> Vec<String> {
        self.state
            .lock()
            .nodes
            .keys()
            .filter(|k| k.starts_with(prefix))
            .cloned()
            .collect()
    }

    /// Allocate the next value of a global sequence (for ledger ids).
    pub fn next_sequence(&self) -> u64 {
        let mut st = self.state.lock();
        let v = st.next_seq;
        st.next_seq += 1;
        v
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn create_then_get() {
        let m = MetadataStore::new();
        m.create("/topics/t", b"cfg".to_vec()).unwrap();
        let v = m.get("/topics/t").unwrap();
        assert_eq!(v.data, b"cfg");
        assert_eq!(v.version, 0);
        assert!(m.create("/topics/t", b"x".to_vec()).is_err());
    }

    #[test]
    fn cas_enforces_versions() {
        let m = MetadataStore::new();
        m.cas("/k", b"v0".to_vec(), None).unwrap();
        // Stale writer (expects version 1) fails.
        assert!(m.cas("/k", b"bad".to_vec(), Some(1)).is_err());
        let v1 = m.cas("/k", b"v1".to_vec(), Some(0)).unwrap();
        assert_eq!(v1, 1);
        assert_eq!(m.get("/k").unwrap().data, b"v1");
    }

    #[test]
    fn cas_create_if_absent_conflicts_when_present() {
        let m = MetadataStore::new();
        m.put("/k", b"x".to_vec());
        assert!(m.cas("/k", b"y".to_vec(), None).is_err());
    }

    #[test]
    fn put_bumps_version() {
        let m = MetadataStore::new();
        assert_eq!(m.put("/k", b"a".to_vec()), 0);
        assert_eq!(m.put("/k", b"b".to_vec()), 1);
    }

    #[test]
    fn list_prefix_and_delete() {
        let m = MetadataStore::new();
        m.put("/topics/a", vec![]);
        m.put("/topics/b", vec![]);
        m.put("/ledgers/1", vec![]);
        assert_eq!(m.list_prefix("/topics/").len(), 2);
        m.delete("/topics/a");
        assert_eq!(m.list_prefix("/topics/").len(), 1);
        m.delete("/topics/a"); // idempotent
    }

    #[test]
    fn sequence_is_monotone() {
        let m = MetadataStore::new();
        assert_eq!(m.next_sequence(), 0);
        assert_eq!(m.next_sequence(), 1);
        assert_eq!(m.next_sequence(), 2);
    }
}
