//! Versioned metadata store — the ZooKeeper stand-in of Figure 1.
//!
//! Pulsar uses a ZooKeeper ensemble for "coordination and configuration
//! management": ledger metadata, topic ownership, subscription cursors.
//! This in-process equivalent provides the two primitives those uses need:
//! versioned reads and compare-and-swap writes (so concurrent brokers can't
//! clobber each other's updates), plus watch-free sequential node creation
//! for id allocation.
//!
//! Nodes are sharded by key hash ([`ShardedMap`]), so cursor updates for
//! different subscriptions and ledger-metadata writes for different topics
//! never serialize on one store-wide lock; the id sequence is a plain
//! atomic. CAS semantics are unchanged — each key's shard lock makes the
//! compare and the swap one critical section.

use std::sync::atomic::{AtomicU64, Ordering};

use taureau_core::sync::ShardedMap;

use crate::error::{PulsarError, Result};

/// A value with its version (ZooKeeper zxid analogue).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Versioned {
    /// Stored bytes.
    pub data: Vec<u8>,
    /// Monotone version, starting at 0 on create.
    pub version: u64,
}

/// In-process versioned KV store with CAS semantics.
#[derive(Debug, Default)]
pub struct MetadataStore {
    nodes: ShardedMap<String, Versioned>,
    next_seq: AtomicU64,
}

impl MetadataStore {
    /// Empty store.
    pub fn new() -> Self {
        Self::default()
    }

    /// Read a node.
    pub fn get(&self, key: &str) -> Option<Versioned> {
        self.nodes.get_cloned(key)
    }

    /// Create a node; fails if it exists.
    pub fn create(&self, key: &str, data: Vec<u8>) -> Result<()> {
        self.nodes.with(key, |shard| {
            if shard.contains_key(key) {
                return Err(PulsarError::MetadataConflict(key.to_string()));
            }
            shard.insert(key.to_string(), Versioned { data, version: 0 });
            Ok(())
        })
    }

    /// Compare-and-swap: write succeeds only if the stored version matches
    /// `expected_version` (pass `None` to create-if-absent).
    pub fn cas(&self, key: &str, data: Vec<u8>, expected_version: Option<u64>) -> Result<u64> {
        self.nodes
            .with(key, |shard| match (shard.get_mut(key), expected_version) {
                (None, None) => {
                    shard.insert(key.to_string(), Versioned { data, version: 0 });
                    Ok(0)
                }
                (Some(node), Some(v)) if node.version == v => {
                    node.data = data;
                    node.version += 1;
                    Ok(node.version)
                }
                _ => Err(PulsarError::MetadataConflict(key.to_string())),
            })
    }

    /// Unconditional write (used where a single owner is already
    /// guaranteed, e.g. cursor updates by the owning subscription).
    pub fn put(&self, key: &str, data: Vec<u8>) -> u64 {
        self.nodes.with(key, |shard| match shard.get_mut(key) {
            Some(node) => {
                node.data = data;
                node.version += 1;
                node.version
            }
            None => {
                shard.insert(key.to_string(), Versioned { data, version: 0 });
                0
            }
        })
    }

    /// Delete a node (idempotent).
    pub fn delete(&self, key: &str) {
        self.nodes.remove(key);
    }

    /// Keys under a prefix (ZooKeeper getChildren analogue), sorted.
    pub fn list_prefix(&self, prefix: &str) -> Vec<String> {
        let mut out = Vec::new();
        self.nodes.for_each(|k, _| {
            if k.starts_with(prefix) {
                out.push(k.clone());
            }
        });
        out.sort();
        out
    }

    /// Allocate the next value of a global sequence (for ledger ids).
    pub fn next_sequence(&self) -> u64 {
        self.next_seq.fetch_add(1, Ordering::Relaxed)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn create_then_get() {
        let m = MetadataStore::new();
        m.create("/topics/t", b"cfg".to_vec()).unwrap();
        let v = m.get("/topics/t").unwrap();
        assert_eq!(v.data, b"cfg");
        assert_eq!(v.version, 0);
        assert!(m.create("/topics/t", b"x".to_vec()).is_err());
    }

    #[test]
    fn cas_enforces_versions() {
        let m = MetadataStore::new();
        m.cas("/k", b"v0".to_vec(), None).unwrap();
        // Stale writer (expects version 1) fails.
        assert!(m.cas("/k", b"bad".to_vec(), Some(1)).is_err());
        let v1 = m.cas("/k", b"v1".to_vec(), Some(0)).unwrap();
        assert_eq!(v1, 1);
        assert_eq!(m.get("/k").unwrap().data, b"v1");
    }

    #[test]
    fn cas_create_if_absent_conflicts_when_present() {
        let m = MetadataStore::new();
        m.put("/k", b"x".to_vec());
        assert!(m.cas("/k", b"y".to_vec(), None).is_err());
    }

    #[test]
    fn put_bumps_version() {
        let m = MetadataStore::new();
        assert_eq!(m.put("/k", b"a".to_vec()), 0);
        assert_eq!(m.put("/k", b"b".to_vec()), 1);
    }

    #[test]
    fn list_prefix_and_delete() {
        let m = MetadataStore::new();
        m.put("/topics/a", vec![]);
        m.put("/topics/b", vec![]);
        m.put("/ledgers/1", vec![]);
        assert_eq!(m.list_prefix("/topics/").len(), 2);
        m.delete("/topics/a");
        assert_eq!(m.list_prefix("/topics/").len(), 1);
        m.delete("/topics/a"); // idempotent
    }

    #[test]
    fn list_prefix_is_sorted() {
        let m = MetadataStore::new();
        for k in ["/t/c", "/t/a", "/t/b", "/u/z"] {
            m.put(k, vec![]);
        }
        assert_eq!(m.list_prefix("/t/"), vec!["/t/a", "/t/b", "/t/c"]);
    }

    #[test]
    fn sequence_is_monotone() {
        let m = MetadataStore::new();
        assert_eq!(m.next_sequence(), 0);
        assert_eq!(m.next_sequence(), 1);
        assert_eq!(m.next_sequence(), 2);
    }

    #[test]
    fn concurrent_cas_admits_exactly_one_writer_per_version() {
        let m = std::sync::Arc::new(MetadataStore::new());
        m.put("/contended", b"v0".to_vec());
        let mut wins = 0;
        std::thread::scope(|s| {
            let handles: Vec<_> = (0..8)
                .map(|_| {
                    let m = std::sync::Arc::clone(&m);
                    s.spawn(move || m.cas("/contended", b"mine".to_vec(), Some(0)).is_ok())
                })
                .collect();
            for h in handles {
                if h.join().unwrap() {
                    wins += 1;
                }
            }
        });
        assert_eq!(wins, 1, "exactly one CAS at version 0 may succeed");
        assert_eq!(m.get("/contended").unwrap().version, 1);
    }
}
