//! Pulsar Functions — serverless compute over topics (§4.3.1).
//!
//! "Pulsar functions allow users to deploy and manage processing of
//! serverless functions that consume messages from and publish messages to
//! Pulsar topics." A registered function subscribes to its input topics,
//! runs user code per message, and optionally publishes a result to its
//! output topic — the interface mirrors the paper's Figure 3 listing
//! (`process(String input, Context context)`).
//!
//! §4.3.1 also notes that "many data analytics algorithms are stateful in
//! nature" and that ephemeral-state systems like Jiffy are the enabler:
//! accordingly, each function's [`Context`] state is backed by a **Jiffy
//! KV object** under `/pulsar-functions/<name>/state` — Pulsar and Jiffy
//! "in tandem", exactly as §4 promises.

use std::collections::HashMap;

use bytes::Bytes;
use parking_lot::Mutex;

use taureau_jiffy::{Jiffy, KvHandle};

use crate::broker::{Consumer, Producer, PulsarCluster, SubscriptionMode};
use crate::error::{PulsarError, Result};
use crate::message::Message;

/// User function body: called once per input message; returning
/// `Some(bytes)` publishes them to the configured output topic.
pub type FnBody = Box<dyn FnMut(&Message, &mut Context<'_>) -> Option<Vec<u8>> + Send>;

/// Registration config for a function.
#[derive(Debug, Clone)]
pub struct FunctionConfig {
    /// Unique function name.
    pub name: String,
    /// Topics the function consumes (each via a shared subscription named
    /// `fn-<name>`).
    pub inputs: Vec<String>,
    /// Topic results are published to, if any.
    pub output: Option<String>,
}

/// Per-invocation context handed to the function body — the `Context`
/// parameter of the paper's Figure 3.
pub struct Context<'a> {
    function: &'a str,
    state: &'a KvHandle,
    producer: Option<&'a Producer>,
    cluster: &'a PulsarCluster,
    /// Messages the body chose to publish to explicit topics.
    extra_published: usize,
}

impl Context<'_> {
    /// Name of the running function.
    pub fn function_name(&self) -> &str {
        self.function
    }

    /// Read a state value (Jiffy-backed; survives across invocations and
    /// across function instances). The returned [`Bytes`] is a refcounted
    /// view with snapshot semantics — no copy.
    pub fn state_get(&self, key: &[u8]) -> Option<Bytes> {
        self.state.get(key).ok().flatten()
    }

    /// Write a state value.
    pub fn state_put(&self, key: &[u8], value: &[u8]) {
        // Jiffy auto-scales the backing object; errors here mean the pool
        // is exhausted, which the runtime surfaces as a panic in tests.
        self.state
            .put(key, value)
            .expect("function state write failed");
    }

    /// Atomically add `delta` to a counter stored in state; returns the new
    /// value. (Mirrors Pulsar's `context.incrCounter`.)
    pub fn increment(&self, key: &[u8], delta: i64) -> i64 {
        let cur = self
            .state_get(key)
            .and_then(|v| v[..].try_into().ok().map(i64::from_le_bytes))
            .unwrap_or(0);
        let next = cur + delta;
        self.state_put(key, &next.to_le_bytes());
        next
    }

    /// Publish to an arbitrary topic (beyond the configured output).
    pub fn publish_to(&mut self, topic: &str, payload: &[u8]) -> Result<()> {
        let p = self.cluster.producer(topic)?;
        p.send(payload)?;
        self.extra_published += 1;
        Ok(())
    }

    /// Whether this function has a configured output topic.
    pub fn has_output(&self) -> bool {
        self.producer.is_some()
    }
}

struct FunctionInstance {
    cfg: FunctionConfig,
    consumers: Vec<Consumer>,
    producer: Option<Producer>,
    state: KvHandle,
    body: FnBody,
    processed: u64,
}

/// The function runtime: registers functions and pumps messages through
/// them.
///
/// Pumping is explicit ([`FunctionRuntime::run_available`] /
/// [`FunctionRuntime::run_round`]) so tests and benches control scheduling
/// deterministically — the serverless platform crate layers demand-driven
/// execution on top.
pub struct FunctionRuntime {
    cluster: PulsarCluster,
    jiffy: Jiffy,
    functions: Mutex<HashMap<String, FunctionInstance>>,
}

impl FunctionRuntime {
    /// Runtime over a Pulsar cluster, with function state in `jiffy`.
    pub fn new(cluster: PulsarCluster, jiffy: Jiffy) -> Self {
        Self {
            cluster,
            jiffy,
            functions: Mutex::new(HashMap::new()),
        }
    }

    /// Register a function. Subscribes to its inputs and creates its
    /// Jiffy-backed state object.
    pub fn register(&self, cfg: FunctionConfig, body: FnBody) -> Result<()> {
        let mut fns = self.functions.lock();
        if fns.contains_key(&cfg.name) {
            return Err(PulsarError::FunctionExists(cfg.name.clone()));
        }
        let sub_name = format!("fn-{}", cfg.name);
        let mut consumers = Vec::with_capacity(cfg.inputs.len());
        for input in &cfg.inputs {
            consumers.push(
                self.cluster
                    .subscribe(input, &sub_name, SubscriptionMode::Shared)?,
            );
        }
        let producer = match &cfg.output {
            Some(t) => Some(self.cluster.producer(t)?),
            None => None,
        };
        let state_path = format!("/pulsar-functions/{}/state", cfg.name);
        let state = self
            .jiffy
            .create_kv(state_path.as_str(), 1)
            .or_else(|_| self.jiffy.open_kv(state_path.as_str()))
            .expect("function state object");
        fns.insert(
            cfg.name.clone(),
            FunctionInstance {
                cfg,
                consumers,
                producer,
                state,
                body,
                processed: 0,
            },
        );
        Ok(())
    }

    /// Deregister a function, dropping its subscriptions (its Jiffy state
    /// remains until its lease lapses, per the ephemeral-state model).
    pub fn deregister(&self, name: &str) -> Result<()> {
        self.functions
            .lock()
            .remove(name)
            .map(|_| ())
            .ok_or_else(|| PulsarError::FunctionNotFound(name.to_string()))
    }

    /// Total messages processed by a function.
    pub fn processed(&self, name: &str) -> Result<u64> {
        self.functions
            .lock()
            .get(name)
            .map(|f| f.processed)
            .ok_or_else(|| PulsarError::FunctionNotFound(name.to_string()))
    }

    /// Run one function until its inputs are drained; returns messages
    /// processed.
    pub fn run_available(&self, name: &str) -> Result<usize> {
        let mut fns = self.functions.lock();
        let inst = fns
            .get_mut(name)
            .ok_or_else(|| PulsarError::FunctionNotFound(name.to_string()))?;
        let mut n = 0;
        loop {
            let mut progressed = false;
            for ci in 0..inst.consumers.len() {
                if let Some(msg) = inst.consumers[ci].receive()? {
                    let mut ctx = Context {
                        function: &inst.cfg.name,
                        state: &inst.state,
                        producer: inst.producer.as_ref(),
                        cluster: &self.cluster,
                        extra_published: 0,
                    };
                    let out = (inst.body)(&msg, &mut ctx);
                    if let (Some(bytes), Some(prod)) = (out, &inst.producer) {
                        prod.send(&bytes)?;
                    }
                    inst.consumers[ci].ack(msg.id)?;
                    inst.processed += 1;
                    n += 1;
                    progressed = true;
                }
            }
            if !progressed {
                break;
            }
        }
        Ok(n)
    }

    /// Run every registered function once over its available input;
    /// returns the total processed. Call in a loop (`run_to_quiescence`)
    /// to flush multi-stage pipelines.
    pub fn run_round(&self) -> Result<usize> {
        let names: Vec<String> = self.functions.lock().keys().cloned().collect();
        let mut total = 0;
        for name in names {
            total += self.run_available(&name)?;
        }
        Ok(total)
    }

    /// Pump rounds until no function makes progress (a fix-point — the
    /// whole topology is drained).
    pub fn run_to_quiescence(&self) -> Result<usize> {
        let mut total = 0;
        loop {
            let n = self.run_round()?;
            if n == 0 {
                return Ok(total);
            }
            total += n;
        }
    }

    /// Access the Jiffy deployment backing function state.
    pub fn jiffy(&self) -> &Jiffy {
        &self.jiffy
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::broker::PulsarConfig;
    use taureau_core::clock::WallClock;
    use taureau_jiffy::JiffyConfig;

    fn setup() -> (PulsarCluster, FunctionRuntime) {
        let cluster = PulsarCluster::new(PulsarConfig::default(), WallClock::shared());
        let jiffy = Jiffy::new(JiffyConfig::default(), WallClock::shared());
        let rt = FunctionRuntime::new(cluster.clone(), jiffy);
        (cluster, rt)
    }

    #[test]
    fn identity_function_forwards_messages() {
        let (cluster, rt) = setup();
        cluster.create_topic("in", 1).unwrap();
        cluster.create_topic("out", 1).unwrap();
        rt.register(
            FunctionConfig {
                name: "identity".into(),
                inputs: vec!["in".into()],
                output: Some("out".into()),
            },
            Box::new(|msg, _ctx| Some(msg.payload.to_vec())),
        )
        .unwrap();
        let p = cluster.producer("in").unwrap();
        for i in 0..10u64 {
            p.send(&i.to_le_bytes()).unwrap();
        }
        assert_eq!(rt.run_available("identity").unwrap(), 10);
        let mut out = cluster
            .subscribe("out", "check", SubscriptionMode::Exclusive)
            .unwrap();
        assert_eq!(out.drain().unwrap().len(), 10);
        assert_eq!(rt.processed("identity").unwrap(), 10);
    }

    #[test]
    fn filter_function_drops_messages() {
        let (cluster, rt) = setup();
        cluster.create_topic("in", 1).unwrap();
        cluster.create_topic("out", 1).unwrap();
        rt.register(
            FunctionConfig {
                name: "evens".into(),
                inputs: vec!["in".into()],
                output: Some("out".into()),
            },
            Box::new(|msg, _| {
                let v = u64::from_le_bytes(msg.payload[..].try_into().unwrap());
                (v % 2 == 0).then(|| msg.payload.to_vec())
            }),
        )
        .unwrap();
        let p = cluster.producer("in").unwrap();
        for i in 0..10u64 {
            p.send(&i.to_le_bytes()).unwrap();
        }
        rt.run_available("evens").unwrap();
        let mut out = cluster
            .subscribe("out", "check", SubscriptionMode::Exclusive)
            .unwrap();
        assert_eq!(out.drain().unwrap().len(), 5);
    }

    #[test]
    fn stateful_counter_uses_jiffy_state() {
        let (cluster, rt) = setup();
        cluster.create_topic("words", 1).unwrap();
        rt.register(
            FunctionConfig {
                name: "wordcount".into(),
                inputs: vec!["words".into()],
                output: None,
            },
            Box::new(|msg, ctx| {
                ctx.increment(&msg.payload, 1);
                None
            }),
        )
        .unwrap();
        let p = cluster.producer("words").unwrap();
        for w in ["a", "b", "a", "a", "c", "b"] {
            p.send(w.as_bytes()).unwrap();
        }
        rt.run_available("wordcount").unwrap();
        // State survives in Jiffy, visible from outside the function.
        let kv = rt
            .jiffy()
            .open_kv("/pulsar-functions/wordcount/state")
            .unwrap();
        let count = |k: &[u8]| {
            kv.get(k)
                .unwrap()
                .map(|v| i64::from_le_bytes(v[..].try_into().unwrap()))
                .unwrap_or(0)
        };
        assert_eq!(count(b"a"), 3);
        assert_eq!(count(b"b"), 2);
        assert_eq!(count(b"c"), 1);
    }

    #[test]
    fn two_stage_pipeline_reaches_quiescence() {
        let (cluster, rt) = setup();
        cluster.create_topic("raw", 1).unwrap();
        cluster.create_topic("parsed", 1).unwrap();
        cluster.create_topic("final", 1).unwrap();
        rt.register(
            FunctionConfig {
                name: "stage1".into(),
                inputs: vec!["raw".into()],
                output: Some("parsed".into()),
            },
            Box::new(|msg, _| Some(msg.payload.iter().map(|b| b + 1).collect())),
        )
        .unwrap();
        rt.register(
            FunctionConfig {
                name: "stage2".into(),
                inputs: vec!["parsed".into()],
                output: Some("final".into()),
            },
            Box::new(|msg, _| Some(msg.payload.iter().map(|b| b * 2).collect())),
        )
        .unwrap();
        let p = cluster.producer("raw").unwrap();
        p.send(&[1, 2, 3]).unwrap();
        let total = rt.run_to_quiescence().unwrap();
        assert_eq!(total, 2, "each stage processed the message once");
        let mut out = cluster
            .subscribe("final", "check", SubscriptionMode::Exclusive)
            .unwrap();
        let msgs = out.drain().unwrap();
        assert_eq!(&msgs[0].payload[..], &[4, 6, 8]);
    }

    #[test]
    fn countmin_as_pulsar_function_figure3() {
        // The paper's Figure 3, in Rust: a Count-Min sketch maintained
        // inside a Pulsar function, fed from a topic.
        use taureau_sketches::CountMinSketch;
        let (cluster, rt) = setup();
        cluster.create_topic("events", 1).unwrap();
        cluster.create_topic("counts", 1).unwrap();
        // `CountMinSketch sketch = new CountMinSketch(20, 20, 128);`
        let mut sketch = CountMinSketch::new(8, 128, 20);
        rt.register(
            FunctionConfig {
                name: "count-min".into(),
                inputs: vec!["events".into()],
                output: Some("counts".into()),
            },
            Box::new(move |msg, _ctx| {
                // `sketch.add(input, 1);`
                sketch.add(&msg.payload, 1);
                // `long count = sketch.estimateCount(input);`
                let count = sketch.estimate(&msg.payload);
                // "React to the updated count" — publish it downstream.
                Some(count.to_le_bytes().to_vec())
            }),
        )
        .unwrap();
        let p = cluster.producer("events").unwrap();
        for _ in 0..7 {
            p.send(b"popular").unwrap();
        }
        p.send(b"rare").unwrap();
        rt.run_available("count-min").unwrap();
        let mut out = cluster
            .subscribe("counts", "check", SubscriptionMode::Exclusive)
            .unwrap();
        let counts: Vec<u64> = out
            .drain()
            .unwrap()
            .iter()
            .map(|m| u64::from_le_bytes(m.payload[..].try_into().unwrap()))
            .collect();
        // Seven estimates for "popular" rise 1..=7; "rare" estimates 1.
        assert_eq!(counts, vec![1, 2, 3, 4, 5, 6, 7, 1]);
    }

    #[test]
    fn duplicate_registration_rejected() {
        let (cluster, rt) = setup();
        cluster.create_topic("t", 1).unwrap();
        let cfg = FunctionConfig {
            name: "f".into(),
            inputs: vec!["t".into()],
            output: None,
        };
        rt.register(cfg.clone(), Box::new(|_, _| None)).unwrap();
        assert!(matches!(
            rt.register(cfg, Box::new(|_, _| None)),
            Err(PulsarError::FunctionExists(_))
        ));
        rt.deregister("f").unwrap();
        assert!(matches!(
            rt.deregister("f"),
            Err(PulsarError::FunctionNotFound(_))
        ));
    }

    #[test]
    fn publish_to_arbitrary_topic_from_context() {
        let (cluster, rt) = setup();
        cluster.create_topic("in", 1).unwrap();
        cluster.create_topic("alerts", 1).unwrap();
        rt.register(
            FunctionConfig {
                name: "alerter".into(),
                inputs: vec!["in".into()],
                output: None,
            },
            Box::new(|msg, ctx| {
                if msg.payload.len() > 3 {
                    ctx.publish_to("alerts", b"big message!").unwrap();
                }
                None
            }),
        )
        .unwrap();
        let p = cluster.producer("in").unwrap();
        p.send(b"ok").unwrap();
        p.send(b"way too big").unwrap();
        rt.run_available("alerter").unwrap();
        let mut alerts = cluster
            .subscribe("alerts", "check", SubscriptionMode::Exclusive)
            .unwrap();
        assert_eq!(alerts.drain().unwrap().len(), 1);
    }
}
