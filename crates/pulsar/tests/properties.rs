//! Property tests for the messaging layer: ledgers never lose or reorder
//! entries under arbitrary batching, and a subscription delivers exactly
//! the published sequence regardless of segment size or ack pattern.

use std::sync::Arc;

use bytes::Bytes;
use proptest::collection::vec;
use proptest::prelude::*;

use taureau_core::clock::WallClock;
use taureau_pulsar::bookie::Bookie;
use taureau_pulsar::broker::{PulsarCluster, PulsarConfig, SubscriptionMode};
use taureau_pulsar::ledger::{BookKeeper, LedgerConfig};
use taureau_pulsar::metadata::MetadataStore;

fn bookkeeper(n: usize) -> BookKeeper {
    let bookies: Arc<Vec<Arc<Bookie>>> =
        Arc::new((0..n).map(|i| Arc::new(Bookie::new(i))).collect());
    BookKeeper::new(bookies, Arc::new(MetadataStore::new()))
}

proptest! {
    /// Whatever is appended to a ledger reads back identically, entry by
    /// entry, for any replication parameters and entry contents.
    #[test]
    fn ledger_append_read_roundtrip(
        entries in vec(vec(any::<u8>(), 0..64), 1..60),
        ensemble in 1usize..5,
        wq_off in 0usize..4,
        aq_off in 0usize..4,
    ) {
        let write_quorum = (1 + wq_off % ensemble).min(ensemble);
        let ack_quorum = (1 + aq_off % write_quorum).min(write_quorum);
        let bk = bookkeeper(5);
        let cfg = LedgerConfig { ensemble, write_quorum, ack_quorum };
        let mut w = bk.create_ledger(cfg).unwrap();
        for e in &entries {
            w.append(Bytes::from(e.clone())).unwrap();
        }
        w.close().unwrap();
        for (i, e) in entries.iter().enumerate() {
            prop_assert_eq!(&bk.read_entry(w.id(), i as u64).unwrap()[..], &e[..]);
        }
        prop_assert_eq!(bk.last_entry(w.id()).unwrap(), Some(entries.len() as u64 - 1));
    }

    /// A single-partition topic delivers exactly the published payloads in
    /// order, for any segment-rollover size.
    #[test]
    fn topic_delivery_is_exact_and_ordered(
        payloads in vec(vec(any::<u8>(), 0..32), 1..80),
        max_per_ledger in 1u64..20,
    ) {
        let cfg = PulsarConfig {
            bookies: 3,
            ledger: LedgerConfig::default(),
            max_entries_per_ledger: max_per_ledger,
        };
        let c = PulsarCluster::new(cfg, WallClock::shared());
        c.create_topic("t", 1).unwrap();
        let p = c.producer("t").unwrap();
        for payload in &payloads {
            p.send(payload).unwrap();
        }
        let mut consumer = c.subscribe("t", "s", SubscriptionMode::Exclusive).unwrap();
        let got: Vec<Vec<u8>> = consumer
            .drain()
            .unwrap()
            .into_iter()
            .map(|m| m.payload.to_vec())
            .collect();
        prop_assert_eq!(got, payloads);
    }

    /// Acking an arbitrary subset and redelivering yields exactly the
    /// unacked remainder (no loss, no duplicates).
    #[test]
    fn redelivery_covers_exactly_the_unacked(
        n in 1usize..40,
        ack_mask in vec(any::<bool>(), 40),
    ) {
        let c = PulsarCluster::new(
            PulsarConfig { max_entries_per_ledger: 7, ..Default::default() },
            WallClock::shared(),
        );
        c.create_topic("t", 1).unwrap();
        let p = c.producer("t").unwrap();
        for i in 0..n as u64 {
            p.send(&i.to_le_bytes()).unwrap();
        }
        let mut consumer = c.subscribe("t", "s", SubscriptionMode::Exclusive).unwrap();
        let mut unacked = Vec::new();
        let mut idx = 0;
        while let Some(m) = consumer.receive().unwrap() {
            if ack_mask[idx % ack_mask.len()] {
                consumer.ack(m.id).unwrap();
            } else {
                unacked.push(m.payload.to_vec());
            }
            idx += 1;
        }
        consumer.redeliver_unacked().unwrap();
        let mut redelivered = Vec::new();
        while let Some(m) = consumer.receive().unwrap() {
            consumer.ack(m.id).unwrap();
            redelivered.push(m.payload.to_vec());
        }
        prop_assert_eq!(redelivered, unacked);
    }

    /// Batched publish/dispatch is observationally equivalent to unbatched:
    /// the same payload sequence split into arbitrary batch boundaries, read
    /// back with arbitrary `receive_batch` chunk sizes, yields the identical
    /// per-partition payload sequence, and acking by the returned
    /// (batch-indexed) `MessageId`s fully advances the cursor.
    #[test]
    fn batched_publish_dispatch_equals_unbatched(
        payloads in vec(vec(any::<u8>(), 0..24), 1..60),
        cuts in vec(1usize..8, 1..20),
        chunk in 1usize..9,
        max_per_ledger in 1u64..10,
    ) {
        let make = || {
            let cfg = PulsarConfig {
                bookies: 3,
                ledger: LedgerConfig::default(),
                max_entries_per_ledger: max_per_ledger,
            };
            let c = PulsarCluster::new(cfg, WallClock::shared());
            c.create_topic("t", 1).unwrap();
            c
        };
        // Reference: unbatched sends, one-at-a-time receive.
        let reference = make();
        let p = reference.producer("t").unwrap();
        for payload in &payloads {
            p.send(payload).unwrap();
        }
        let mut consumer = reference.subscribe("t", "s", SubscriptionMode::Exclusive).unwrap();
        let want: Vec<Vec<u8>> = consumer
            .drain()
            .unwrap()
            .into_iter()
            .map(|m| m.payload.to_vec())
            .collect();
        prop_assert_eq!(&want, &payloads);
        // Batched: same payloads split at arbitrary boundaries.
        let batched = make();
        let p = batched.producer("t").unwrap();
        let mut rest = &payloads[..];
        let mut cut = cuts.iter().cycle();
        let mut all_ids = Vec::new();
        while !rest.is_empty() {
            let take = (*cut.next().unwrap()).min(rest.len());
            let (head, tail) = rest.split_at(take);
            all_ids.extend(p.send_batch(head).unwrap());
            rest = tail;
        }
        prop_assert_eq!(all_ids.len(), payloads.len());
        let mut consumer = batched.subscribe("t", "s", SubscriptionMode::Exclusive).unwrap();
        let mut got = Vec::new();
        let mut got_ids = Vec::new();
        loop {
            let ms = consumer.receive_batch(chunk).unwrap();
            if ms.is_empty() {
                break;
            }
            for m in ms {
                consumer.ack(m.id).unwrap();
                got_ids.push(m.id);
                got.push(m.payload.to_vec());
            }
        }
        prop_assert_eq!(&got, &want);
        prop_assert_eq!(got_ids, all_ids);
        // Every message was acked by its batch-indexed id: nothing left.
        prop_assert_eq!(consumer.redeliver_unacked().unwrap(), 0);
        prop_assert!(consumer.receive().unwrap().is_none());
    }

    /// Broker restart at any point preserves exactly the unconsumed suffix.
    #[test]
    fn restart_preserves_unconsumed_suffix(
        n in 1usize..50,
        consume in 0usize..50,
    ) {
        let consume = consume.min(n);
        let c = PulsarCluster::new(
            PulsarConfig { max_entries_per_ledger: 5, ..Default::default() },
            WallClock::shared(),
        );
        c.create_topic("t", 1).unwrap();
        let p = c.producer("t").unwrap();
        for i in 0..n as u64 {
            p.send(&i.to_le_bytes()).unwrap();
        }
        let mut consumer = c.subscribe("t", "s", SubscriptionMode::Exclusive).unwrap();
        for _ in 0..consume {
            let m = consumer.receive().unwrap().unwrap();
            consumer.ack(m.id).unwrap();
        }
        drop(consumer);
        c.restart_broker();
        let mut fresh = c.subscribe("t", "s", SubscriptionMode::Exclusive).unwrap();
        let rest: Vec<u64> = fresh
            .drain()
            .unwrap()
            .iter()
            .map(|m| u64::from_le_bytes(m.payload[..].try_into().unwrap()))
            .collect();
        prop_assert_eq!(rest, (consume as u64..n as u64).collect::<Vec<_>>());
    }
}
