//! # taureau-orchestration
//!
//! FaaS orchestration, per §4.2 of *Le Taureau*: "orchestration frameworks
//! allow users to compose multiple functions to enable more complex
//! application semantics" (AWS Step Functions, IBM Composer, Azure Durable
//! Functions). The crate implements the three properties Lopez et al.
//! require of such frameworks, and the tests and experiment E7 verify
//! them:
//!
//! 1. **Black box**: [`Composition::Task`] invokes a function by name —
//!    composing requires no knowledge or modification of the function's
//!    inner workings.
//! 2. **Closure**: "the composition of several functions defined in the
//!    orchestration should also be a function" —
//!    [`Orchestrator::register_composition`] registers a composition under
//!    a name, and [`Composition::Named`] invokes it anywhere a basic
//!    function could appear, nesting arbitrarily.
//! 3. **No double billing**: "a user should only be charged for the basic
//!    functions, not the composition as well" — the orchestrator runs
//!    client-side against the platform, adds no billed invocations of its
//!    own, and every [`ExecutionReport`] carries the audit: total billed
//!    cost equals the sum over basic function executions.

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

pub mod frame;
pub mod statemachine;

use std::collections::HashMap;
use std::sync::Arc;
use std::time::Duration;

use bytes::Bytes;
use parking_lot::RwLock;

use taureau_core::cost::Dollars;
use taureau_core::metrics::MetricsRegistry;
use taureau_faas::{FaasError, FaasPlatform};

/// A predicate over input bytes, used by [`Composition::Choice`].
pub type Predicate = Arc<dyn Fn(&[u8]) -> bool + Send + Sync>;

/// A composition of serverless functions.
///
/// Functions are referenced by name (black-box property); compositions can
/// reference other registered compositions by name too (closure property).
#[derive(Clone)]
pub enum Composition {
    /// Invoke one basic platform function.
    Task(String),
    /// Invoke a named, previously-registered composition.
    Named(String),
    /// Run stages left to right, piping each output into the next input.
    Sequence(Vec<Composition>),
    /// Run branches on the same input; outputs are framed into one payload
    /// (see [`frame`]).
    Parallel(Vec<Composition>),
    /// Run `then` if the predicate holds on the input, else `otherwise`.
    Choice {
        /// Branch condition evaluated on the input bytes.
        predicate: Predicate,
        /// Taken when the predicate is true.
        then: Box<Composition>,
        /// Taken when the predicate is false.
        otherwise: Box<Composition>,
    },
    /// Treat the input as a framed list and apply the body to each element,
    /// producing a framed list of outputs (fan-out / fan-in).
    Map(Box<Composition>),
    /// Re-run the inner composition on failure, up to `attempts` total.
    Retry {
        /// The composition to guard.
        inner: Box<Composition>,
        /// Total attempts (≥ 1).
        attempts: u32,
    },
}

impl Composition {
    /// Convenience: a sequence of named tasks.
    pub fn pipeline<I, S>(names: I) -> Self
    where
        I: IntoIterator<Item = S>,
        S: Into<String>,
    {
        Composition::Sequence(
            names
                .into_iter()
                .map(|n| Composition::Task(n.into()))
                .collect(),
        )
    }

    /// Convenience: a choice on a plain closure.
    pub fn choice(
        predicate: impl Fn(&[u8]) -> bool + Send + Sync + 'static,
        then: Composition,
        otherwise: Composition,
    ) -> Self {
        Composition::Choice {
            predicate: Arc::new(predicate),
            then: Box::new(then),
            otherwise: Box::new(otherwise),
        }
    }
}

/// One billed basic-function execution within a composition run.
#[derive(Debug, Clone)]
pub struct InvocationRecord {
    /// Function name.
    pub function: String,
    /// Dollars billed for this execution.
    pub cost: Dollars,
    /// Measured execution duration.
    pub duration: Duration,
    /// Attempts used (retries).
    pub attempts: u32,
}

/// The result of running a composition.
#[derive(Debug, Clone)]
pub struct ExecutionReport {
    /// Final output bytes (refcounted: the last stage's output is shared,
    /// not copied, into the report).
    pub output: Bytes,
    /// Every basic function execution, in completion order.
    pub invocations: Vec<InvocationRecord>,
}

impl ExecutionReport {
    /// Total dollars billed — by construction, the sum over basic
    /// functions only (the no-double-billing audit).
    pub fn total_cost(&self) -> Dollars {
        self.invocations.iter().map(|r| r.cost).sum()
    }

    /// Number of basic function executions.
    pub fn invocation_count(&self) -> usize {
        self.invocations.len()
    }
}

/// Executes compositions against a FaaS platform.
#[derive(Clone)]
pub struct Orchestrator {
    platform: FaasPlatform,
    named: Arc<RwLock<HashMap<String, Composition>>>,
    metrics: Arc<MetricsRegistry>,
}

impl Orchestrator {
    /// Orchestrator over a platform.
    pub fn new(platform: FaasPlatform) -> Self {
        Self {
            platform,
            named: Arc::new(RwLock::new(HashMap::new())),
            metrics: Arc::new(MetricsRegistry::new()),
        }
    }

    /// Metrics registry (compositions run, tasks invoked, retries, task
    /// execution times).
    pub fn metrics(&self) -> &MetricsRegistry {
        &self.metrics
    }

    /// Register a composition under a name (the closure property: it can
    /// now be used wherever a function can).
    pub fn register_composition(&self, name: &str, comp: Composition) {
        self.named.write().insert(name.to_string(), comp);
    }

    /// Run a composition on an input.
    pub fn run(&self, comp: &Composition, input: &[u8]) -> Result<ExecutionReport, FaasError> {
        self.metrics.counter("compositions_run").inc();
        let mut report = ExecutionReport {
            output: Bytes::new(),
            invocations: Vec::new(),
        };
        let output = self.eval(comp, Bytes::copy_from_slice(input), &mut report)?;
        report.output = output;
        self.metrics
            .histogram("composition_billed_us")
            .record_duration(report.invocations.iter().map(|r| r.duration).sum());
        Ok(report)
    }

    fn eval(
        &self,
        comp: &Composition,
        input: Bytes,
        report: &mut ExecutionReport,
    ) -> Result<Bytes, FaasError> {
        match comp {
            Composition::Task(name) => {
                self.metrics.counter("tasks_invoked").inc();
                let r = match self.platform.invoke(name, input) {
                    Ok(r) => r,
                    Err(e) => {
                        self.metrics.counter("task_failures").inc();
                        return Err(e);
                    }
                };
                self.metrics
                    .histogram("task_exec_us")
                    .record_duration(r.exec_duration);
                report.invocations.push(InvocationRecord {
                    function: name.clone(),
                    cost: r.cost,
                    duration: r.exec_duration,
                    attempts: r.attempts,
                });
                Ok(r.output)
            }
            Composition::Named(name) => {
                let comp = self
                    .named
                    .read()
                    .get(name)
                    .cloned()
                    .ok_or_else(|| FaasError::FunctionNotFound(name.clone()))?;
                self.eval(&comp, input, report)
            }
            Composition::Sequence(stages) => {
                let mut cur = input;
                for stage in stages {
                    cur = self.eval(stage, cur, report)?;
                }
                Ok(cur)
            }
            Composition::Parallel(branches) => {
                let mut outputs = Vec::with_capacity(branches.len());
                for branch in branches {
                    outputs.push(self.eval(branch, input.clone(), report)?);
                }
                Ok(Bytes::from(frame::pack(&outputs)))
            }
            Composition::Choice {
                predicate,
                then,
                otherwise,
            } => {
                if predicate(&input) {
                    self.eval(then, input, report)
                } else {
                    self.eval(otherwise, input, report)
                }
            }
            Composition::Map(body) => {
                let items =
                    frame::unpack_bytes(&input).ok_or_else(|| FaasError::ExecutionFailed {
                        function: "<map>".to_string(),
                        reason: "map input is not a framed list".to_string(),
                    })?;
                let mut outputs = Vec::with_capacity(items.len());
                for item in items {
                    outputs.push(self.eval(body, item, report)?);
                }
                Ok(Bytes::from(frame::pack(&outputs)))
            }
            Composition::Retry { inner, attempts } => {
                assert!(*attempts >= 1);
                let mut last = None;
                for _ in 0..*attempts {
                    match self.eval(inner, input.clone(), report) {
                        Ok(out) => return Ok(out),
                        Err(
                            e @ (FaasError::ExecutionFailed { .. } | FaasError::Timeout { .. }),
                        ) => {
                            self.metrics.counter("retries").inc();
                            last = Some(e);
                        }
                        Err(e) => return Err(e),
                    }
                }
                Err(last.expect("attempts >= 1"))
            }
        }
    }

    /// The underlying platform (for billing audits in tests/benches).
    pub fn platform(&self) -> &FaasPlatform {
        &self.platform
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use taureau_core::clock::VirtualClock;
    use taureau_faas::{FunctionSpec, PlatformConfig};

    fn setup() -> (Orchestrator, FaasPlatform) {
        let clock = VirtualClock::shared();
        let p = FaasPlatform::new(PlatformConfig::deterministic(), clock);
        for (name, op) in [("inc", 1u8), ("double", 0)] {
            p.register(FunctionSpec::new(name, "tenant", move |ctx| {
                let v = ctx.payload.first().copied().unwrap_or(0);
                Ok(vec![if op == 1 { v + 1 } else { v * 2 }])
            }))
            .unwrap();
        }
        (Orchestrator::new(p.clone()), p)
    }

    #[test]
    fn sequence_pipes_outputs() {
        let (o, _) = setup();
        // (3 + 1) * 2 = 8
        let comp = Composition::pipeline(["inc", "double"]);
        let r = o.run(&comp, &[3]).unwrap();
        assert_eq!(r.output, vec![8]);
        assert_eq!(r.invocation_count(), 2);
    }

    #[test]
    fn parallel_frames_outputs() {
        let (o, _) = setup();
        let comp = Composition::Parallel(vec![
            Composition::Task("inc".into()),
            Composition::Task("double".into()),
        ]);
        let r = o.run(&comp, &[5]).unwrap();
        let outs = frame::unpack(&r.output).unwrap();
        assert_eq!(outs, vec![vec![6], vec![10]]);
    }

    #[test]
    fn choice_branches_on_predicate() {
        let (o, _) = setup();
        let comp = Composition::choice(
            |input| input[0] > 10,
            Composition::Task("double".into()),
            Composition::Task("inc".into()),
        );
        assert_eq!(o.run(&comp, &[20]).unwrap().output, vec![40]);
        assert_eq!(o.run(&comp, &[2]).unwrap().output, vec![3]);
    }

    #[test]
    fn map_fans_out_over_framed_list() {
        let (o, _) = setup();
        let comp = Composition::Map(Box::new(Composition::Task("inc".into())));
        let input = frame::pack(&[vec![1], vec![2], vec![3]]);
        let r = o.run(&comp, &input).unwrap();
        assert_eq!(
            frame::unpack(&r.output).unwrap(),
            vec![vec![2], vec![3], vec![4]]
        );
        assert_eq!(r.invocation_count(), 3);
    }

    #[test]
    fn map_rejects_unframed_input() {
        let (o, _) = setup();
        let comp = Composition::Map(Box::new(Composition::Task("inc".into())));
        assert!(o.run(&comp, b"not framed").is_err());
    }

    #[test]
    fn closure_property_named_compositions_nest() {
        let (o, _) = setup();
        // inc_twice is a composition…
        o.register_composition("inc_twice", Composition::pipeline(["inc", "inc"]));
        // …used as a function inside another composition.
        let comp = Composition::Sequence(vec![
            Composition::Named("inc_twice".into()),
            Composition::Task("double".into()),
            Composition::Named("inc_twice".into()),
        ]);
        // ((1+2)*2)+2 = 8
        let r = o.run(&comp, &[1]).unwrap();
        assert_eq!(r.output, vec![8]);
        assert_eq!(r.invocation_count(), 5);
    }

    #[test]
    fn no_double_billing_audit() {
        let (o, p) = setup();
        o.register_composition("nested", Composition::pipeline(["inc", "double"]));
        let comp = Composition::Parallel(vec![
            Composition::Named("nested".into()),
            Composition::Task("inc".into()),
        ]);
        let before = p.billing().total("tenant");
        let r = o.run(&comp, &[1]).unwrap();
        let after = p.billing().total("tenant");
        // Platform charged exactly the sum of basic function costs: the
        // composition added nothing.
        let billed_delta = after - before;
        assert!((billed_delta - r.total_cost()).abs() < 1e-15);
        assert_eq!(r.invocation_count(), 3);
    }

    #[test]
    fn retry_recovers_transient_failures() {
        let clock = VirtualClock::shared();
        let p = FaasPlatform::new(PlatformConfig::deterministic(), clock);
        use std::sync::atomic::{AtomicU32, Ordering};
        let remaining = Arc::new(AtomicU32::new(2));
        let rem = remaining.clone();
        p.register(FunctionSpec::new("flaky", "t", move |_| {
            if rem
                .fetch_update(Ordering::SeqCst, Ordering::SeqCst, |n| n.checked_sub(1))
                .is_ok()
            {
                Err("transient".into())
            } else {
                Ok(b"ok".to_vec())
            }
        }))
        .unwrap();
        let o = Orchestrator::new(p);
        let comp = Composition::Retry {
            inner: Box::new(Composition::Task("flaky".into())),
            attempts: 5,
        };
        let r = o.run(&comp, &[]).unwrap();
        assert_eq!(r.output, b"ok");
        // All three executions (two failed, one ok) are recorded… failed
        // attempts do not produce records (they raised), so only successes:
        assert_eq!(r.invocation_count(), 1);
    }

    #[test]
    fn retry_exhaustion_propagates() {
        let clock = VirtualClock::shared();
        let p = FaasPlatform::new(PlatformConfig::deterministic(), clock);
        p.register(FunctionSpec::new("dead", "t", |_| Err("no".into())))
            .unwrap();
        let o = Orchestrator::new(p);
        let comp = Composition::Retry {
            inner: Box::new(Composition::Task("dead".into())),
            attempts: 3,
        };
        assert!(matches!(
            o.run(&comp, &[]),
            Err(FaasError::ExecutionFailed { .. })
        ));
    }

    #[test]
    fn unknown_names_error() {
        let (o, _) = setup();
        assert!(matches!(
            o.run(&Composition::Task("ghost".into()), &[]),
            Err(FaasError::FunctionNotFound(_))
        ));
        assert!(matches!(
            o.run(&Composition::Named("ghost".into()), &[]),
            Err(FaasError::FunctionNotFound(_))
        ));
    }
}
