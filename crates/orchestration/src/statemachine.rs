//! State-machine orchestration — Hong et al.'s serverless design pattern 5
//! (§3.2 of the paper) and the programming model of AWS Step Functions
//! (§4.2).
//!
//! A [`StateMachine`] is a set of named states; each state invokes one
//! black-box function and routes its *output* through a transition rule to
//! the next state (or terminates). Unlike [`crate::Composition`] — which is
//! a static dataflow — a state machine branches on runtime values and may
//! loop, with a transition budget standing in for Step Functions'
//! execution-history limit.

use std::collections::HashMap;
use std::sync::Arc;

use bytes::Bytes;
use taureau_faas::{FaasError, FaasPlatform};

use crate::InvocationRecord;

/// A branch predicate over a state's output bytes.
pub type OutputPredicate = Arc<dyn Fn(&[u8]) -> bool + Send + Sync>;

/// Routes a state's output to the next state.
pub enum Transition {
    /// Always go to the named state.
    Always(String),
    /// First matching predicate wins; falls back to the `otherwise` state.
    Branch {
        /// `(predicate on output, next state)` pairs, tried in order.
        arms: Vec<(OutputPredicate, String)>,
        /// State when no arm matches.
        otherwise: String,
    },
    /// Terminate successfully; the state's output is the machine's output.
    End,
}

impl Transition {
    /// Convenience: a single-predicate branch.
    pub fn branch(
        predicate: impl Fn(&[u8]) -> bool + Send + Sync + 'static,
        then: impl Into<String>,
        otherwise: impl Into<String>,
    ) -> Self {
        Transition::Branch {
            arms: vec![(Arc::new(predicate), then.into())],
            otherwise: otherwise.into(),
        }
    }
}

/// One state: invoke `function`, then follow `next`.
pub struct State {
    /// Function to invoke with the current payload.
    pub function: String,
    /// Where the output goes.
    pub next: Transition,
}

/// Errors from state-machine execution. Every variant names the state the
/// machine was in when it failed, so a report pinpoints the failing state
/// rather than just the last one visited.
#[derive(Debug)]
pub enum StateMachineError {
    /// A named state does not exist.
    UnknownState {
        /// The missing state.
        state: String,
        /// The state whose transition routed here (`None` when the start
        /// state itself is missing).
        from: Option<String>,
    },
    /// The transition budget was exhausted (runaway loop guard).
    TransitionLimit {
        /// The configured budget.
        limit: u32,
        /// The state the machine was about to enter when the budget ran
        /// out — the head of the runaway loop, not merely the last state
        /// that happened to run.
        at_state: String,
    },
    /// The underlying function invocation failed.
    Invocation {
        /// The state whose invocation failed.
        state: String,
        /// The function that state invokes.
        function: String,
        /// The platform error.
        source: FaasError,
    },
}

impl std::fmt::Display for StateMachineError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            StateMachineError::UnknownState { state, from } => match from {
                Some(from) => write!(f, "unknown state: {state} (routed from {from})"),
                None => write!(f, "unknown start state: {state}"),
            },
            StateMachineError::TransitionLimit { limit, at_state } => {
                write!(f, "exceeded {limit} transitions at state {at_state}")
            }
            StateMachineError::Invocation {
                state,
                function,
                source,
            } => write!(f, "state {state} (function {function}) failed: {source}"),
        }
    }
}

impl std::error::Error for StateMachineError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            StateMachineError::Invocation { source, .. } => Some(source),
            _ => None,
        }
    }
}

/// The result of running a state machine.
#[derive(Debug)]
pub struct StateMachineReport {
    /// Final output (refcounted; shared with the last step's result).
    pub output: Bytes,
    /// States visited, in order.
    pub path: Vec<String>,
    /// Billed basic-function executions (no double billing: the machine
    /// itself adds nothing).
    pub invocations: Vec<InvocationRecord>,
}

/// A named-state workflow over black-box functions.
pub struct StateMachine {
    states: HashMap<String, State>,
    start: String,
    max_transitions: u32,
}

impl StateMachine {
    /// Build a machine starting at `start`.
    pub fn new(start: impl Into<String>) -> Self {
        Self {
            states: HashMap::new(),
            start: start.into(),
            max_transitions: 1000,
        }
    }

    /// Add a state.
    pub fn state(mut self, name: impl Into<String>, s: State) -> Self {
        self.states.insert(name.into(), s);
        self
    }

    /// Override the runaway-loop budget.
    pub fn with_max_transitions(mut self, n: u32) -> Self {
        assert!(n >= 1);
        self.max_transitions = n;
        self
    }

    /// Execute against a platform.
    pub fn run(
        &self,
        platform: &FaasPlatform,
        input: &[u8],
    ) -> Result<StateMachineReport, StateMachineError> {
        let mut current = self.start.clone();
        let mut previous: Option<String> = None;
        let mut payload = Bytes::copy_from_slice(input);
        let mut path = Vec::new();
        let mut invocations = Vec::new();
        for _ in 0..self.max_transitions {
            let state =
                self.states
                    .get(&current)
                    .ok_or_else(|| StateMachineError::UnknownState {
                        state: current.clone(),
                        from: previous.clone(),
                    })?;
            path.push(current.clone());
            let r = platform
                .invoke(&state.function, payload.clone())
                .map_err(|source| StateMachineError::Invocation {
                    state: current.clone(),
                    function: state.function.clone(),
                    source,
                })?;
            invocations.push(InvocationRecord {
                function: state.function.clone(),
                cost: r.cost,
                duration: r.exec_duration,
                attempts: r.attempts,
            });
            payload = r.output;
            previous = Some(current.clone());
            current = match &state.next {
                Transition::End => {
                    return Ok(StateMachineReport {
                        output: payload,
                        path,
                        invocations,
                    });
                }
                Transition::Always(next) => next.clone(),
                Transition::Branch { arms, otherwise } => arms
                    .iter()
                    .find(|(p, _)| p(&payload))
                    .map(|(_, next)| next.clone())
                    .unwrap_or_else(|| otherwise.clone()),
            };
        }
        Err(StateMachineError::TransitionLimit {
            limit: self.max_transitions,
            at_state: current,
        })
    }

    /// View this machine as a linear chain of `(state, function)` stages:
    /// `Some` exactly when every state reachable from the start routes via
    /// [`Transition::Always`] (ending in [`Transition::End`]) and no state
    /// repeats. Linear machines are degenerate DAGs — a chain — and can be
    /// handed to a DAG executor to share one execution engine across both
    /// workflow models.
    pub fn linear_chain(&self) -> Option<Vec<(String, String)>> {
        let mut chain = Vec::new();
        let mut seen = std::collections::HashSet::new();
        let mut current = self.start.clone();
        loop {
            if !seen.insert(current.clone()) {
                return None; // a revisit means a loop, not a chain
            }
            let state = self.states.get(&current)?;
            chain.push((current.clone(), state.function.clone()));
            match &state.next {
                Transition::End => return Some(chain),
                Transition::Always(next) => current = next.clone(),
                Transition::Branch { .. } => return None,
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use taureau_core::clock::VirtualClock;
    use taureau_faas::{FunctionSpec, PlatformConfig};

    fn platform() -> FaasPlatform {
        let p = FaasPlatform::new(PlatformConfig::deterministic(), VirtualClock::shared());
        p.register(FunctionSpec::new("inc", "t", |ctx| {
            Ok(vec![ctx.payload[0] + 1])
        }))
        .unwrap();
        p.register(FunctionSpec::new("double", "t", |ctx| {
            Ok(vec![ctx.payload[0] * 2])
        }))
        .unwrap();
        p.register(FunctionSpec::new("noop", "t", |ctx| {
            Ok(ctx.payload.to_vec())
        }))
        .unwrap();
        p
    }

    #[test]
    fn linear_machine_terminates() {
        let p = platform();
        let m = StateMachine::new("a")
            .state(
                "a",
                State {
                    function: "inc".into(),
                    next: Transition::Always("b".into()),
                },
            )
            .state(
                "b",
                State {
                    function: "double".into(),
                    next: Transition::End,
                },
            );
        let r = m.run(&p, &[3]).unwrap();
        assert_eq!(r.output, vec![8]); // (3+1)*2
        assert_eq!(r.path, vec!["a", "b"]);
        assert_eq!(r.invocations.len(), 2);
    }

    #[test]
    fn loop_until_condition() {
        // Keep incrementing until the value reaches 10 (a retry/poll loop,
        // the classic state-machine use).
        let p = platform();
        let m = StateMachine::new("bump")
            .state(
                "bump",
                State {
                    function: "inc".into(),
                    next: Transition::branch(|out| out[0] >= 10, "done", "bump"),
                },
            )
            .state(
                "done",
                State {
                    function: "noop".into(),
                    next: Transition::End,
                },
            );
        let r = m.run(&p, &[0]).unwrap();
        assert_eq!(r.output, vec![10]);
        assert_eq!(r.path.len(), 11); // 10 bumps + done
    }

    #[test]
    fn transition_budget_stops_runaway_loops() {
        let p = platform();
        let m = StateMachine::new("spin")
            .state(
                "spin",
                State {
                    function: "noop".into(),
                    next: Transition::Always("spin".into()),
                },
            )
            .with_max_transitions(25);
        assert!(matches!(
            m.run(&p, &[0]),
            Err(StateMachineError::TransitionLimit { limit: 25, ref at_state }) if at_state == "spin"
        ));
        // Exactly 25 executions were billed (failed machines still pay for
        // what ran — as Step Functions does).
        assert_eq!(p.billing().invocations("t"), 25);
    }

    #[test]
    fn unknown_state_is_reported() {
        let p = platform();
        let m = StateMachine::new("ghost");
        assert!(matches!(
            m.run(&p, &[0]),
            Err(StateMachineError::UnknownState { ref state, from: None }) if state == "ghost"
        ));
        // A dangling transition names both ends of the broken edge.
        let m = StateMachine::new("a").state(
            "a",
            State {
                function: "noop".into(),
                next: Transition::Always("nowhere".into()),
            },
        );
        let err = m.run(&p, &[0]).unwrap_err();
        assert!(matches!(
            err,
            StateMachineError::UnknownState { ref state, from: Some(ref f) }
                if state == "nowhere" && f == "a"
        ));
        assert_eq!(err.to_string(), "unknown state: nowhere (routed from a)");
    }

    #[test]
    fn invocation_errors_name_the_failing_state() {
        let p = platform();
        p.register(FunctionSpec::new("boom", "t", |_| Err("kaput".into())))
            .unwrap();
        // Three states; the middle one fails. The error must name "b",
        // not merely whatever state happened to be last.
        let m = StateMachine::new("a")
            .state(
                "a",
                State {
                    function: "inc".into(),
                    next: Transition::Always("b".into()),
                },
            )
            .state(
                "b",
                State {
                    function: "boom".into(),
                    next: Transition::Always("c".into()),
                },
            )
            .state(
                "c",
                State {
                    function: "inc".into(),
                    next: Transition::End,
                },
            );
        let err = m.run(&p, &[0]).unwrap_err();
        match &err {
            StateMachineError::Invocation {
                state,
                function,
                source,
            } => {
                assert_eq!(state, "b");
                assert_eq!(function, "boom");
                assert!(matches!(source, FaasError::ExecutionFailed { .. }));
            }
            other => panic!("expected Invocation, got {other:?}"),
        }
        assert!(err.to_string().contains("state b (function boom)"));
        assert!(std::error::Error::source(&err).is_some());
    }

    #[test]
    fn linear_chain_view() {
        let m = StateMachine::new("a")
            .state(
                "a",
                State {
                    function: "inc".into(),
                    next: Transition::Always("b".into()),
                },
            )
            .state(
                "b",
                State {
                    function: "double".into(),
                    next: Transition::End,
                },
            );
        assert_eq!(
            m.linear_chain(),
            Some(vec![
                ("a".to_string(), "inc".to_string()),
                ("b".to_string(), "double".to_string()),
            ])
        );
        // Branching machines are not chains.
        let branching = StateMachine::new("route").state(
            "route",
            State {
                function: "noop".into(),
                next: Transition::branch(|o| o[0] > 1, "a", "b"),
            },
        );
        assert_eq!(branching.linear_chain(), None);
        // Looping machines are not chains.
        let looping = StateMachine::new("spin").state(
            "spin",
            State {
                function: "noop".into(),
                next: Transition::Always("spin".into()),
            },
        );
        assert_eq!(looping.linear_chain(), None);
        // Dangling machines are not chains.
        let dangling = StateMachine::new("ghost");
        assert_eq!(dangling.linear_chain(), None);
    }

    #[test]
    fn branch_arms_tried_in_order() {
        let p = platform();
        let m = StateMachine::new("route")
            .state(
                "route",
                State {
                    function: "noop".into(),
                    next: Transition::Branch {
                        arms: vec![
                            (Arc::new(|o: &[u8]| o[0] > 100), "big".into()),
                            (Arc::new(|o: &[u8]| o[0] > 10), "medium".into()),
                        ],
                        otherwise: "small".into(),
                    },
                },
            )
            .state(
                "big",
                State {
                    function: "noop".into(),
                    next: Transition::End,
                },
            )
            .state(
                "medium",
                State {
                    function: "noop".into(),
                    next: Transition::End,
                },
            )
            .state(
                "small",
                State {
                    function: "noop".into(),
                    next: Transition::End,
                },
            );
        assert_eq!(m.run(&p, &[200]).unwrap().path[1], "big");
        assert_eq!(m.run(&p, &[50]).unwrap().path[1], "medium");
        assert_eq!(m.run(&p, &[5]).unwrap().path[1], "small");
    }

    #[test]
    fn no_double_billing_for_machines() {
        let p = platform();
        let m = StateMachine::new("a")
            .state(
                "a",
                State {
                    function: "inc".into(),
                    next: Transition::Always("b".into()),
                },
            )
            .state(
                "b",
                State {
                    function: "inc".into(),
                    next: Transition::End,
                },
            );
        let before = p.billing().total("t");
        let r = m.run(&p, &[0]).unwrap();
        let delta = p.billing().total("t") - before;
        let sum: f64 = r.invocations.iter().map(|i| i.cost).sum();
        assert!((delta - sum).abs() < 1e-15);
    }
}
