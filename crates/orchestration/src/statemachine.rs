//! State-machine orchestration — Hong et al.'s serverless design pattern 5
//! (§3.2 of the paper) and the programming model of AWS Step Functions
//! (§4.2).
//!
//! A [`StateMachine`] is a set of named states; each state invokes one
//! black-box function and routes its *output* through a transition rule to
//! the next state (or terminates). Unlike [`crate::Composition`] — which is
//! a static dataflow — a state machine branches on runtime values and may
//! loop, with a transition budget standing in for Step Functions'
//! execution-history limit.

use std::collections::HashMap;
use std::sync::Arc;

use taureau_faas::{FaasError, FaasPlatform};

use crate::InvocationRecord;

/// A branch predicate over a state's output bytes.
pub type OutputPredicate = Arc<dyn Fn(&[u8]) -> bool + Send + Sync>;

/// Routes a state's output to the next state.
pub enum Transition {
    /// Always go to the named state.
    Always(String),
    /// First matching predicate wins; falls back to the `otherwise` state.
    Branch {
        /// `(predicate on output, next state)` pairs, tried in order.
        arms: Vec<(OutputPredicate, String)>,
        /// State when no arm matches.
        otherwise: String,
    },
    /// Terminate successfully; the state's output is the machine's output.
    End,
}

impl Transition {
    /// Convenience: a single-predicate branch.
    pub fn branch(
        predicate: impl Fn(&[u8]) -> bool + Send + Sync + 'static,
        then: impl Into<String>,
        otherwise: impl Into<String>,
    ) -> Self {
        Transition::Branch {
            arms: vec![(Arc::new(predicate), then.into())],
            otherwise: otherwise.into(),
        }
    }
}

/// One state: invoke `function`, then follow `next`.
pub struct State {
    /// Function to invoke with the current payload.
    pub function: String,
    /// Where the output goes.
    pub next: Transition,
}

/// Errors from state-machine execution.
#[derive(Debug)]
pub enum StateMachineError {
    /// A named state does not exist.
    UnknownState(String),
    /// The transition budget was exhausted (runaway loop guard).
    TransitionLimit {
        /// The configured budget.
        limit: u32,
    },
    /// The underlying function invocation failed.
    Invocation(FaasError),
}

impl std::fmt::Display for StateMachineError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            StateMachineError::UnknownState(s) => write!(f, "unknown state: {s}"),
            StateMachineError::TransitionLimit { limit } => {
                write!(f, "exceeded {limit} transitions")
            }
            StateMachineError::Invocation(e) => write!(f, "invocation failed: {e}"),
        }
    }
}

impl std::error::Error for StateMachineError {}

/// The result of running a state machine.
#[derive(Debug)]
pub struct StateMachineReport {
    /// Final output.
    pub output: Vec<u8>,
    /// States visited, in order.
    pub path: Vec<String>,
    /// Billed basic-function executions (no double billing: the machine
    /// itself adds nothing).
    pub invocations: Vec<InvocationRecord>,
}

/// A named-state workflow over black-box functions.
pub struct StateMachine {
    states: HashMap<String, State>,
    start: String,
    max_transitions: u32,
}

impl StateMachine {
    /// Build a machine starting at `start`.
    pub fn new(start: impl Into<String>) -> Self {
        Self {
            states: HashMap::new(),
            start: start.into(),
            max_transitions: 1000,
        }
    }

    /// Add a state.
    pub fn state(mut self, name: impl Into<String>, s: State) -> Self {
        self.states.insert(name.into(), s);
        self
    }

    /// Override the runaway-loop budget.
    pub fn with_max_transitions(mut self, n: u32) -> Self {
        assert!(n >= 1);
        self.max_transitions = n;
        self
    }

    /// Execute against a platform.
    pub fn run(
        &self,
        platform: &FaasPlatform,
        input: &[u8],
    ) -> Result<StateMachineReport, StateMachineError> {
        let mut current = self.start.clone();
        let mut payload = input.to_vec();
        let mut path = Vec::new();
        let mut invocations = Vec::new();
        for _ in 0..self.max_transitions {
            let state = self
                .states
                .get(&current)
                .ok_or_else(|| StateMachineError::UnknownState(current.clone()))?;
            path.push(current.clone());
            let r = platform
                .invoke(&state.function, payload.clone())
                .map_err(StateMachineError::Invocation)?;
            invocations.push(InvocationRecord {
                function: state.function.clone(),
                cost: r.cost,
                duration: r.exec_duration,
                attempts: r.attempts,
            });
            payload = r.output;
            current = match &state.next {
                Transition::End => {
                    return Ok(StateMachineReport {
                        output: payload,
                        path,
                        invocations,
                    });
                }
                Transition::Always(next) => next.clone(),
                Transition::Branch { arms, otherwise } => arms
                    .iter()
                    .find(|(p, _)| p(&payload))
                    .map(|(_, next)| next.clone())
                    .unwrap_or_else(|| otherwise.clone()),
            };
        }
        Err(StateMachineError::TransitionLimit {
            limit: self.max_transitions,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use taureau_core::clock::VirtualClock;
    use taureau_faas::{FunctionSpec, PlatformConfig};

    fn platform() -> FaasPlatform {
        let p = FaasPlatform::new(PlatformConfig::deterministic(), VirtualClock::shared());
        p.register(FunctionSpec::new("inc", "t", |ctx| {
            Ok(vec![ctx.payload[0] + 1])
        }))
        .unwrap();
        p.register(FunctionSpec::new("double", "t", |ctx| {
            Ok(vec![ctx.payload[0] * 2])
        }))
        .unwrap();
        p.register(FunctionSpec::new("noop", "t", |ctx| {
            Ok(ctx.payload.to_vec())
        }))
        .unwrap();
        p
    }

    #[test]
    fn linear_machine_terminates() {
        let p = platform();
        let m = StateMachine::new("a")
            .state(
                "a",
                State {
                    function: "inc".into(),
                    next: Transition::Always("b".into()),
                },
            )
            .state(
                "b",
                State {
                    function: "double".into(),
                    next: Transition::End,
                },
            );
        let r = m.run(&p, &[3]).unwrap();
        assert_eq!(r.output, vec![8]); // (3+1)*2
        assert_eq!(r.path, vec!["a", "b"]);
        assert_eq!(r.invocations.len(), 2);
    }

    #[test]
    fn loop_until_condition() {
        // Keep incrementing until the value reaches 10 (a retry/poll loop,
        // the classic state-machine use).
        let p = platform();
        let m = StateMachine::new("bump")
            .state(
                "bump",
                State {
                    function: "inc".into(),
                    next: Transition::branch(|out| out[0] >= 10, "done", "bump"),
                },
            )
            .state(
                "done",
                State {
                    function: "noop".into(),
                    next: Transition::End,
                },
            );
        let r = m.run(&p, &[0]).unwrap();
        assert_eq!(r.output, vec![10]);
        assert_eq!(r.path.len(), 11); // 10 bumps + done
    }

    #[test]
    fn transition_budget_stops_runaway_loops() {
        let p = platform();
        let m = StateMachine::new("spin")
            .state(
                "spin",
                State {
                    function: "noop".into(),
                    next: Transition::Always("spin".into()),
                },
            )
            .with_max_transitions(25);
        assert!(matches!(
            m.run(&p, &[0]),
            Err(StateMachineError::TransitionLimit { limit: 25 })
        ));
        // Exactly 25 executions were billed (failed machines still pay for
        // what ran — as Step Functions does).
        assert_eq!(p.billing().invocations("t"), 25);
    }

    #[test]
    fn unknown_state_is_reported() {
        let p = platform();
        let m = StateMachine::new("ghost");
        assert!(matches!(
            m.run(&p, &[0]),
            Err(StateMachineError::UnknownState(_))
        ));
    }

    #[test]
    fn branch_arms_tried_in_order() {
        let p = platform();
        let m = StateMachine::new("route")
            .state(
                "route",
                State {
                    function: "noop".into(),
                    next: Transition::Branch {
                        arms: vec![
                            (Arc::new(|o: &[u8]| o[0] > 100), "big".into()),
                            (Arc::new(|o: &[u8]| o[0] > 10), "medium".into()),
                        ],
                        otherwise: "small".into(),
                    },
                },
            )
            .state(
                "big",
                State {
                    function: "noop".into(),
                    next: Transition::End,
                },
            )
            .state(
                "medium",
                State {
                    function: "noop".into(),
                    next: Transition::End,
                },
            )
            .state(
                "small",
                State {
                    function: "noop".into(),
                    next: Transition::End,
                },
            );
        assert_eq!(m.run(&p, &[200]).unwrap().path[1], "big");
        assert_eq!(m.run(&p, &[50]).unwrap().path[1], "medium");
        assert_eq!(m.run(&p, &[5]).unwrap().path[1], "small");
    }

    #[test]
    fn no_double_billing_for_machines() {
        let p = platform();
        let m = StateMachine::new("a")
            .state(
                "a",
                State {
                    function: "inc".into(),
                    next: Transition::Always("b".into()),
                },
            )
            .state(
                "b",
                State {
                    function: "inc".into(),
                    next: Transition::End,
                },
            );
        let before = p.billing().total("t");
        let r = m.run(&p, &[0]).unwrap();
        let delta = p.billing().total("t") - before;
        let sum: f64 = r.invocations.iter().map(|i| i.cost).sum();
        assert!((delta - sum).abs() < 1e-15);
    }
}
