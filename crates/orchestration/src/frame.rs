//! Length-prefixed framing for fan-out/fan-in payloads.
//!
//! Parallel branches and Map stages need to pass *lists* of byte payloads
//! between black-box functions. The wire format is:
//!
//! ```text
//! [count: u32 le] ([len: u32 le] [bytes])*
//! ```

/// Pack a list of payloads into one framed buffer.
pub fn pack(items: &[Vec<u8>]) -> Vec<u8> {
    let total: usize = 4 + items.iter().map(|i| 4 + i.len()).sum::<usize>();
    let mut out = Vec::with_capacity(total);
    out.extend_from_slice(&(items.len() as u32).to_le_bytes());
    for item in items {
        out.extend_from_slice(&(item.len() as u32).to_le_bytes());
        out.extend_from_slice(item);
    }
    out
}

/// Unpack a framed buffer; `None` if malformed.
pub fn unpack(bytes: &[u8]) -> Option<Vec<Vec<u8>>> {
    if bytes.len() < 4 {
        return None;
    }
    let count = u32::from_le_bytes(bytes[0..4].try_into().ok()?) as usize;
    let mut items = Vec::with_capacity(count.min(1024));
    let mut pos = 4;
    for _ in 0..count {
        if bytes.len() < pos + 4 {
            return None;
        }
        let len = u32::from_le_bytes(bytes[pos..pos + 4].try_into().ok()?) as usize;
        pos += 4;
        if bytes.len() < pos + len {
            return None;
        }
        items.push(bytes[pos..pos + len].to_vec());
        pos += len;
    }
    if pos != bytes.len() {
        return None; // trailing garbage
    }
    Some(items)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip() {
        let items = vec![b"one".to_vec(), Vec::new(), vec![0u8; 1000]];
        assert_eq!(unpack(&pack(&items)), Some(items));
        assert_eq!(unpack(&pack(&[])), Some(Vec::new()));
    }

    #[test]
    fn malformed_inputs_rejected() {
        assert_eq!(unpack(b""), None);
        assert_eq!(unpack(b"abc"), None);
        // Claims one item but has no length header.
        assert_eq!(unpack(&1u32.to_le_bytes()), None);
        // Claims a longer item than present.
        let mut bad = pack(&[b"x".to_vec()]);
        bad[4] = 200;
        assert_eq!(unpack(&bad), None);
        // Trailing garbage.
        let mut trailing = pack(&[b"x".to_vec()]);
        trailing.push(0);
        assert_eq!(unpack(&trailing), None);
    }
}
