//! Length-prefixed framing for fan-out/fan-in payloads.
//!
//! Parallel branches and Map stages need to pass *lists* of byte payloads
//! between black-box functions. The wire format is:
//!
//! ```text
//! [count: u32 le] ([len: u32 le] [bytes])*
//! ```

use bytes::Bytes;

/// Pack a list of payloads into one framed buffer. This is the fan-in
/// point of the data plane and it *copies*: the branches' refcounted
/// outputs are glued into one contiguous buffer so a black-box function
/// can consume the list as a single payload. (The reverse direction —
/// [`unpack_bytes`] — is zero-copy.)
pub fn pack<T: AsRef<[u8]>>(items: &[T]) -> Vec<u8> {
    let total: usize = 4 + items.iter().map(|i| 4 + i.as_ref().len()).sum::<usize>();
    let mut out = Vec::with_capacity(total);
    out.extend_from_slice(&(items.len() as u32).to_le_bytes());
    for item in items {
        let item = item.as_ref();
        out.extend_from_slice(&(item.len() as u32).to_le_bytes());
        out.extend_from_slice(item);
    }
    out
}

/// Unpack a framed buffer; `None` if malformed.
pub fn unpack(bytes: &[u8]) -> Option<Vec<Vec<u8>>> {
    if bytes.len() < 4 {
        return None;
    }
    let count = u32::from_le_bytes(bytes[0..4].try_into().ok()?) as usize;
    let mut items = Vec::with_capacity(count.min(1024));
    let mut pos = 4;
    for _ in 0..count {
        if bytes.len() < pos + 4 {
            return None;
        }
        let len = u32::from_le_bytes(bytes[pos..pos + 4].try_into().ok()?) as usize;
        pos += 4;
        if bytes.len() < pos + len {
            return None;
        }
        items.push(bytes[pos..pos + len].to_vec());
        pos += len;
    }
    if pos != bytes.len() {
        return None; // trailing garbage
    }
    Some(items)
}

/// Unpack a framed buffer into refcounted views of it — zero-copy: each
/// item shares the input's storage. `None` if malformed.
pub fn unpack_bytes(bytes: &Bytes) -> Option<Vec<Bytes>> {
    if bytes.len() < 4 {
        return None;
    }
    let count = u32::from_le_bytes(bytes[0..4].try_into().ok()?) as usize;
    let mut items = Vec::with_capacity(count.min(1024));
    let mut pos = 4;
    for _ in 0..count {
        if bytes.len() < pos + 4 {
            return None;
        }
        let len = u32::from_le_bytes(bytes[pos..pos + 4].try_into().ok()?) as usize;
        pos += 4;
        if bytes.len() < pos + len {
            return None;
        }
        items.push(bytes.slice(pos..pos + len));
        pos += len;
    }
    if pos != bytes.len() {
        return None; // trailing garbage
    }
    Some(items)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip() {
        let items = vec![b"one".to_vec(), Vec::new(), vec![0u8; 1000]];
        assert_eq!(unpack(&pack(&items)), Some(items));
        assert_eq!(unpack(&pack::<Vec<u8>>(&[])), Some(Vec::new()));
    }

    #[test]
    fn unpack_bytes_is_zero_copy() {
        let items = vec![b"alpha".to_vec(), b"beta".to_vec()];
        let framed = Bytes::from(pack(&items));
        let views = unpack_bytes(&framed).unwrap();
        assert_eq!(views.len(), 2);
        for (v, want) in views.iter().zip(&items) {
            assert_eq!(&v[..], &want[..]);
            let base = framed.as_ref().as_ptr() as usize;
            let vp = v.as_ref().as_ptr() as usize;
            assert!(vp >= base && vp < base + framed.len(), "item copied");
        }
        assert_eq!(unpack_bytes(&Bytes::new()), None);
    }

    #[test]
    fn malformed_inputs_rejected() {
        assert_eq!(unpack(b""), None);
        assert_eq!(unpack(b"abc"), None);
        // Claims one item but has no length header.
        assert_eq!(unpack(&1u32.to_le_bytes()), None);
        // Claims a longer item than present.
        let mut bad = pack(&[b"x".to_vec()]);
        bad[4] = 200;
        assert_eq!(unpack(&bad), None);
        // Trailing garbage.
        let mut trailing = pack(&[b"x".to_vec()]);
        trailing.push(0);
        assert_eq!(unpack(&trailing), None);
    }
}
