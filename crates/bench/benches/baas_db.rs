//! E15 support: serverless-database throughput — autocommit ops,
//! transaction commit cost, and the optimistic-conflict retry price under
//! contention.

use criterion::{black_box, criterion_group, criterion_main, Criterion, Throughput};
use taureau_baas::ServerlessDb;

fn bench_db(c: &mut Criterion) {
    let db = ServerlessDb::new();
    let mut i = 0u64;
    c.bench_function("db_autocommit_put", |b| {
        b.iter(|| {
            i += 1;
            db.put(&(i % 10_000).to_le_bytes(), b"value");
        })
    });
    c.bench_function("db_autocommit_get", |b| {
        b.iter(|| {
            i += 1;
            black_box(db.get(&(i % 10_000).to_le_bytes()))
        })
    });

    let mut g = c.benchmark_group("db_transactions");
    g.throughput(Throughput::Elements(1));
    g.bench_function("read_modify_write_commit", |b| {
        let db = ServerlessDb::new();
        db.put(b"counter", &0u64.to_le_bytes());
        b.iter(|| {
            db.run_transaction(10, |txn| {
                let v = u64::from_le_bytes(txn.get(b"counter").unwrap().try_into().unwrap());
                txn.put(b"counter", &(v + 1).to_le_bytes());
                Ok(())
            })
            .unwrap()
        })
    });
    g.bench_function("ten_key_batch_commit", |b| {
        let db = ServerlessDb::new();
        let mut n = 0u64;
        b.iter(|| {
            n += 1;
            let mut txn = db.begin();
            for k in 0..10u64 {
                txn.put(&(n * 10 + k).to_le_bytes(), b"v");
            }
            txn.commit().unwrap()
        })
    });
    g.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(40);
    targets = bench_db
}
criterion_main!(benches);
