//! E8 support: gradient-computation throughput — local reference vs the
//! serverless parameter-server round (which adds Jiffy reads/writes and
//! invocation dispatch per epoch).

use std::sync::Arc;
use std::time::Duration;

use criterion::{black_box, criterion_group, criterion_main, Criterion};
use taureau_apps::ml::{synthetic_logreg, train_local, train_serverless, TrainingConfig};
use taureau_core::clock::VirtualClock;
use taureau_core::latency::LatencyModel;
use taureau_faas::{FaasPlatform, PlatformConfig};
use taureau_jiffy::{Jiffy, JiffyConfig};

fn bench_training(c: &mut Criterion) {
    let (ds, _) = synthetic_logreg(2000, 8, 42);
    let ds = Arc::new(ds);
    let mut g = c.benchmark_group("logreg_2000x8_5epochs");
    g.sample_size(10);
    g.bench_function("local_full_batch", |b| {
        b.iter(|| black_box(train_local(&ds, 0.5, 5)))
    });
    g.bench_function("serverless_4_workers", |b| {
        let mut job = 0u64;
        b.iter(|| {
            let clock = VirtualClock::shared();
            let platform = FaasPlatform::new(
                PlatformConfig {
                    cold_start: LatencyModel::zero(),
                    warm_start: LatencyModel::zero(),
                    ..PlatformConfig::default()
                },
                clock.clone(),
            );
            let jiffy = Jiffy::new(JiffyConfig::default(), clock);
            let cfg = TrainingConfig {
                lr: 0.5,
                epochs: 5,
                workers: 4,
                compute_per_example: Duration::ZERO,
                ..TrainingConfig::default()
            };
            job += 1;
            black_box(
                train_serverless(&platform, &jiffy, Arc::clone(&ds), &cfg, &format!("b{job}"))
                    .invocations,
            )
        })
    });
    g.finish();
}

criterion_group!(benches, bench_training);
criterion_main!(benches);
