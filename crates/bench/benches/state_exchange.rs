//! E3: ephemeral state exchange through Jiffy — measured put/get cost for
//! the three data structures at several payload sizes. (The persistent
//! baseline's latency is a calibrated model, so the apples-to-apples
//! comparison lives in the `experiments` binary; this bench tracks the
//! real cost of the Jiffy implementation itself.)

use criterion::{black_box, criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use taureau_core::bytesize::ByteSize;
use taureau_jiffy::{Jiffy, JiffyConfig};

fn jiffy() -> Jiffy {
    Jiffy::new(
        JiffyConfig {
            memory_nodes: 4,
            blocks_per_node: 8192,
            block_size: ByteSize::mb(1),
            ..Default::default()
        },
        taureau_core::clock::WallClock::shared(),
    )
}

fn bench_kv(c: &mut Criterion) {
    let mut g = c.benchmark_group("jiffy_kv");
    for size in [128usize, 4096, 65_536] {
        let j = jiffy();
        let kv = j.create_kv("/bench/kv", 8).unwrap();
        let payload = vec![7u8; size];
        g.throughput(Throughput::Bytes(size as u64));
        g.bench_with_input(BenchmarkId::new("put", size), &size, |b, _| {
            let mut i = 0u64;
            b.iter(|| {
                i = (i + 1) % 10_000;
                kv.put(&i.to_le_bytes(), &payload).unwrap();
            })
        });
        for i in 0..10_000u64 {
            kv.put(&i.to_le_bytes(), &payload).unwrap();
        }
        g.bench_with_input(BenchmarkId::new("get", size), &size, |b, _| {
            let mut i = 0u64;
            b.iter(|| {
                i = (i + 1) % 10_000;
                black_box(kv.get(&i.to_le_bytes()).unwrap())
            })
        });
    }
    g.finish();
}

fn bench_queue_and_file(c: &mut Criterion) {
    let j = jiffy();
    let q = j.create_queue("/bench/q").unwrap();
    let payload = vec![7u8; 1024];
    c.bench_function("jiffy_queue_push_pop_1k", |b| {
        b.iter(|| {
            q.push(&payload).unwrap();
            black_box(q.pop().unwrap())
        })
    });
    let mut f = j.create_file("/bench/f-0").unwrap();
    let mut epoch = 0u64;
    let mut appends = 0u64;
    c.bench_function("jiffy_file_append_4k", |b| {
        let chunk = vec![1u8; 4096];
        b.iter(|| {
            // Roll to a fresh file periodically so the bench does not
            // accumulate unbounded memory.
            if appends == 20_000 {
                let _ = j.remove_namespace(format!("/bench/f-{epoch}").as_str());
                epoch += 1;
                f = j.create_file(format!("/bench/f-{epoch}").as_str()).unwrap();
                appends = 0;
            }
            appends += 1;
            black_box(f.append(&chunk).unwrap())
        })
    });
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(30);
    targets = bench_kv, bench_queue_and_file
}
criterion_main!(benches);
