//! Windowed-operator throughput: events/second through the tumbling and
//! sliding window aggregators (§5.1 streaming analytics support).

use std::time::Duration;

use criterion::{black_box, criterion_group, criterion_main, Criterion, Throughput};
use taureau_apps::streaming::{SlidingWindow, TumblingWindow};

fn bench_windows(c: &mut Criterion) {
    let mut g = c.benchmark_group("window_operators_10k_events");
    g.throughput(Throughput::Elements(10_000));
    g.bench_function("tumbling_1s", |b| {
        b.iter(|| {
            let mut w = TumblingWindow::new(Duration::from_secs(1), Duration::from_millis(100));
            let mut fired = 0usize;
            for i in 0..10_000u64 {
                fired += w
                    .process(Duration::from_millis(i * 3), (i % 100) as f64)
                    .len();
            }
            black_box(fired)
        })
    });
    g.bench_function("sliding_1s_by_250ms", |b| {
        b.iter(|| {
            let mut w = SlidingWindow::new(
                Duration::from_secs(1),
                Duration::from_millis(250),
                Duration::from_millis(100),
            );
            let mut fired = 0usize;
            for i in 0..10_000u64 {
                fired += w
                    .process(Duration::from_millis(i * 3), (i % 100) as f64)
                    .len();
            }
            black_box(fired)
        })
    });
    g.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(30);
    targets = bench_windows
}
criterion_main!(benches);
