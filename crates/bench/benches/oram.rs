//! E17 support: Path ORAM access cost vs plain map access, across tree
//! sizes — the measured price of hiding access patterns (§6).

use criterion::{black_box, criterion_group, criterion_main, BenchmarkId, Criterion};
use taureau_secure::PathOram;

fn bench_oram(c: &mut Criterion) {
    let mut g = c.benchmark_group("oram_access");
    g.sample_size(30);
    for n in [256usize, 1024, 4096] {
        let mut oram = PathOram::new(n, 42);
        for id in 0..n as u32 {
            oram.write(id, vec![0u8; 64]);
        }
        let mut i = 0u32;
        g.bench_with_input(BenchmarkId::new("read", n), &n, |b, &n| {
            b.iter(|| {
                i = (i + 1) % n as u32;
                black_box(oram.read(i))
            })
        });
    }
    let mut map = std::collections::HashMap::new();
    for id in 0..4096u32 {
        map.insert(id, vec![0u8; 64]);
    }
    let mut i = 0u32;
    g.bench_function("hashmap_baseline_4096", |b| {
        b.iter(|| {
            i = (i + 1) % 4096;
            black_box(map.get(&i))
        })
    });
    g.finish();
}

criterion_group!(benches, bench_oram);
criterion_main!(benches);
