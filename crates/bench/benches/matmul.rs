//! E9: matrix multiplication algorithms — naive vs. blocked vs. Strassen,
//! plus the serverless tiled job end to end.

use criterion::{black_box, criterion_group, criterion_main, BenchmarkId, Criterion};
use taureau_apps::matmul::{distributed_multiply, Matrix};
use taureau_core::clock::VirtualClock;
use taureau_core::latency::LatencyModel;
use taureau_faas::{FaasPlatform, PlatformConfig};
use taureau_jiffy::{Jiffy, JiffyConfig};

fn bench_local(c: &mut Criterion) {
    let mut g = c.benchmark_group("matmul_local");
    g.sample_size(10);
    for n in [128usize, 256] {
        let a = Matrix::random(n, n, 1);
        let b = Matrix::random(n, n, 2);
        g.bench_with_input(BenchmarkId::new("naive", n), &n, |bch, _| {
            bch.iter(|| black_box(a.mul_naive(&b)))
        });
        g.bench_with_input(BenchmarkId::new("blocked32", n), &n, |bch, _| {
            bch.iter(|| black_box(a.mul_blocked(&b, 32)))
        });
        g.bench_with_input(BenchmarkId::new("strassen", n), &n, |bch, _| {
            bch.iter(|| black_box(a.strassen(&b)))
        });
    }
    g.finish();
}

fn bench_distributed(c: &mut Criterion) {
    let mut g = c.benchmark_group("matmul_serverless");
    g.sample_size(10);
    for grid in [2usize, 4] {
        g.bench_with_input(BenchmarkId::new("grid", grid), &grid, |bch, &grid| {
            bch.iter(|| {
                let clock = VirtualClock::shared();
                let platform = FaasPlatform::new(
                    PlatformConfig {
                        cold_start: LatencyModel::zero(),
                        warm_start: LatencyModel::zero(),
                        ..PlatformConfig::default()
                    },
                    clock.clone(),
                );
                let jiffy = Jiffy::new(
                    JiffyConfig {
                        blocks_per_node: 8192,
                        ..Default::default()
                    },
                    clock,
                );
                let a = Matrix::random(96, 96, 1);
                let b = Matrix::random(96, 96, 2);
                black_box(distributed_multiply(&platform, &jiffy, &a, &b, grid).1)
            })
        });
    }
    g.finish();
}

criterion_group!(benches, bench_local, bench_distributed);
criterion_main!(benches);
