//! E12 support: placement cost of the bin-packing policies at fleet scale.

use criterion::{black_box, criterion_group, criterion_main, BenchmarkId, Criterion};
use rand::Rng;
use taureau_core::rng::det_rng;
use taureau_sim::scheduler::{pack, Demand, PackingPolicy};

fn items(n: usize) -> Vec<Demand> {
    let mut rng = det_rng(3);
    (0..n)
        .map(|_| {
            if rng.gen::<bool>() {
                Demand::new(rng.gen_range(0.3..0.6), rng.gen_range(0.05..0.2))
            } else {
                Demand::new(rng.gen_range(0.05..0.2), rng.gen_range(0.3..0.6))
            }
        })
        .collect()
}

fn bench_policies(c: &mut Criterion) {
    let work = items(1000);
    let mut g = c.benchmark_group("binpack_1000_items");
    g.sample_size(20);
    for (name, policy) in [
        ("first_fit", PackingPolicy::FirstFit),
        ("best_fit", PackingPolicy::BestFit),
        ("worst_fit", PackingPolicy::WorstFit),
        ("complementary", PackingPolicy::Complementary),
    ] {
        g.bench_with_input(BenchmarkId::from_parameter(name), &policy, |b, &policy| {
            b.iter(|| black_box(pack(&work, policy).node_count()))
        });
    }
    g.finish();
}

criterion_group!(benches, bench_policies);
criterion_main!(benches);
