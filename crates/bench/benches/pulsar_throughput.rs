//! E13 ablation: Pulsar publish/consume throughput vs ledger replication
//! factor and write quorum — the durability/throughput trade of §4.3's
//! storage layer.

use criterion::{black_box, criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use taureau_core::clock::WallClock;
use taureau_pulsar::broker::{PulsarCluster, PulsarConfig, SubscriptionMode};
use taureau_pulsar::ledger::LedgerConfig;

fn cluster(ensemble: usize, write_quorum: usize, ack_quorum: usize) -> PulsarCluster {
    PulsarCluster::new(
        PulsarConfig {
            bookies: 5,
            ledger: LedgerConfig {
                ensemble,
                write_quorum,
                ack_quorum,
            },
            max_entries_per_ledger: 4096,
        },
        WallClock::shared(),
    )
}

fn bench_publish(c: &mut Criterion) {
    let mut g = c.benchmark_group("pulsar_publish_1k_msgs");
    g.throughput(Throughput::Elements(1000));
    g.sample_size(20);
    for (e, wq, aq) in [(1, 1, 1), (3, 2, 2), (3, 3, 2), (5, 3, 3)] {
        g.bench_with_input(
            BenchmarkId::from_parameter(format!("e{e}w{wq}a{aq}")),
            &(e, wq, aq),
            |b, &(e, wq, aq)| {
                b.iter(|| {
                    let cl = cluster(e, wq, aq);
                    cl.create_topic("t", 1).unwrap();
                    let p = cl.producer("t").unwrap();
                    for i in 0..1000u64 {
                        p.send(&i.to_le_bytes()).unwrap();
                    }
                    black_box(cl.retained_entries("t").unwrap())
                })
            },
        );
    }
    g.finish();
}

fn bench_end_to_end(c: &mut Criterion) {
    let mut g = c.benchmark_group("pulsar_pub_sub_roundtrip");
    g.throughput(Throughput::Elements(1000));
    g.sample_size(20);
    g.bench_function("publish_consume_ack_1k", |b| {
        b.iter(|| {
            let cl = cluster(3, 2, 2);
            cl.create_topic("t", 2).unwrap();
            let p = cl.producer("t").unwrap();
            let mut consumer = cl.subscribe("t", "s", SubscriptionMode::Shared).unwrap();
            for i in 0..1000u64 {
                p.send(&i.to_le_bytes()).unwrap();
            }
            black_box(consumer.drain().unwrap().len())
        })
    });
    g.finish();
}

criterion_group!(benches, bench_publish, bench_end_to_end);
criterion_main!(benches);
