//! E2 support: the platform's dispatch overhead for cold vs. warm paths.
//! Latency *injection* is zeroed here so Criterion measures the real
//! control-plane cost (registry lookup, admission, pool bookkeeping,
//! billing); the injected cold-start distributions are reported by the
//! `experiments` binary instead.

use std::time::Duration;

use criterion::{black_box, criterion_group, criterion_main, Criterion};
use taureau_core::clock::WallClock;
use taureau_core::latency::LatencyModel;
use taureau_faas::{FaasPlatform, FunctionSpec, PlatformConfig};

fn platform() -> FaasPlatform {
    let cfg = PlatformConfig {
        cold_start: LatencyModel::zero(),
        warm_start: LatencyModel::zero(),
        keep_alive: Duration::from_secs(3600),
        ..PlatformConfig::default()
    };
    FaasPlatform::new(cfg, WallClock::shared())
}

fn bench_invoke_paths(c: &mut Criterion) {
    // Warm path: container reused every time.
    let p = platform();
    p.register(FunctionSpec::new("echo", "t", |ctx| {
        Ok(ctx.payload.to_vec())
    }))
    .unwrap();
    p.invoke("echo", &b"warmup"[..]).unwrap();
    c.bench_function("invoke_warm_path_overhead", |b| {
        b.iter(|| black_box(p.invoke("echo", &b"x"[..]).unwrap().output.len()))
    });

    // Cold path: a zero keep-alive forces a fresh container per call.
    let cfg = PlatformConfig {
        cold_start: LatencyModel::zero(),
        warm_start: LatencyModel::zero(),
        keep_alive: Duration::ZERO,
        ..PlatformConfig::default()
    };
    let p = FaasPlatform::new(cfg, WallClock::shared());
    p.register(FunctionSpec::new("echo", "t", |ctx| {
        Ok(ctx.payload.to_vec())
    }))
    .unwrap();
    c.bench_function("invoke_cold_path_overhead", |b| {
        b.iter(|| black_box(p.invoke("echo", &b"x"[..]).unwrap().output.len()))
    });

    // Retried path.
    let p = platform();
    p.register(FunctionSpec::new("echo2", "t", |ctx| {
        Ok(ctx.payload.to_vec())
    }))
    .unwrap();
    c.bench_function("invoke_with_retries_happy_path", |b| {
        b.iter(|| {
            black_box(
                p.invoke_with_retries("echo2", &b"x"[..], 3)
                    .unwrap()
                    .output
                    .len(),
            )
        })
    });
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(50);
    targets = bench_invoke_paths
}
criterion_main!(benches);
