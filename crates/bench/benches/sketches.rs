//! Sketch throughput (E6 support): update and query cost per element for
//! every sketch in the catalogue — the numbers that justify running them
//! inside per-message Pulsar functions.

use criterion::{black_box, criterion_group, criterion_main, Criterion, Throughput};
use taureau_core::rng::{det_rng, Zipf};
use taureau_sketches::{
    AmsF2, BloomFilter, CountMinSketch, HyperLogLog, KllSketch, Mergeable, SpaceSaving,
};

fn zipf_stream(n: usize) -> Vec<u64> {
    let z = Zipf::new(100_000, 1.05);
    let mut rng = det_rng(42);
    (0..n).map(|_| z.sample(&mut rng) as u64).collect()
}

fn bench_updates(c: &mut Criterion) {
    let stream = zipf_stream(10_000);
    let mut g = c.benchmark_group("sketch_update_10k");
    g.throughput(Throughput::Elements(stream.len() as u64));

    g.bench_function("countmin", |b| {
        b.iter(|| {
            let mut cm = CountMinSketch::with_error_bounds(0.001, 0.01, 7);
            for &x in &stream {
                cm.add(&x.to_le_bytes(), 1);
            }
            black_box(cm.total())
        })
    });
    g.bench_function("countmin_conservative", |b| {
        b.iter(|| {
            let mut cm = CountMinSketch::new(5, 2719, 7).conservative();
            for &x in &stream {
                cm.add(&x.to_le_bytes(), 1);
            }
            black_box(cm.total())
        })
    });
    g.bench_function("hyperloglog_p14", |b| {
        b.iter(|| {
            let mut h = HyperLogLog::new(14, 7);
            for &x in &stream {
                h.add(&x.to_le_bytes());
            }
            black_box(h.estimate())
        })
    });
    g.bench_function("bloom_1pct", |b| {
        b.iter(|| {
            let mut f = BloomFilter::new(10_000, 0.01, 7);
            for &x in &stream {
                f.insert(&x.to_le_bytes());
            }
            black_box(f.inserted())
        })
    });
    g.bench_function("spacesaving_k256", |b| {
        b.iter(|| {
            let mut s = SpaceSaving::new(256);
            for &x in &stream {
                s.add(&x.to_le_bytes(), 1);
            }
            black_box(s.total())
        })
    });
    g.bench_function("kll_k200", |b| {
        b.iter(|| {
            let mut s = KllSketch::new(200);
            for &x in &stream {
                s.update(x as f64);
            }
            black_box(s.total())
        })
    });
    g.bench_function("ams_f2", |b| {
        b.iter(|| {
            let mut s = AmsF2::with_error_bounds(0.1, 0.01, 7);
            for &x in &stream {
                s.update(&x.to_le_bytes(), 1);
            }
            black_box(s.estimate())
        })
    });
    g.finish();
}

fn bench_queries_and_merge(c: &mut Criterion) {
    let stream = zipf_stream(100_000);
    let mut cm = CountMinSketch::with_error_bounds(0.001, 0.01, 7);
    let mut cm2 = CountMinSketch::with_error_bounds(0.001, 0.01, 7);
    for &x in &stream {
        cm.add(&x.to_le_bytes(), 1);
        cm2.add(&x.to_le_bytes(), 2);
    }
    c.bench_function("countmin_estimate", |b| {
        let mut i = 0u64;
        b.iter(|| {
            i = (i + 1) % 100_000;
            black_box(cm.estimate(&i.to_le_bytes()))
        })
    });
    c.bench_function("countmin_merge_2719x5", |b| {
        b.iter(|| {
            let mut a = cm.clone();
            a.merge(&cm2).unwrap();
            black_box(a.total())
        })
    });
    let mut h1 = HyperLogLog::new(14, 7);
    let mut h2 = HyperLogLog::new(14, 7);
    for &x in &stream {
        h1.add(&x.to_le_bytes());
        h2.add(&(x + 1).to_le_bytes());
    }
    c.bench_function("hll_merge_p14", |b| {
        b.iter(|| {
            let mut a = h1.clone();
            a.merge(&h2).unwrap();
            black_box(a.estimate())
        })
    });
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(20);
    targets = bench_updates, bench_queries_and_merge
}
criterion_main!(benches);
