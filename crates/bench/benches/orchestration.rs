//! E7 support: orchestration overhead per composition shape. Because the
//! framework adds no billed work (no-double-billing), its only cost is
//! client-side control flow — measured here against direct invocation.

use criterion::{black_box, criterion_group, criterion_main, Criterion};
use taureau_core::clock::WallClock;
use taureau_core::latency::LatencyModel;
use taureau_faas::{FaasPlatform, FunctionSpec, PlatformConfig};
use taureau_orchestration::{frame, Composition, Orchestrator};

fn setup() -> (FaasPlatform, Orchestrator) {
    let cfg = PlatformConfig {
        cold_start: LatencyModel::zero(),
        warm_start: LatencyModel::zero(),
        ..PlatformConfig::default()
    };
    let p = FaasPlatform::new(cfg, WallClock::shared());
    for name in ["a", "b", "c", "d"] {
        p.register(FunctionSpec::new(name, "t", |ctx| Ok(ctx.payload.to_vec())))
            .unwrap();
    }
    let o = Orchestrator::new(p.clone());
    (p, o)
}

fn bench_shapes(c: &mut Criterion) {
    let (p, o) = setup();
    c.bench_function("direct_invoke_baseline", |b| {
        b.iter(|| black_box(p.invoke("a", &b"x"[..]).unwrap().output.len()))
    });
    let seq = Composition::pipeline(["a", "b", "c", "d"]);
    c.bench_function("sequence_4_stages", |b| {
        b.iter(|| black_box(o.run(&seq, b"x").unwrap().invocation_count()))
    });
    let par = Composition::Parallel(vec![
        Composition::Task("a".into()),
        Composition::Task("b".into()),
        Composition::Task("c".into()),
        Composition::Task("d".into()),
    ]);
    c.bench_function("parallel_4_branches", |b| {
        b.iter(|| black_box(o.run(&par, b"x").unwrap().invocation_count()))
    });
    let map = Composition::Map(Box::new(Composition::Task("a".into())));
    let input = frame::pack(&(0..16).map(|i| vec![i as u8]).collect::<Vec<_>>());
    c.bench_function("map_16_items", |b| {
        b.iter(|| black_box(o.run(&map, &input).unwrap().invocation_count()))
    });
    o.register_composition("inner", Composition::pipeline(["a", "b"]));
    let nested = Composition::Sequence(vec![
        Composition::Named("inner".into()),
        Composition::Named("inner".into()),
    ]);
    c.bench_function("nested_named_2x2", |b| {
        b.iter(|| black_box(o.run(&nested, b"x").unwrap().invocation_count()))
    });
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(50);
    targets = bench_shapes
}
criterion_main!(benches);
