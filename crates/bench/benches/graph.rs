//! E10: serverless Pregel vs the sequential reference — the overhead of
//! running graph supersteps as FaaS invocations with Jiffy messaging.

use std::sync::Arc;

use criterion::{black_box, criterion_group, criterion_main, BenchmarkId, Criterion};
use taureau_apps::graph::{pagerank_seq, run_pregel, Graph, PageRank};
use taureau_core::clock::VirtualClock;
use taureau_core::latency::LatencyModel;
use taureau_faas::{FaasPlatform, PlatformConfig};
use taureau_jiffy::{Jiffy, JiffyConfig};

fn bench_pagerank(c: &mut Criterion) {
    let g5 = Arc::new(Graph::random(500, 4000, 7));
    let mut grp = c.benchmark_group("pagerank_500v_4000e_10iters");
    grp.sample_size(10);
    grp.bench_function("sequential", |b| {
        b.iter(|| black_box(pagerank_seq(&g5, 0.85, 10)))
    });
    for parts in [2usize, 8] {
        grp.bench_with_input(
            BenchmarkId::new("serverless_pregel", parts),
            &parts,
            |b, &parts| {
                let mut job = 0u64;
                b.iter(|| {
                    let clock = VirtualClock::shared();
                    let platform = FaasPlatform::new(
                        PlatformConfig {
                            cold_start: LatencyModel::zero(),
                            warm_start: LatencyModel::zero(),
                            ..PlatformConfig::default()
                        },
                        clock.clone(),
                    );
                    let jiffy = Jiffy::new(
                        JiffyConfig {
                            blocks_per_node: 8192,
                            ..Default::default()
                        },
                        clock,
                    );
                    job += 1;
                    black_box(
                        run_pregel(
                            &platform,
                            &jiffy,
                            Arc::clone(&g5),
                            Arc::new(PageRank { d: 0.85, iters: 10 }),
                            parts,
                            &format!("bench-{job}"),
                        )
                        .invocations,
                    )
                })
            },
        );
    }
    grp.finish();
}

criterion_group!(benches, bench_pagerank);
criterion_main!(benches);
