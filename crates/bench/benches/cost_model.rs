//! E1 support: how fast the cost simulators run (a 24 h trace replay per
//! iteration), so the experiments binary's sweeps stay tractable — and the
//! billing arithmetic hot path.

use std::time::Duration;

use criterion::{black_box, criterion_group, criterion_main, Criterion};
use taureau_core::bytesize::ByteSize;
use taureau_core::cost::FaasPricing;
use taureau_sim::serverless::{simulate_serverless, ServerlessConfig};
use taureau_sim::vmfleet::{simulate_vm_fleet, VmFleetConfig, VmScalingPolicy};
use taureau_sim::workload::{typical_duration_model, WorkloadSpec};

fn bench_sim(c: &mut Criterion) {
    let spec = WorkloadSpec::diurnal_with_peak_ratio(2.0, 10.0, Duration::from_secs(6 * 3600));
    let w = spec.generate(
        Duration::from_secs(24 * 3600),
        &typical_duration_model(),
        ByteSize::mb(512),
        1,
    );
    let mut g = c.benchmark_group("cost_sim_24h_trace");
    g.sample_size(10);
    g.bench_function("serverless_replay", |b| {
        b.iter(|| black_box(simulate_serverless(&w, &ServerlessConfig::default()).cost))
    });
    g.bench_function("vm_fleet_replay", |b| {
        b.iter(|| {
            black_box(
                simulate_vm_fleet(
                    &w,
                    &VmFleetConfig {
                        policy: VmScalingPolicy::FixedAtPeak,
                        ..Default::default()
                    },
                )
                .cost,
            )
        })
    });
    g.finish();

    c.bench_function("invocation_cost_arithmetic", |b| {
        let pricing = FaasPricing::default();
        let mut d = 0u64;
        b.iter(|| {
            d = (d + 17) % 5000;
            black_box(pricing.invocation_cost(ByteSize::mb(512), Duration::from_millis(d)))
        })
    });
}

criterion_group!(benches, bench_sim);
criterion_main!(benches);
