//! E14 ablation: Jiffy block size vs KV throughput and re-partitioning
//! cost. Small blocks mean frequent auto-scaling (more re-partitioning);
//! large blocks waste memory but amortise growth.

use criterion::{black_box, criterion_group, criterion_main, BenchmarkId, Criterion};
use taureau_core::bytesize::ByteSize;
use taureau_jiffy::{Jiffy, JiffyConfig};

fn bench_block_sizes(c: &mut Criterion) {
    let mut g = c.benchmark_group("jiffy_block_size_ablation");
    g.sample_size(15);
    for block_kb in [4u64, 16, 64, 256, 1024] {
        g.bench_with_input(
            BenchmarkId::new("kv_fill_2k_entries", format!("{block_kb}KiB")),
            &block_kb,
            |b, &block_kb| {
                b.iter(|| {
                    let j = Jiffy::new(
                        JiffyConfig {
                            memory_nodes: 2,
                            blocks_per_node: 16 * 1024,
                            block_size: ByteSize::kb(block_kb),
                            ..Default::default()
                        },
                        taureau_core::clock::WallClock::shared(),
                    );
                    let kv = j.create_kv("/ablate/kv", 1).unwrap();
                    let payload = vec![3u8; 512];
                    for i in 0..2000u64 {
                        kv.put(&i.to_le_bytes(), &payload).unwrap();
                    }
                    // Report the re-partitioning the fill triggered.
                    black_box(j.metrics().counter("kv_repartitioned_bytes").get())
                })
            },
        );
    }
    g.finish();
}

criterion_group!(benches, bench_block_sizes);
criterion_main!(benches);
