//! # taureau-bench
//!
//! The benchmark harness for the *Le Taureau* reproduction. Two halves:
//!
//! - the **`experiments` binary** (`cargo run -p taureau-bench --release
//!   --bin experiments -- <id>|all`), which regenerates the per-claim
//!   tables E1–E12 catalogued in `DESIGN.md` §5 and recorded in
//!   `EXPERIMENTS.md`;
//! - the **Criterion benches** (`cargo bench -p taureau-bench`), which
//!   measure the real throughput/latency of the in-process systems
//!   (sketches, Jiffy, Pulsar, orchestration, the analytics kernels) and
//!   the two ablations E13 (ledger replication) and E14 (block size).
//!
//! This library holds the table-formatting helpers both halves share.

#![warn(missing_docs)]

/// A minimal fixed-width table printer for experiment output.
pub struct Table {
    headers: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl Table {
    /// Table with the given column headers.
    pub fn new<I, S>(headers: I) -> Self
    where
        I: IntoIterator<Item = S>,
        S: Into<String>,
    {
        Self {
            headers: headers.into_iter().map(Into::into).collect(),
            rows: Vec::new(),
        }
    }

    /// Append a row (must match the header count).
    pub fn row<I, S>(&mut self, cells: I) -> &mut Self
    where
        I: IntoIterator<Item = S>,
        S: Into<String>,
    {
        let row: Vec<String> = cells.into_iter().map(Into::into).collect();
        assert_eq!(row.len(), self.headers.len(), "row width mismatch");
        self.rows.push(row);
        self
    }

    /// Render to a string.
    pub fn render(&self) -> String {
        let mut widths: Vec<usize> = self.headers.iter().map(String::len).collect();
        for row in &self.rows {
            for (w, cell) in widths.iter_mut().zip(row) {
                *w = (*w).max(cell.len());
            }
        }
        let mut out = String::new();
        let fmt_row = |cells: &[String], widths: &[usize]| -> String {
            let mut line = String::from("|");
            for (cell, w) in cells.iter().zip(widths) {
                line.push_str(&format!(" {cell:<w$} |"));
            }
            line
        };
        out.push_str(&fmt_row(&self.headers, &widths));
        out.push('\n');
        let mut sep = String::from("|");
        for w in &widths {
            sep.push_str(&format!("{}|", "-".repeat(w + 2)));
        }
        out.push_str(&sep);
        out.push('\n');
        for row in &self.rows {
            out.push_str(&fmt_row(row, &widths));
            out.push('\n');
        }
        out
    }

    /// Print to stdout.
    pub fn print(&self) {
        print!("{}", self.render());
    }
}

/// Format a `Duration` compactly for tables.
pub fn fmt_dur(d: std::time::Duration) -> String {
    let us = d.as_micros();
    if us < 1_000 {
        format!("{us}us")
    } else if us < 1_000_000 {
        format!("{:.2}ms", us as f64 / 1_000.0)
    } else {
        format!("{:.2}s", us as f64 / 1_000_000.0)
    }
}

/// Format dollars compactly for tables.
pub fn fmt_usd(v: f64) -> String {
    if v >= 0.01 {
        format!("${v:.3}")
    } else {
        format!("${v:.6}")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table_renders_aligned() {
        let mut t = Table::new(["name", "value"]);
        t.row(["short", "1"]);
        t.row(["a-much-longer-name", "23456"]);
        let s = t.render();
        let lines: Vec<&str> = s.lines().collect();
        assert_eq!(lines.len(), 4);
        // All lines equal width.
        assert!(lines.iter().all(|l| l.len() == lines[0].len()));
        assert!(lines[0].contains("name"));
        assert!(lines[2].contains("short"));
    }

    #[test]
    #[should_panic(expected = "row width mismatch")]
    fn mismatched_row_panics() {
        let mut t = Table::new(["a", "b"]);
        t.row(["only-one"]);
    }

    #[test]
    fn duration_formatting() {
        use std::time::Duration;
        assert_eq!(fmt_dur(Duration::from_micros(500)), "500us");
        assert_eq!(fmt_dur(Duration::from_millis(12)), "12.00ms");
        assert_eq!(fmt_dur(Duration::from_secs(3)), "3.00s");
    }

    #[test]
    fn usd_formatting() {
        assert_eq!(fmt_usd(1.5), "$1.500");
        assert_eq!(fmt_usd(0.0000012), "$0.000001");
    }
}
