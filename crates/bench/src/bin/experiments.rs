//! The experiment harness: regenerates every table in `EXPERIMENTS.md`.
//!
//! ```text
//! cargo run -p taureau-bench --release --bin experiments -- all
//! cargo run -p taureau-bench --release --bin experiments -- e1 e4
//! cargo run -p taureau-bench --release --bin experiments -- e22 \
//!     --trace-out trace.json --metrics-out metrics.prom
//! ```
//!
//! `--trace-out PATH` dumps E22's Chrome trace-event JSON (open it at
//! <https://ui.perfetto.dev>); `--metrics-out PATH` dumps a Prometheus
//! text-format snapshot of every subsystem's metrics registry. Either
//! flag implies running E22.
//!
//! Each experiment is keyed to a claim in the paper; see `DESIGN.md` §5
//! for the claim → experiment mapping. Everything is seeded and
//! deterministic except where wall-clock throughput is explicitly
//! reported.

use std::sync::atomic::{AtomicBool, AtomicU32, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

use taureau_baas::BlobStore;
use taureau_bench::{fmt_dur, fmt_usd, Table};
use taureau_cluster::{
    ClusterStack, ClusterStackConfig, IncidentKind, IncidentSpec, LinkFaults, OutagePhase,
};
use taureau_core::bytesize::ByteSize;
use taureau_core::clock::{SharedClock, VirtualClock, WallClock};
use taureau_core::cost::VmPricing;
use taureau_core::latency::LatencyModel;
use taureau_core::metrics::MetricsRegistry;
use taureau_core::rng::{det_rng, Zipf};
use taureau_core::sync::ContentionProfiler;
use taureau_core::trace::{TelemetrySink, Tracer};
use taureau_dag::{
    Dag, DagBuilder, DagError, DagExecutor, DataPassing, ExecutorConfig, RetryPolicy,
};
use taureau_faas::{FaasPlatform, FunctionSpec, PlatformConfig};
use taureau_jiffy::baseline::{GlobalStore, PersistentStore};
use taureau_jiffy::{Jiffy, JiffyConfig};
use taureau_monitor::{Monitor, MonitorConfig, SloPolicy, TelemetryPump};
use taureau_orchestration::statemachine::{State, StateMachine, Transition};
use taureau_orchestration::{frame, Composition, Orchestrator};
use taureau_prof::{render, ContentionReport, CriticalPath, TraceGraph};
use taureau_pulsar::{
    FunctionConfig, FunctionRuntime, PulsarCluster, PulsarConfig, SubscriptionMode,
};
use taureau_sim::scheduler::{pack, Demand, PackingPolicy};
use taureau_sim::serverless::{simulate_serverless, ServerlessConfig};
use taureau_sim::vmfleet::{simulate_vm_fleet, VmFleetConfig, VmScalingPolicy};
use taureau_sim::workload::{typical_duration_model, WorkloadSpec};
use taureau_sketches::CountMinSketch;

// ---------------------------------------------------------------------------
// Counting allocator: E26 reads call/byte deltas around hot loops to report
// allocations per operation. Two relaxed atomic adds per allocation; every
// other experiment is unaffected beyond that.
// ---------------------------------------------------------------------------

static ALLOC_CALLS: std::sync::atomic::AtomicU64 = std::sync::atomic::AtomicU64::new(0);
static ALLOC_BYTES: std::sync::atomic::AtomicU64 = std::sync::atomic::AtomicU64::new(0);

struct CountingAllocator;

// SAFETY: delegates every operation to `System`; the counters are
// side-effect-only.
unsafe impl std::alloc::GlobalAlloc for CountingAllocator {
    unsafe fn alloc(&self, layout: std::alloc::Layout) -> *mut u8 {
        ALLOC_CALLS.fetch_add(1, Ordering::Relaxed);
        ALLOC_BYTES.fetch_add(layout.size() as u64, Ordering::Relaxed);
        std::alloc::System.alloc(layout)
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: std::alloc::Layout) {
        std::alloc::System.dealloc(ptr, layout)
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: std::alloc::Layout, new_size: usize) -> *mut u8 {
        ALLOC_CALLS.fetch_add(1, Ordering::Relaxed);
        ALLOC_BYTES.fetch_add(
            new_size.saturating_sub(layout.size()) as u64,
            Ordering::Relaxed,
        );
        std::alloc::System.realloc(ptr, layout, new_size)
    }
}

#[global_allocator]
static GLOBAL_ALLOC: CountingAllocator = CountingAllocator;

/// Run `f` and return the (allocation calls, allocated bytes) it performed.
fn alloc_delta(f: impl FnOnce()) -> (u64, u64) {
    let c0 = ALLOC_CALLS.load(Ordering::Relaxed);
    let b0 = ALLOC_BYTES.load(Ordering::Relaxed);
    f();
    (
        ALLOC_CALLS.load(Ordering::Relaxed) - c0,
        ALLOC_BYTES.load(Ordering::Relaxed) - b0,
    )
}

const KNOWN: &[&str] = &[
    "e1", "e2", "e3", "e4", "e5", "e6", "e7", "e8", "e9", "e10", "e11", "e12", "e15", "e16", "e17",
    "e18", "e19", "e20", "e21", "e22", "e23", "e24", "e25", "e26", "e27", "e28", "e29",
];

/// Default path for the machine-readable benchmark numbers E25 (and E24's
/// overhead coda) emit; overridden by `--bench-json PATH`.
const BENCH_JSON_DEFAULT: &str = "BENCH_e25.json";

fn main() {
    let mut trace_out: Option<String> = None;
    let mut metrics_out: Option<String> = None;
    let mut bench_json: Option<String> = None;
    let mut args: Vec<String> = Vec::new();
    let mut raw = std::env::args().skip(1);
    while let Some(a) = raw.next() {
        if let Some(v) = a.strip_prefix("--trace-out=") {
            trace_out = Some(v.to_string());
        } else if a == "--trace-out" {
            trace_out = Some(raw.next().unwrap_or_else(|| {
                eprintln!("--trace-out needs a path");
                std::process::exit(2);
            }));
        } else if let Some(v) = a.strip_prefix("--metrics-out=") {
            metrics_out = Some(v.to_string());
        } else if a == "--metrics-out" {
            metrics_out = Some(raw.next().unwrap_or_else(|| {
                eprintln!("--metrics-out needs a path");
                std::process::exit(2);
            }));
        } else if let Some(v) = a.strip_prefix("--bench-json=") {
            bench_json = Some(v.to_string());
        } else if a == "--bench-json" {
            bench_json = Some(raw.next().unwrap_or_else(|| {
                eprintln!("--bench-json needs a path");
                std::process::exit(2);
            }));
        } else {
            args.push(a);
        }
    }
    let unknown: Vec<&String> = args
        .iter()
        .filter(|a| *a != "all" && !KNOWN.contains(&a.as_str()))
        .collect();
    if !unknown.is_empty() {
        eprintln!(
            "unknown experiment id(s): {} — known: {} or `all`",
            unknown
                .iter()
                .map(|s| s.as_str())
                .collect::<Vec<_>>()
                .join(", "),
            KNOWN.join(", ")
        );
        std::process::exit(2);
    }
    let all = args.is_empty() || args.iter().any(|a| a == "all");
    let want = |id: &str| all || args.iter().any(|a| a == id);
    // (key, JSON value) fragments assembled into the bench-JSON file.
    let mut bench_parts: Vec<(String, String)> = Vec::new();

    if want("e1") {
        e1_cost_vs_load_shape();
    }
    if want("e2") {
        e2_cold_starts();
    }
    if want("e3") {
        e3_state_exchange();
    }
    if want("e4") {
        e4_isolation();
    }
    if want("e5") {
        e5_multiplexing();
    }
    if want("e6") {
        e6_countmin_function();
    }
    if want("e7") {
        e7_orchestration_billing();
    }
    if want("e8") {
        e8_ml_stragglers();
    }
    if want("e9") {
        e9_matmul();
    }
    if want("e10") {
        e10_graph();
    }
    if want("e11") {
        e11_autoscaling();
    }
    if want("e12") {
        e12_binpacking();
    }
    if want("e15") {
        e15_transactional_retry_safety();
    }
    if want("e16") {
        e16_tiered_storage();
    }
    if want("e17") {
        e17_oram_overhead();
    }
    if want("e18") {
        e18_hetero_packing();
    }
    if want("e19") {
        e19_sand_sandboxing();
    }
    if want("e20") {
        e20_formal_semantics();
    }
    if want("e21") {
        e21_edge_placement();
    }
    // The two dump flags imply the traced experiment.
    if want("e22") || trace_out.is_some() || metrics_out.is_some() {
        e22_traced_pipeline(trace_out.as_deref(), metrics_out.as_deref());
    }
    if want("e23") {
        e23_dag_engine();
    }
    if want("e24") {
        e24_self_monitoring(&mut bench_parts);
    }
    if want("e25") {
        e25_contention_scaling(&mut bench_parts);
    }
    if want("e26") {
        e26_zero_copy_batching(&mut bench_parts);
    }
    if want("e27") {
        e27_observability_pipeline(&mut bench_parts);
    }
    if want("e28") {
        e28_cluster_failover(&mut bench_parts);
    }
    if want("e29") {
        e29_cluster_observability(&mut bench_parts);
    }
    // E25 always persists its numbers (the CI scaling gate reads them);
    // other fragments (E24's overhead coda, E26's batching numbers) ride
    // along, or are written on their own when `--bench-json` is given
    // explicitly.
    if want("e25") || (bench_json.is_some() && !bench_parts.is_empty()) {
        let path = bench_json.as_deref().unwrap_or(BENCH_JSON_DEFAULT);
        let body = bench_parts
            .iter()
            .map(|(k, v)| format!("  \"{k}\": {v}"))
            .collect::<Vec<_>>()
            .join(",\n");
        let json = format!("{{\n{body}\n}}\n");
        std::fs::write(path, json).unwrap_or_else(|e| {
            eprintln!("failed to write {path}: {e}");
            std::process::exit(1);
        });
        println!("\nbench JSON written to {path}");
    }
}

/// E23 — the "Look Forward" composition layer: DAG-structured workflows
/// (Carver et al.) scheduled frontier-parallel against the FaaS pool,
/// with Zhang et al.-style retry + checkpoint fault tolerance. Four
/// workloads: a fan-out-8 makespan comparison on the wall clock, a
/// MapReduce wordcount under injected failures, the ETL chain run on both
/// the state-machine and DAG engines, and a tiled matmul whose
/// intermediates spill through Jiffy.
fn e23_dag_engine() {
    banner(
        "E23",
        "DAG engine: parallel frontiers ≥2x faster than sequential chains; retry/checkpoint recovery reproduces the failure-free output hash",
    );

    // -- (a) fan-out-8 makespan, wall clock ------------------------------
    // Start latencies are zeroed so the comparison isolates scheduling:
    // 10 stages of 25 ms of compute, shaped prep → 8 workers → gather.
    let platform = FaasPlatform::new(
        PlatformConfig {
            cold_start: LatencyModel::Constant(Duration::ZERO),
            warm_start: LatencyModel::Constant(Duration::ZERO),
            ..PlatformConfig::default()
        },
        Arc::new(WallClock::new()),
    );
    let work = Duration::from_millis(25);
    platform
        .register(FunctionSpec::new("stage", "wf", move |ctx| {
            ctx.burn(work);
            Ok(ctx.payload.to_vec())
        }))
        .expect("register");
    platform
        .register(FunctionSpec::new("gather", "wf", move |ctx| {
            ctx.burn(work);
            let parts = frame::unpack(&ctx.payload).ok_or("malformed frame")?;
            Ok(parts.concat())
        }))
        .expect("register");
    let workers: Vec<String> = (0..8).map(|i| format!("w{i}")).collect();
    let mut b = DagBuilder::new().node("prep", "stage", &[]);
    for w in &workers {
        b = b.node(w.as_str(), "stage", &["prep"]);
    }
    let worker_refs: Vec<&str> = workers.iter().map(String::as_str).collect();
    let fan_out = b
        .node("gather", "gather", &worker_refs)
        .build()
        .expect("dag");
    let run_at = |parallelism: usize| {
        DagExecutor::new(&platform)
            .with_config(ExecutorConfig {
                max_parallelism: parallelism,
                retry: RetryPolicy::none(),
                checkpoint: false,
                ..ExecutorConfig::default()
            })
            .run(&fan_out, &format!("fan-p{parallelism}"), b"payload")
            .expect("fan-out run")
    };
    let sequential = run_at(1);
    let parallel = run_at(8);
    assert_eq!(sequential.output, parallel.output);
    let speedup = sequential.makespan.as_secs_f64() / parallel.makespan.as_secs_f64();
    let critical: Duration = fan_out
        .critical_path()
        .iter()
        .map(|&i| parallel.nodes[i].exec)
        .sum();
    let mut t = Table::new([
        "mode",
        "makespan",
        "Σ exec",
        "cost",
        "speedup",
        "CP efficiency",
    ]);
    for (mode, r) in [
        ("sequential chain", &sequential),
        ("parallel DAG (8)", &parallel),
    ] {
        t.row([
            mode.to_string(),
            fmt_dur(r.makespan),
            fmt_dur(r.total_exec()),
            fmt_usd(r.total_cost()),
            format!(
                "{:.2}x",
                sequential.makespan.as_secs_f64() / r.makespan.as_secs_f64()
            ),
            format!(
                "{:.0}%",
                100.0 * critical.as_secs_f64() / r.makespan.as_secs_f64()
            ),
        ]);
    }
    t.print();
    println!(
        "fan-out-8: parallel DAG {speedup:.2}x faster than sequential chain (claim: ≥2x): {}",
        if speedup >= 2.0 { "yes" } else { "NO" }
    );
    assert!(speedup >= 2.0, "fan-out-8 speedup regressed below 2x");

    // -- (b) MapReduce wordcount under injected failures -----------------
    // Deterministic virtual clock; one executor with Jiffy checkpoints and
    // Pulsar completion events. Three scenarios must agree on the output
    // hash: failure-free, transient mapper fault (in-run retry), and a
    // permanent reducer fault (crash, then resume from the checkpoint).
    let clock = VirtualClock::shared();
    let platform = FaasPlatform::new(PlatformConfig::deterministic(), clock.clone());
    let jiffy = Jiffy::new(JiffyConfig::default(), clock.clone());
    let pulsar = PulsarCluster::new(PulsarConfig::default(), clock.clone());
    pulsar.create_topic("dag/completions", 2).expect("topic");
    let mut audit = pulsar
        .subscribe("dag/completions", "audit", SubscriptionMode::Exclusive)
        .expect("subscribe");

    const MAPPERS: usize = 8;
    platform
        .register(FunctionSpec::new("split", "wc", |ctx| {
            let text = String::from_utf8(ctx.payload.to_vec()).map_err(|e| e.to_string())?;
            let words: Vec<&str> = text.split_whitespace().collect();
            let chunks: Vec<Vec<u8>> = words
                .chunks(words.len().div_ceil(MAPPERS).max(1))
                .map(|c| c.join(" ").into_bytes())
                .collect();
            Ok(frame::pack(&chunks))
        }))
        .expect("register");
    let mapper_faults = Arc::new(AtomicU32::new(0));
    for i in 0..MAPPERS {
        let faults = mapper_faults.clone();
        platform
            .register(FunctionSpec::new(format!("count-{i}"), "wc", move |ctx| {
                if i == 3
                    && faults
                        .fetch_update(Ordering::SeqCst, Ordering::SeqCst, |v| v.checked_sub(1))
                        .is_ok()
                {
                    return Err("injected mapper fault".into());
                }
                let chunks = frame::unpack(&ctx.payload).ok_or("malformed frame")?;
                let n = chunks
                    .get(i)
                    .map(|c| {
                        std::str::from_utf8(c)
                            .map(|s| s.split_whitespace().count())
                            .unwrap_or(0)
                    })
                    .unwrap_or(0) as u32;
                Ok(n.to_le_bytes().to_vec())
            }))
            .expect("register");
    }
    let reducer_down = Arc::new(AtomicU32::new(0));
    let down = reducer_down.clone();
    platform
        .register(FunctionSpec::new("sum", "wc", move |ctx| {
            if down.load(Ordering::SeqCst) == 1 {
                return Err("injected reducer crash".into());
            }
            let parts = frame::unpack(&ctx.payload).ok_or("malformed frame")?;
            let total: u32 = parts
                .iter()
                .filter_map(|p| {
                    p.get(..4)
                        .map(|b| u32::from_le_bytes(b.try_into().unwrap()))
                })
                .sum();
            Ok(total.to_le_bytes().to_vec())
        }))
        .expect("register");

    let mut b = DagBuilder::new().node("split", "split", &[]);
    let mappers: Vec<String> = (0..MAPPERS).map(|i| format!("map-{i}")).collect();
    for (i, m) in mappers.iter().enumerate() {
        b = b.node(m.as_str(), format!("count-{i}"), &["split"]);
    }
    let mapper_refs: Vec<&str> = mappers.iter().map(String::as_str).collect();
    let wordcount = b.node("reduce", "sum", &mapper_refs).build().expect("dag");
    let exec = DagExecutor::new(&platform)
        .with_state(&jiffy)
        .with_events(pulsar.producer("dag/completions").expect("producer"));
    let text: Vec<u8> = (0..200)
        .map(|i| format!("word{}", i % 17))
        .collect::<Vec<_>>()
        .join(" ")
        .into_bytes();
    let hash = |out: &[u8]| taureau_core::hash::hash64(0x5EED, out);

    let clean = exec.run(&wordcount, "wc-clean", &text).expect("clean run");
    let clean_hash = hash(&clean.output);
    assert_eq!(clean.output, 200u32.to_le_bytes().to_vec());

    mapper_faults.store(1, Ordering::SeqCst);
    let retried = exec.run(&wordcount, "wc-retry", &text).expect("retry run");

    reducer_down.store(1, Ordering::SeqCst);
    let crashed = exec.run(&wordcount, "wc-crash", &text);
    assert!(
        matches!(crashed, Err(DagError::NodeFailed { ref node, .. }) if node == "reduce"),
        "reducer crash expected"
    );
    reducer_down.store(0, Ordering::SeqCst);
    let resumed = exec.run(&wordcount, "wc-crash", &text).expect("resume run");

    let mut t = Table::new([
        "scenario",
        "invocations",
        "retries",
        "resumed nodes",
        "output",
        "hash == clean",
    ]);
    for (name, r) in [
        ("failure-free", &clean),
        ("transient mapper fault", &retried),
        ("reducer crash + resume", &resumed),
    ] {
        t.row([
            name.to_string(),
            r.invocations.to_string(),
            r.retries.to_string(),
            r.resumed.to_string(),
            u32::from_le_bytes(r.output[..4].try_into().unwrap()).to_string(),
            (hash(&r.output) == clean_hash).to_string(),
        ]);
    }
    t.print();
    assert!(retried.retries >= 1 && hash(&retried.output) == clean_hash);
    assert!(resumed.resumed == 1 + MAPPERS && resumed.invocations == 1);
    assert!(hash(&resumed.output) == clean_hash);
    let events = audit.drain().expect("drain").len();
    println!(
        "completion events on dag/completions: {events} (3 full runs + crashed frontier prefix)"
    );

    // -- (c) the linear ETL chain on both engines ------------------------
    platform
        .register(FunctionSpec::new("etl-parse", "etl", |ctx| {
            let lines = String::from_utf8(ctx.payload.to_vec()).map_err(|e| e.to_string())?;
            let vals: Vec<Vec<u8>> = lines
                .lines()
                .filter(|l| !l.contains("bad"))
                .map(|l| l.trim().as_bytes().to_vec())
                .collect();
            Ok(frame::pack(&vals))
        }))
        .expect("register");
    platform
        .register(FunctionSpec::new("etl-clean", "etl", |ctx| {
            let rows = frame::unpack(&ctx.payload).ok_or("malformed frame")?;
            let upper: Vec<Vec<u8>> = rows.iter().map(|r| r.to_ascii_uppercase()).collect();
            Ok(frame::pack(&upper))
        }))
        .expect("register");
    platform
        .register(FunctionSpec::new("etl-store", "etl", |ctx| {
            let rows = frame::unpack(&ctx.payload).ok_or("malformed frame")?;
            Ok((rows.len() as u32).to_le_bytes().to_vec())
        }))
        .expect("register");
    let machine = StateMachine::new("extract")
        .state(
            "extract",
            State {
                function: "etl-parse".into(),
                next: Transition::Always("transform".into()),
            },
        )
        .state(
            "transform",
            State {
                function: "etl-clean".into(),
                next: Transition::Always("load".into()),
            },
        )
        .state(
            "load",
            State {
                function: "etl-store".into(),
                next: Transition::End,
            },
        );
    let input = b"alpha\nbad row\nbravo\ncharlie\nbad again\ndelta\n";
    let sm = machine.run(&platform, input).expect("state machine run");
    let chain = Dag::from_state_machine(&machine).expect("linear machine");
    let dg = DagExecutor::new(&platform)
        .run(&chain, "etl", input)
        .expect("chain-dag run");
    println!(
        "ETL chain: StateMachine output == chain-DAG output: {} ({} rows loaded)",
        sm.output == dg.output,
        u32::from_le_bytes(dg.output[..4].try_into().unwrap())
    );
    assert_eq!(sm.output, dg.output);

    // -- (d) tiled matmul: large intermediates spill through Jiffy -------
    use taureau_apps::matmul::Matrix;
    let (n, grid) = (192usize, 2usize);
    let tile = n / grid;
    let a = Arc::new(Matrix::random(n, n, 11));
    let bm = Arc::new(Matrix::random(n, n, 13));
    let mut builder = DagBuilder::new();
    let mut tiles = Vec::new();
    for ti in 0..grid {
        for tj in 0..grid {
            let name = format!("tile-{ti}{tj}");
            let function = format!("mm-{ti}{tj}");
            let (a, bm) = (a.clone(), bm.clone());
            platform
                .register(FunctionSpec::new(function.as_str(), "mm", move |_| {
                    let row_band = a.block(ti * tile, 0, tile, n);
                    let col_band = bm.block(0, tj * tile, n, tile);
                    Ok(row_band.mul_naive(&col_band).to_bytes())
                }))
                .expect("register");
            builder = builder.node(name.as_str(), function.as_str(), &[]);
            tiles.push(name);
        }
    }
    platform
        .register(FunctionSpec::new("mm-assemble", "mm", move |ctx| {
            let parts = frame::unpack(&ctx.payload).ok_or("malformed frame")?;
            let mut c = Matrix::zeros(n, n);
            for (k, part) in parts.iter().enumerate() {
                let block = Matrix::from_bytes(part).ok_or("malformed tile")?;
                c.set_block((k / grid) * tile, (k % grid) * tile, &block);
            }
            Ok(c.to_bytes())
        }))
        .expect("register");
    let tile_refs: Vec<&str> = tiles.iter().map(String::as_str).collect();
    let matmul = builder
        .node("assemble", "mm-assemble", &tile_refs)
        .build()
        .expect("dag");
    let report = DagExecutor::new(&platform)
        .with_state(&jiffy)
        .run(&matmul, "mm", b"")
        .expect("matmul run");
    let c = Matrix::from_bytes(&report.output).expect("result matrix");
    let diff = c.max_abs_diff(&a.mul_naive(&bm)).expect("same shape");
    let spilled_tiles = report.nodes.iter().filter(|nd| nd.spilled).count();
    println!(
        "matmul {n}x{n} in {grid}x{grid} tiles: {spilled_tiles} outputs spilled \
         ({} through Jiffy: {grid}x{grid} tiles + the assembled result), \
         max |Δ| vs naive = {diff:.2e}",
        ByteSize::b(report.spilled_bytes)
    );
    assert!(spilled_tiles == grid * grid + 1 && diff < 1e-9);
}

/// E22 — observability across the deconstructed stack: one FaaS
/// invocation synchronously touches Pulsar (publish → bookie append) and
/// Jiffy (state put/get), and the tracer stitches all of it into one
/// causally-linked span tree. Every subsystem also exposes a metrics
/// registry rendered in Prometheus text format.
fn e22_traced_pipeline(trace_out: Option<&str>, metrics_out: Option<&str>) {
    banner(
        "E22",
        "end-to-end tracing: FaaS → Pulsar → Jiffy span trees; Prometheus metrics from every subsystem",
    );
    let clock: SharedClock = Arc::new(VirtualClock::new());
    let tracer = Tracer::new(clock.clone());

    let faas = FaasPlatform::new(PlatformConfig::default(), clock.clone());
    faas.set_tracer(tracer.clone());
    let pulsar = PulsarCluster::new(PulsarConfig::default(), clock.clone());
    pulsar.set_tracer(tracer.clone());
    pulsar.create_topic("pipeline/events", 1).expect("topic");
    let jiffy = Jiffy::new(JiffyConfig::default(), clock.clone());
    jiffy.set_tracer(tracer.clone());
    let blob = Arc::new(BlobStore::new(clock.clone()));
    blob.create_bucket("archive");

    // The pipeline function: stage state in Jiffy, publish the event to
    // Pulsar, archive the payload to the blob store.
    let producer = pulsar.producer("pipeline/events").expect("producer");
    let kv = jiffy.create_kv("/pipeline/state", 2).expect("kv");
    let blob_h = blob.clone();
    faas.register(FunctionSpec::new("ingest", "tenant", move |ctx| {
        kv.put(b"last", &ctx.payload).map_err(|e| e.to_string())?;
        let staged = kv
            .get(b"last")
            .map_err(|e| e.to_string())?
            .unwrap_or_default();
        producer.send(&staged).map_err(|e| e.to_string())?;
        blob_h.put("archive", b"last", &staged);
        Ok(staged.to_vec())
    }))
    .expect("register");

    // Drive it through the orchestrator so composition metrics appear too.
    let orch = Orchestrator::new(faas.clone());
    for i in 0..8u64 {
        orch.run(&Composition::pipeline(["ingest"]), &i.to_le_bytes())
            .expect("pipeline run");
    }
    // Drain the topic: dispatch spans + delivery counters.
    let mut consumer = pulsar
        .subscribe("pipeline/events", "archiver", SubscriptionMode::Exclusive)
        .expect("subscribe");
    let delivered = consumer.drain().expect("drain").len();

    // A small fleet simulation contributes the sim crate's registry.
    let workload = WorkloadSpec::Poisson { rate: 5.0 }.generate(
        Duration::from_secs(600),
        &typical_duration_model(),
        ByteSize::mb(512),
        7,
    );
    let sim_metrics = MetricsRegistry::new();
    simulate_serverless(&workload, &ServerlessConfig::default()).export_metrics(&sim_metrics);

    // Span tree summary per subsystem.
    let spans = tracer.spans();
    let mut t = Table::new(["system", "spans", "operations", "total time"]);
    for system in ["taureau-faas", "taureau-pulsar", "taureau-jiffy"] {
        let sys_spans: Vec<_> = spans.iter().filter(|s| s.system == system).collect();
        let total: Duration = sys_spans.iter().map(|s| s.duration()).sum();
        let mut names: Vec<&str> = sys_spans.iter().map(|s| s.name.as_str()).collect();
        names.sort_unstable();
        names.dedup();
        t.row([
            system.to_string(),
            sys_spans.len().to_string(),
            names.join(" "),
            fmt_dur(total),
        ]);
    }
    t.print();

    // The acceptance check: at least one faas.invoke root whose descendant
    // set contains spans from both Pulsar and Jiffy.
    let cross_linked = spans
        .iter()
        .filter(|s| s.name == "faas.invoke")
        .any(|root| {
            let (mut has_pulsar, mut has_jiffy) = (false, false);
            let mut frontier = vec![root.span_id];
            while let Some(id) = frontier.pop() {
                for child in spans.iter().filter(|s| s.parent == Some(id)) {
                    match child.system {
                        "taureau-pulsar" => has_pulsar = true,
                        "taureau-jiffy" => has_jiffy = true,
                        _ => {}
                    }
                    frontier.push(child.span_id);
                }
            }
            has_pulsar && has_jiffy
        });
    println!(
        "one invocation, one tree: faas.invoke with pulsar + jiffy descendants: {}",
        if cross_linked { "yes" } else { "NO" }
    );
    println!("pulsar deliveries drained: {delivered}");

    // Gauges surfaced alongside the counters (satellite: gauge exposition).
    let pool = jiffy.pool_stats();
    jiffy
        .metrics()
        .gauge("allocated_blocks")
        .set(pool.allocated_blocks as i64);
    jiffy
        .metrics()
        .gauge("peak_allocated_blocks")
        .set(pool.peak_allocated_blocks as i64);
    let mut g = Table::new(["gauge", "value"]);
    for (prefix, reg) in [
        ("jiffy_", jiffy.metrics()),
        ("baas_", blob.metrics()),
        ("sim_", &sim_metrics),
    ] {
        for (name, value) in reg.gauge_values() {
            g.row([format!("{prefix}{name}"), value.to_string()]);
        }
    }
    g.print();

    // Heaviest call paths, folded flamegraph-style.
    let flame = tracer.flame_summary();
    println!("heaviest call paths (path count total_us):");
    for line in flame.lines().take(5) {
        println!("  {line}");
    }

    if let Some(path) = metrics_out {
        let mut out = String::new();
        out.push_str(&faas.metrics().render_prometheus_prefixed("faas_"));
        out.push_str(&pulsar.metrics().render_prometheus_prefixed("pulsar_"));
        out.push_str(&jiffy.metrics().render_prometheus_prefixed("jiffy_"));
        out.push_str(&blob.metrics().render_prometheus_prefixed("baas_"));
        out.push_str(&orch.metrics().render_prometheus_prefixed("orchestration_"));
        out.push_str(&sim_metrics.render_prometheus_prefixed("sim_"));
        std::fs::write(path, &out).expect("write metrics snapshot");
        println!("metrics snapshot written to {path}");
    }
    if let Some(path) = trace_out {
        std::fs::write(path, tracer.chrome_trace_json()).expect("write trace");
        println!(
            "chrome trace written to {path} ({} spans) — open in https://ui.perfetto.dev",
            tracer.span_count()
        );
    }
}

/// E21 — §1: serverless at the edge. Placement policies on a skewed geo
/// trace: the latency/keep-warm frontier.
fn e21_edge_placement() {
    banner(
        "E21",
        "edge placement: cloud-only vs edge-everywhere vs adaptive (1 hot region of 8)",
    );
    use taureau_sim::edge::{geo_trace, simulate_edge, EdgePolicy, Geography};
    let geo = Geography::continental(8);
    let horizon = Duration::from_secs(3600);
    let mut rates = vec![5.0; 8];
    rates[0] = 3000.0;
    let trace = geo_trace(8, horizon, &rates, 0xE21);
    let warm = LatencyModel::Constant(Duration::from_millis(2));
    let mut t = Table::new([
        "policy",
        "edge PoPs",
        "edge share",
        "p50",
        "p99",
        "edge container-h",
    ]);
    for (name, policy) in [
        ("cloud only", EdgePolicy::CloudOnly),
        ("edge everywhere", EdgePolicy::EdgeOnly),
        (
            "adaptive (>=100 req/h)",
            EdgePolicy::Adaptive {
                min_rate_per_hour: 100.0,
            },
        ),
    ] {
        let out = simulate_edge(&trace, &geo, policy, horizon, &warm);
        t.row([
            name.to_string(),
            out.edge_regions.to_string(),
            format!(
                "{:.1}%",
                100.0 * out.edge_served as f64 / trace.len() as f64
            ),
            fmt_dur(out.latency_us.quantile_duration(0.5)),
            fmt_dur(out.latency_us.quantile_duration(0.99)),
            format!("{:.0}", out.edge_container_hours),
        ]);
    }
    t.print();
}

/// E20 — §1 cites formal models of serverless (Jangda et al.): stateless
/// handlers are weakly equivalent to run-once execution; stateful ones are
/// not. Verified by bounded model checking.
fn e20_formal_semantics() {
    banner(
        "E20",
        "formal semantics: bounded model check of serverless vs naive execution",
    );
    use taureau_faas::semantics::{check_equivalence, safe_handler, unsafe_handler};
    let requests = [1u8, 2, 3, 4];
    let mut t = Table::new(["handler", "schedules explored", "equivalent to naive?"]);
    let safe = check_equivalence(safe_handler, &requests, 1);
    t.row([
        "stateless (safe)".to_string(),
        safe.schedules_explored.to_string(),
        safe.equivalent().to_string(),
    ]);
    let unsafe_r = check_equivalence(unsafe_handler, &requests, 1);
    t.row([
        "reads instance state".to_string(),
        unsafe_r.schedules_explored.to_string(),
        unsafe_r.equivalent().to_string(),
    ]);
    t.print();
    if let Some(cex) = unsafe_r.counterexample {
        println!("counterexample schedule:");
        for step in cex.schedule {
            println!("  {step}");
        }
    }
}

/// E19 — §1 cites SAND: application-level sandboxing lets a chain of
/// different functions in one application share warm sandboxes.
fn e19_sand_sandboxing() {
    banner(
        "E19",
        "SAND-style app sandboxes: startup latency of a 5-function chain",
    );
    let run_chain = |shared: bool| -> (Duration, u64) {
        let clock = VirtualClock::shared();
        let platform = FaasPlatform::new(PlatformConfig::deterministic(), clock);
        for i in 0..5 {
            let mut spec =
                FunctionSpec::new(format!("stage-{i}"), "t", |ctx| Ok(ctx.payload.to_vec()));
            if shared {
                spec = spec.with_app("pipeline");
            }
            platform.register(spec).expect("register");
        }
        let mut startup = Duration::ZERO;
        for i in 0..5 {
            let r = platform
                .invoke(&format!("stage-{i}"), &b"x"[..])
                .expect("invoke");
            startup += r.startup_latency;
        }
        (startup, platform.start_counts().0)
    };
    let (lambda_startup, lambda_colds) = run_chain(false);
    let (sand_startup, sand_colds) = run_chain(true);
    let mut t = Table::new(["isolation", "cold starts", "total startup latency"]);
    t.row([
        "per-function (Lambda-style)".to_string(),
        lambda_colds.to_string(),
        fmt_dur(lambda_startup),
    ]);
    t.row([
        "per-application (SAND-style)".to_string(),
        sand_colds.to_string(),
        fmt_dur(sand_startup),
    ]);
    t.print();
}

/// E15 — §4.1: "transactional semantics offered by serverless database
/// services can be crucial for ensuring correctness" under transparent
/// re-execution.
fn e15_transactional_retry_safety() {
    banner(
        "E15",
        "at-least-once re-execution: naive KV transfer vs transactional transfer",
    );
    use std::sync::atomic::{AtomicBool, Ordering};
    use taureau_baas::ServerlessDb;

    let clock: SharedClock = Arc::new(VirtualClock::new());
    let platform = FaasPlatform::new(PlatformConfig::deterministic(), clock);
    let mut t = Table::new(["mode", "attempts", "alice", "bob", "total (invariant: 100)"]);

    // Naive: two independent auto-commits with a crash in between; the
    // retry re-runs the debit.
    let db = ServerlessDb::new();
    db.put(b"alice", &50u64.to_le_bytes());
    db.put(b"bob", &50u64.to_le_bytes());
    let crashed = Arc::new(AtomicBool::new(false));
    let (dbf, cf) = (db.clone(), crashed.clone());
    platform
        .register(FunctionSpec::new("transfer-naive", "bank", move |_| {
            let read = |k: &[u8]| u64::from_le_bytes(dbf.get(k).unwrap().try_into().unwrap());
            dbf.put(b"alice", &(read(b"alice") - 10).to_le_bytes());
            if !cf.swap(true, Ordering::SeqCst) {
                return Err("crashed between debit and credit".into());
            }
            dbf.put(b"bob", &(read(b"bob") + 10).to_le_bytes());
            Ok(vec![])
        }))
        .expect("register");
    let r = platform
        .invoke_with_retries("transfer-naive", &[][..], 3)
        .expect("eventually succeeds");
    let read =
        |db: &ServerlessDb, k: &[u8]| u64::from_le_bytes(db.get(k).unwrap().try_into().unwrap());
    let (a, b) = (read(&db, b"alice"), read(&db, b"bob"));
    t.row([
        "naive KV".to_string(),
        r.attempts.to_string(),
        a.to_string(),
        b.to_string(),
        format!("{} {}", a + b, if a + b == 100 { "OK" } else { "VIOLATED" }),
    ]);

    // Transactional: the same logic inside run_transaction — the crashed
    // attempt's buffered writes never commit.
    let db = ServerlessDb::new();
    db.put(b"alice", &50u64.to_le_bytes());
    db.put(b"bob", &50u64.to_le_bytes());
    let crashed = Arc::new(AtomicBool::new(false));
    let (dbf, cf) = (db.clone(), crashed.clone());
    platform
        .register(FunctionSpec::new("transfer-txn", "bank", move |_| {
            dbf.run_transaction(5, |txn| {
                let a = u64::from_le_bytes(txn.get(b"alice").unwrap().try_into().unwrap());
                txn.put(b"alice", &(a - 10).to_le_bytes());
                if !cf.swap(true, Ordering::SeqCst) {
                    return Err(taureau_baas::DbError::Aborted(
                        "crashed mid-transfer".into(),
                    ));
                }
                let b = u64::from_le_bytes(txn.get(b"bob").unwrap().try_into().unwrap());
                txn.put(b"bob", &(b + 10).to_le_bytes());
                Ok(())
            })
            .map_err(|e| e.to_string())?;
            Ok(vec![])
        }))
        .expect("register");
    let r = platform
        .invoke_with_retries("transfer-txn", &[][..], 3)
        .expect("eventually succeeds");
    let (a, b) = (read(&db, b"alice"), read(&db, b"bob"));
    t.row([
        "transactional".to_string(),
        r.attempts.to_string(),
        a.to_string(),
        b.to_string(),
        format!("{} {}", a + b, if a + b == 100 { "OK" } else { "VIOLATED" }),
    ]);
    t.print();
}

/// E16 — §4.3: tiered storage moves sealed segments to the cheap cold
/// tier; consumers read through at cold-tier latency.
fn e16_tiered_storage() {
    banner(
        "E16",
        "tiered storage: bookie footprint, blob footprint, and read-through latency",
    );
    use taureau_baas::BlobStore;
    use taureau_pulsar::SubscriptionMode;
    let clock: SharedClock = Arc::new(VirtualClock::new());
    let cluster = PulsarCluster::new(
        PulsarConfig {
            max_entries_per_ledger: 64,
            ..Default::default()
        },
        clock.clone(),
    );
    let blob = Arc::new(BlobStore::new(clock.clone())); // S3-calibrated latency
    cluster.enable_tiering(blob.clone(), "pulsar-cold");
    cluster.create_topic("t", 1).expect("topic");
    let p = cluster.producer("t").expect("producer");
    let n = 1024u64;
    for i in 0..n {
        p.send(&vec![i as u8; 256]).expect("send");
    }
    let hot_before: u64 = cluster.bookies().iter().map(|b| b.stored_bytes()).sum();
    let offloaded = cluster.offload_sealed("t").expect("offload");
    let hot_after: u64 = cluster.bookies().iter().map(|b| b.stored_bytes()).sum();

    let t0 = clock.now();
    let mut consumer = cluster
        .subscribe("t", "s", SubscriptionMode::Exclusive)
        .expect("subscribe");
    let got = consumer.drain().expect("drain").len() as u64;
    let cold_read_time = clock.now() - t0;

    let mut t = Table::new(["metric", "value"]);
    t.row(["messages published", &n.to_string()]);
    t.row(["segments offloaded", &offloaded.to_string()]);
    t.row(["bookie bytes before", &ByteSize::b(hot_before).to_string()]);
    t.row(["bookie bytes after", &ByteSize::b(hot_after).to_string()]);
    t.row(["blob bytes (cold tier)", &blob.bytes_stored().to_string()]);
    t.row(["messages consumed (read-through)", &got.to_string()]);
    t.row([
        "consume time (cold-tier latency model)",
        &fmt_dur(cold_read_time),
    ]);
    t.row([
        "cold-tier reads",
        &cluster.metrics().counter("tier_reads").get().to_string(),
    ]);
    t.print();
}

/// E17 — §6: ORAM hides storage access patterns, at a bandwidth cost.
fn e17_oram_overhead() {
    banner(
        "E17",
        "Path ORAM: pattern-hiding at Z*(log N + 1) bandwidth overhead",
    );
    use std::collections::HashMap;
    use taureau_secure::PathOram;
    let mut t = Table::new([
        "N blocks",
        "buckets/access",
        "oram ns/op",
        "hashmap ns/op",
        "slowdown",
    ]);
    for n in [256usize, 4096] {
        let mut oram = PathOram::new(n, 0xE17);
        for id in 0..n as u32 {
            oram.write(id, vec![0u8; 64]);
        }
        let before = oram.store().accesses;
        let ops = 20_000u64;
        let t0 = Instant::now();
        for i in 0..ops {
            oram.read((i % n as u64) as u32);
        }
        let oram_ns = t0.elapsed().as_nanos() as u64 / ops;
        let per_access = (oram.store().accesses - before) / ops;

        let mut map: HashMap<u32, Vec<u8>> = HashMap::new();
        for id in 0..n as u32 {
            map.insert(id, vec![0u8; 64]);
        }
        let t0 = Instant::now();
        let mut sink = 0usize;
        for i in 0..ops {
            sink += map.get(&((i % n as u64) as u32)).map_or(0, Vec::len);
        }
        let map_ns = (t0.elapsed().as_nanos() as u64 / ops).max(1);
        std::hint::black_box(sink);
        t.row([
            n.to_string(),
            per_access.to_string(),
            oram_ns.to_string(),
            map_ns.to_string(),
            format!("{:.0}x", oram_ns as f64 / map_ns as f64),
        ]);
    }
    t.print();
    println!("(pattern-hiding property is asserted by taureau-secure's uniformity tests)");
}

/// E18 — §6: hardware heterogeneity; accelerator-aware placement.
fn e18_hetero_packing() {
    banner(
        "E18",
        "heterogeneous fleet: oblivious vs accelerator-aware placement (20% GPU functions)",
    );
    use rand::Rng;
    use taureau_sim::hetero::{pack_hetero, HeteroDemand, HeteroPolicy, HeteroPricing};
    let mut rng = det_rng(0xE18);
    let items: Vec<HeteroDemand> = (0..500)
        .map(|_| {
            if rng.gen::<f64>() < 0.2 {
                HeteroDemand::new(
                    rng.gen_range(0.1..0.3),
                    rng.gen_range(0.1..0.3),
                    rng.gen_range(0.25..0.5),
                )
            } else {
                HeteroDemand::new(rng.gen_range(0.2..0.5), rng.gen_range(0.2..0.5), 0.0)
            }
        })
        .collect();
    let pricing = HeteroPricing::default();
    let mut t = Table::new([
        "policy",
        "cpu nodes",
        "gpu nodes",
        "unplaced gpu jobs",
        "stranded gpu",
        "$/hour",
    ]);
    for (name, policy) in [
        ("oblivious", HeteroPolicy::Oblivious),
        ("accelerator-aware (§6)", HeteroPolicy::AcceleratorAware),
    ] {
        let out = pack_hetero(&items, policy, 60);
        let (cpu, gpu) = out.node_counts();
        t.row([
            name.to_string(),
            cpu.to_string(),
            gpu.to_string(),
            out.unplaced().to_string(),
            format!("{:.2}", out.stranded_gpu().max(0.0)),
            format!("{:.2}", out.hourly_cost(pricing)),
        ]);
    }
    t.print();
}

fn banner(id: &str, claim: &str) {
    println!("\n=== {id}: {claim}");
}

/// E1 — §2/§3.2: fine-grained billing beats reserved capacity under
/// variable load; the crossover appears as load flattens.
fn e1_cost_vs_load_shape() {
    banner(
        "E1",
        "serverless vs server-centric cost across peak/mean ratios (24h, diurnal)",
    );
    let day = Duration::from_secs(24 * 3600);
    let mut t = Table::new([
        "peak/mean",
        "requests",
        "serverless",
        "vm@peak",
        "vm reactive",
        "winner",
    ]);
    for ratio in [1.0, 2.0, 5.0, 10.0, 50.0] {
        // Mean rate fixed; only the shape varies.
        let spec = WorkloadSpec::diurnal_with_peak_ratio(2.0, ratio, Duration::from_secs(6 * 3600));
        let w = spec.generate(day, &typical_duration_model(), ByteSize::mb(512), 0xE1);
        let sl = simulate_serverless(&w, &ServerlessConfig::default());
        let peak = simulate_vm_fleet(
            &w,
            &VmFleetConfig {
                policy: VmScalingPolicy::FixedAtPeak,
                ..Default::default()
            },
        );
        let reactive = simulate_vm_fleet(
            &w,
            &VmFleetConfig {
                policy: VmScalingPolicy::Reactive {
                    target_utilization: 0.6,
                    check_interval: Duration::from_secs(300),
                    min_instances: 1,
                },
                ..Default::default()
            },
        );
        let winner = if sl.cost < peak.cost.min(reactive.cost) {
            "serverless"
        } else if reactive.cost < peak.cost {
            "vm reactive"
        } else {
            "vm@peak"
        };
        t.row([
            format!("{ratio:.0}"),
            w.len().to_string(),
            fmt_usd(sl.cost),
            fmt_usd(peak.cost),
            fmt_usd(reactive.cost),
            winner.to_string(),
        ]);
    }
    // The crossover: sustained saturating load.
    let spec = WorkloadSpec::Poisson { rate: 300.0 };
    let w = spec.generate(
        Duration::from_secs(3600),
        &LatencyModel::Constant(Duration::from_millis(500)),
        ByteSize::gb(1),
        0xE1B,
    );
    let sl = simulate_serverless(&w, &ServerlessConfig::default());
    let peak = simulate_vm_fleet(
        &w,
        &VmFleetConfig {
            policy: VmScalingPolicy::FixedAtPeak,
            ..Default::default()
        },
    );
    t.row([
        "sustained".to_string(),
        w.len().to_string(),
        fmt_usd(sl.cost),
        fmt_usd(peak.cost),
        "-".to_string(),
        if peak.cost < sl.cost {
            "vm@peak"
        } else {
            "serverless"
        }
        .to_string(),
    ]);
    t.print();
}

/// E2 — §5.2 (Ishakian et al.): cold starts add significant overhead;
/// keep-alive and provisioned concurrency are the mitigations.
fn e2_cold_starts() {
    banner(
        "E2",
        "cold vs warm start latency and the keep-alive / pre-warming ablation",
    );
    let spec = WorkloadSpec::Poisson { rate: 0.5 };
    let w = spec.generate(
        Duration::from_secs(2 * 3600),
        &typical_duration_model(),
        ByteSize::mb(512),
        0xE2,
    );
    let mut t = Table::new([
        "keep-alive",
        "provisioned",
        "cold %",
        "p50",
        "p99",
        "container-s",
    ]);
    for (keep, prov) in [
        (Duration::from_secs(10), 0),
        (Duration::from_secs(60), 0),
        (Duration::from_secs(600), 0),
        (Duration::from_secs(600), 4),
    ] {
        let cfg = ServerlessConfig {
            keep_alive: keep,
            provisioned: prov,
            ..Default::default()
        };
        let out = simulate_serverless(&w, &cfg);
        t.row([
            format!("{}s", keep.as_secs()),
            prov.to_string(),
            format!("{:.1}%", out.cold_fraction() * 100.0),
            fmt_dur(out.latency_us.quantile_duration(0.5)),
            fmt_dur(out.latency_us.quantile_duration(0.99)),
            format!("{:.0}", out.container_seconds),
        ]);
    }
    t.print();
}

/// E3 — §4.4: persistent stores lack the performance ephemeral state
/// exchange needs; Jiffy is the in-memory answer.
fn e3_state_exchange() {
    banner(
        "E3",
        "ephemeral state exchange: Jiffy (measured) vs S3-class persistent store (calibrated model)",
    );
    let clock: SharedClock = Arc::new(VirtualClock::new());
    let persistent = PersistentStore::new(clock.clone());
    let jiffy = Jiffy::new(
        JiffyConfig {
            block_size: ByteSize::mb(2),
            blocks_per_node: 4096,
            ..Default::default()
        },
        Arc::new(WallClock::new()),
    );
    let kv = jiffy.create_kv("/bench/exchange", 8).expect("kv");
    let mut t = Table::new([
        "object size",
        "jiffy put",
        "jiffy get",
        "s3-model put",
        "s3-model get",
        "speedup",
    ]);
    for size in [1024usize, 64 * 1024, 1024 * 1024] {
        let payload = vec![0xABu8; size];
        let iters = 200;
        // Jiffy: measured wall time of the real in-memory implementation.
        let t0 = Instant::now();
        for i in 0..iters {
            kv.put(&(i as u64).to_le_bytes(), &payload).expect("put");
        }
        let j_put = t0.elapsed() / iters;
        let t0 = Instant::now();
        for i in 0..iters {
            let _ = kv.get(&(i as u64).to_le_bytes()).expect("get");
        }
        let j_get = t0.elapsed() / iters;
        // Persistent store: injected S3-calibrated latency on a virtual
        // clock (the model is the measurement).
        let v0 = clock.now();
        for i in 0..iters {
            persistent.put(&(i as u64).to_le_bytes(), &payload);
        }
        let s_put = (clock.now() - v0) / iters;
        let v0 = clock.now();
        for i in 0..iters {
            let _ = persistent.get(&(i as u64).to_le_bytes());
        }
        let s_get = (clock.now() - v0) / iters;
        let speedup = s_get.as_secs_f64() / j_get.as_secs_f64().max(1e-12);
        t.row([
            ByteSize::b(size as u64).to_string(),
            fmt_dur(j_put),
            fmt_dur(j_get),
            fmt_dur(s_put),
            fmt_dur(s_get),
            format!("{speedup:.0}x (get)"),
        ]);
    }
    t.print();
    println!("(jiffy columns: measured wall time; s3 columns: calibrated latency model)");
}

/// E4 — §4.4 insight 2: hierarchical namespaces confine re-partitioning to
/// the scaling tenant; a global address space disturbs everyone.
fn e4_isolation() {
    banner(
        "E4",
        "scaling tenant A: bytes moved, and how many belong to tenant B",
    );
    let keys_per_tenant = 2000u64;
    let value = vec![0u8; 64];

    // Jiffy: per-tenant KV objects.
    let jiffy = Jiffy::new(
        JiffyConfig {
            blocks_per_node: 4096,
            ..Default::default()
        },
        Arc::new(WallClock::new()),
    );
    let a = jiffy.create_kv("/tenant-a/state", 4).expect("kv a");
    let b = jiffy.create_kv("/tenant-b/state", 4).expect("kv b");
    for i in 0..keys_per_tenant {
        a.put(&i.to_le_bytes(), &value).expect("put");
        b.put(&i.to_le_bytes(), &value).expect("put");
    }
    let jiffy_moved = a.scale_to(8).expect("scale");

    // Global store: one keyspace.
    let global = GlobalStore::new(4);
    for i in 0..keys_per_tenant {
        global.put("tenant-a", &i.to_le_bytes(), &value);
        global.put("tenant-b", &i.to_le_bytes(), &value);
    }
    let report = global.scale_to("tenant-a", 8);

    let mut t = Table::new(["system", "total bytes moved", "tenant B bytes moved"]);
    t.row([
        "jiffy (namespaces)".to_string(),
        jiffy_moved.to_string(),
        "0".to_string(),
    ]);
    t.row([
        "global address space".to_string(),
        report.total_moved.to_string(),
        report.other_tenants_moved.to_string(),
    ]);
    t.print();
}

/// E5 — §4.4 insight 1: short-lived working sets multiplex in the shared
/// pool; peak << sum of per-app peaks.
fn e5_multiplexing() {
    banner(
        "E5",
        "shared-pool peak vs sum of per-application peaks (staggered ephemeral jobs)",
    );
    let jiffy = Jiffy::new(
        JiffyConfig {
            memory_nodes: 4,
            blocks_per_node: 4096,
            block_size: ByteSize::kb(64),
            ..Default::default()
        },
        Arc::new(WallClock::new()),
    );
    let apps = 12;
    let blob = vec![0u8; 48 * 64 * 1024]; // 48 blocks per app
    for i in 0..apps {
        let path = format!("/app-{i}/scratch");
        let f = jiffy.create_file(path.as_str()).expect("file");
        f.append(&blob).expect("write");
        // Job finishes; ephemeral state is consumed and removed before the
        // next job starts (the time-multiplexing the paper describes).
        jiffy
            .remove_namespace(format!("/app-{i}").as_str())
            .expect("rm");
    }
    let (pool_peak, sum_peaks) = jiffy.multiplexing_report();
    let mut t = Table::new(["metric", "blocks", "memory"]);
    t.row([
        "shared-pool peak".to_string(),
        pool_peak.to_string(),
        (ByteSize::kb(64) * pool_peak).to_string(),
    ]);
    t.row([
        "sum of per-app peaks (static provisioning)".to_string(),
        sum_peaks.to_string(),
        (ByteSize::kb(64) * sum_peaks).to_string(),
    ]);
    t.row([
        "multiplexing saving".to_string(),
        format!("{:.1}x", sum_peaks as f64 / pool_peak.max(1) as f64),
        "-".to_string(),
    ]);
    t.print();
}

/// E6 — Figure 3: the Count-Min Pulsar function; accuracy vs the analytic
/// bound and raw sketch throughput.
fn e6_countmin_function() {
    banner(
        "E6",
        "Count-Min as a Pulsar function: estimate error vs eps*N bound (Zipf stream)",
    );
    let n_events = 100_000usize;
    let universe = 10_000;
    let zipf = Zipf::new(universe, 1.05);
    let mut rng = det_rng(0xE6);
    let stream: Vec<u64> = (0..n_events)
        .map(|_| zipf.sample(&mut rng) as u64)
        .collect();
    let mut truth = vec![0u64; universe];
    for &i in &stream {
        truth[i as usize] += 1;
    }

    let mut t = Table::new([
        "eps",
        "width x depth",
        "sketch bytes",
        "mean overest",
        "max overest",
        "bound eps*N",
    ]);
    for eps in [0.01, 0.001, 0.0001] {
        let mut cm = CountMinSketch::with_error_bounds(eps, 0.01, 128);
        for &i in &stream {
            cm.add(&i.to_le_bytes(), 1);
        }
        let mut total_err = 0u64;
        let mut max_err = 0u64;
        for (i, &tr) in truth.iter().enumerate() {
            let est = cm.estimate(&(i as u64).to_le_bytes());
            let err = est - tr;
            total_err += err;
            max_err = max_err.max(err);
        }
        t.row([
            format!("{eps}"),
            format!("{}x{}", cm.width(), cm.depth()),
            cm.size_bytes().to_string(),
            format!("{:.2}", total_err as f64 / universe as f64),
            max_err.to_string(),
            format!("{:.0}", eps * n_events as f64),
        ]);
    }
    t.print();

    // End-to-end through the Pulsar function runtime, wall-clock.
    let cluster = PulsarCluster::new(PulsarConfig::default(), Arc::new(WallClock::new()));
    let jiffy = Jiffy::with_defaults();
    let rt = FunctionRuntime::new(cluster.clone(), jiffy);
    cluster.create_topic("events", 1).expect("topic");
    let mut sketch = CountMinSketch::with_error_bounds(0.001, 0.01, 128);
    rt.register(
        FunctionConfig {
            name: "cm".into(),
            inputs: vec!["events".into()],
            output: None,
        },
        Box::new(move |msg, _| {
            sketch.add(&msg.payload, 1);
            let _ = sketch.estimate(&msg.payload);
            None
        }),
    )
    .expect("register");
    let producer = cluster.producer("events").expect("producer");
    let publish_n = 20_000;
    let t0 = Instant::now();
    for &i in stream.iter().take(publish_n) {
        producer.send(&i.to_le_bytes()).expect("send");
    }
    let publish_elapsed = t0.elapsed();
    let t0 = Instant::now();
    rt.run_available("cm").expect("pump");
    let process_elapsed = t0.elapsed();
    println!(
        "pipeline throughput: publish {:.0} msg/s, function {:.0} msg/s (wall-clock, {} messages)",
        publish_n as f64 / publish_elapsed.as_secs_f64(),
        publish_n as f64 / process_elapsed.as_secs_f64(),
        publish_n
    );
}

/// E7 — §4.2 (Lopez et al.): composition billing audit.
fn e7_orchestration_billing() {
    banner(
        "E7",
        "no-double-billing audit: platform bill delta == sum of basic function costs",
    );
    let clock: SharedClock = Arc::new(VirtualClock::new());
    let platform = FaasPlatform::new(PlatformConfig::deterministic(), clock);
    for name in ["parse", "enrich", "store", "notify"] {
        platform
            .register(FunctionSpec::new(name, "tenant", |ctx| {
                Ok(ctx.payload.to_vec())
            }))
            .expect("register");
    }
    let orch = Orchestrator::new(platform.clone());
    orch.register_composition(
        "ingest",
        Composition::pipeline(["parse", "enrich", "store"]),
    );
    let comp = Composition::Sequence(vec![
        Composition::Map(Box::new(Composition::Named("ingest".into()))),
        Composition::Task("notify".into()),
    ]);
    let batch: Vec<Vec<u8>> = (0..10u8).map(|i| vec![i]).collect();
    let before = platform.billing().total("tenant");
    let report = orch.run(&comp, &frame::pack(&batch)).expect("run");
    let after = platform.billing().total("tenant");

    let mut t = Table::new(["metric", "value"]);
    t.row([
        "basic function executions",
        &report.invocation_count().to_string(),
    ]);
    t.row(["sum of basic costs", &fmt_usd(report.total_cost())]);
    t.row(["platform bill delta", &fmt_usd(after - before)]);
    t.row([
        "orchestration surcharge",
        &fmt_usd((after - before) - report.total_cost()),
    ]);
    t.print();
}

/// E8 — §5.2 (Gupta et al.): coded redundancy vs stragglers.
fn e8_ml_stragglers() {
    banner(
        "E8",
        "parameter-server training: straggler impact and coded-gradient mitigation",
    );
    use taureau_apps::ml::{synthetic_logreg, train_serverless, TrainingConfig};
    let clock = VirtualClock::shared();
    let platform = FaasPlatform::new(PlatformConfig::deterministic(), clock.clone());
    let jiffy = Jiffy::new(JiffyConfig::default(), clock);
    let (ds, _) = synthetic_logreg(2000, 8, 0xE8);
    let ds = Arc::new(ds);
    let mut t = Table::new([
        "straggler p",
        "redundancy",
        "job time",
        "final loss",
        "invocations",
    ]);
    for (p, r) in [(0.0, 1), (0.2, 1), (0.2, 2), (0.2, 3), (0.4, 1), (0.4, 3)] {
        let cfg = TrainingConfig {
            lr: 0.5,
            epochs: 15,
            workers: 8,
            straggler_prob: p,
            straggler_slowdown: 8.0,
            redundancy: r,
            compute_per_example: Duration::from_micros(50),
            seed: 0x5EED,
        };
        let out = train_serverless(
            &platform,
            &jiffy,
            Arc::clone(&ds),
            &cfg,
            &format!("e8-{p}-{r}"),
        );
        t.row([
            format!("{p}"),
            r.to_string(),
            fmt_dur(out.total_time()),
            format!("{:.4}", out.loss_history.last().unwrap()),
            out.invocations.to_string(),
        ]);
    }
    t.print();
}

/// E9 — §5.1 (Werner et al.): matmul algorithms and the distributed run
/// with ephemeral intermediates.
fn e9_matmul() {
    banner(
        "E9",
        "matrix multiply: local algorithms (wall time) and the serverless tiled job",
    );
    use taureau_apps::matmul::{distributed_multiply, Matrix};
    let mut t = Table::new(["n", "naive", "blocked(32)", "strassen", "max |diff|"]);
    for n in [128usize, 256] {
        let a = Matrix::random(n, n, 0xA);
        let b = Matrix::random(n, n, 0xB);
        let t0 = Instant::now();
        let c_naive = a.mul_naive(&b);
        let naive = t0.elapsed();
        let t0 = Instant::now();
        let c_blocked = a.mul_blocked(&b, 32);
        let blocked = t0.elapsed();
        let t0 = Instant::now();
        let c_str = a.strassen(&b);
        let strassen = t0.elapsed();
        let diff = c_naive
            .max_abs_diff(&c_blocked)
            .unwrap()
            .max(c_naive.max_abs_diff(&c_str).unwrap());
        t.row([
            n.to_string(),
            fmt_dur(naive),
            fmt_dur(blocked),
            fmt_dur(strassen),
            format!("{diff:.1e}"),
        ]);
    }
    t.print();

    let clock = VirtualClock::shared();
    let platform = FaasPlatform::new(PlatformConfig::deterministic(), clock.clone());
    let jiffy = Jiffy::new(
        JiffyConfig {
            blocks_per_node: 8192,
            ..Default::default()
        },
        clock,
    );
    let n = 128;
    let a = Matrix::random(n, n, 1);
    let b = Matrix::random(n, n, 2);
    let mut t = Table::new(["grid", "tile invocations", "billed", "correct"]);
    for grid in [2usize, 4, 8] {
        let before = platform.billing().total("matmul");
        let (c, inv) = distributed_multiply(&platform, &jiffy, &a, &b, grid);
        let cost = platform.billing().total("matmul") - before;
        let ok = a.mul_naive(&b).max_abs_diff(&c).unwrap() < 1e-9;
        t.row([
            format!("{grid}x{grid}"),
            inv.to_string(),
            fmt_usd(cost),
            ok.to_string(),
        ]);
    }
    t.print();
}

/// E10 — §5.1 (Toader et al.): Pregel over serverless workers + Jiffy.
fn e10_graph() {
    banner(
        "E10",
        "serverless Pregel: PageRank and SSSP vs sequential references",
    );
    use taureau_apps::graph::{pagerank_seq, run_pregel, sssp_seq, Graph, PageRank, Sssp};
    let clock = VirtualClock::shared();
    let platform = FaasPlatform::new(PlatformConfig::deterministic(), clock.clone());
    let jiffy = Jiffy::new(
        JiffyConfig {
            blocks_per_node: 8192,
            ..Default::default()
        },
        clock,
    );
    let g = Arc::new(Graph::random(2000, 16_000, 0xE10));
    let mut t = Table::new([
        "algorithm",
        "partitions",
        "supersteps",
        "invocations",
        "messages",
        "max err vs seq",
    ]);
    for parts in [4usize, 16] {
        let out = run_pregel(
            &platform,
            &jiffy,
            Arc::clone(&g),
            Arc::new(PageRank { d: 0.85, iters: 10 }),
            parts,
            &format!("e10-pr-{parts}"),
        );
        let seq = pagerank_seq(&g, 0.85, 10);
        let err = out
            .values
            .iter()
            .zip(&seq)
            .map(|(a, b)| (a - b).abs())
            .fold(0.0f64, f64::max);
        t.row([
            "pagerank".to_string(),
            parts.to_string(),
            out.supersteps.to_string(),
            out.invocations.to_string(),
            out.messages.to_string(),
            format!("{err:.1e}"),
        ]);
    }
    let out = run_pregel(
        &platform,
        &jiffy,
        Arc::clone(&g),
        Arc::new(Sssp { source: 0 }),
        8,
        "e10-sssp",
    );
    let seq = sssp_seq(&g, 0);
    let err = out
        .values
        .iter()
        .zip(&seq)
        .filter(|(_, b)| b.is_finite())
        .map(|(a, b)| (a - b).abs())
        .fold(0.0f64, f64::max);
    t.row([
        "sssp".to_string(),
        "8".to_string(),
        out.supersteps.to_string(),
        out.invocations.to_string(),
        out.messages.to_string(),
        format!("{err:.1e}"),
    ]);
    t.print();
}

/// E11 — §2 demand-driven execution / §6 SLA: autoscaler policy trade-offs.
fn e11_autoscaling() {
    banner(
        "E11",
        "VM autoscaling policies vs serverless under bursty load: cost, tail latency, utilization",
    );
    let spec = WorkloadSpec::Bursty {
        on_rate: 300.0,
        on_mean: Duration::from_secs(60),
        off_mean: Duration::from_secs(300),
    };
    let w = spec.generate(
        Duration::from_secs(6 * 3600),
        &typical_duration_model(),
        ByteSize::mb(512),
        0xE11,
    );
    let mut t = Table::new(["policy", "cost", "p50", "p99", "utilization"]);
    let fixed_peak = simulate_vm_fleet(
        &w,
        &VmFleetConfig {
            policy: VmScalingPolicy::FixedAtPeak,
            ..Default::default()
        },
    );
    t.row([
        "vm fixed@peak".to_string(),
        fmt_usd(fixed_peak.cost),
        fmt_dur(fixed_peak.latency_us.quantile_duration(0.5)),
        fmt_dur(fixed_peak.latency_us.quantile_duration(0.99)),
        format!("{:.1}%", fixed_peak.mean_utilization * 100.0),
    ]);
    let small = simulate_vm_fleet(
        &w,
        &VmFleetConfig {
            pricing: VmPricing::default(),
            policy: VmScalingPolicy::Fixed(1),
        },
    );
    t.row([
        "vm fixed@1".to_string(),
        fmt_usd(small.cost),
        fmt_dur(small.latency_us.quantile_duration(0.5)),
        fmt_dur(small.latency_us.quantile_duration(0.99)),
        format!("{:.1}%", small.mean_utilization * 100.0),
    ]);
    for target in [0.5, 0.8] {
        let r = simulate_vm_fleet(
            &w,
            &VmFleetConfig {
                policy: VmScalingPolicy::Reactive {
                    target_utilization: target,
                    check_interval: Duration::from_secs(60),
                    min_instances: 1,
                },
                ..Default::default()
            },
        );
        t.row([
            format!("vm reactive@{target}"),
            fmt_usd(r.cost),
            fmt_dur(r.latency_us.quantile_duration(0.5)),
            fmt_dur(r.latency_us.quantile_duration(0.99)),
            format!("{:.1}%", r.mean_utilization * 100.0),
        ]);
    }
    let sl = simulate_serverless(&w, &ServerlessConfig::default());
    t.row([
        "serverless".to_string(),
        fmt_usd(sl.cost),
        fmt_dur(sl.latency_us.quantile_duration(0.5)),
        fmt_dur(sl.latency_us.quantile_duration(0.99)),
        format!("({:.1}% cold)", sl.cold_fraction() * 100.0),
    ]);
    t.print();
}

/// E12 — §6 look-forward: complementary bin-packing.
fn e12_binpacking() {
    banner(
        "E12",
        "function placement: packing policies on a CPU-heavy/memory-heavy mix",
    );
    use rand::Rng;
    let mut rng = det_rng(0xE12);
    let items: Vec<Demand> = (0..400)
        .map(|_| {
            if rng.gen::<bool>() {
                Demand::new(rng.gen_range(0.35..0.65), rng.gen_range(0.05..0.20))
            } else {
                Demand::new(rng.gen_range(0.05..0.20), rng.gen_range(0.35..0.65))
            }
        })
        .collect();
    let mut t = Table::new([
        "policy",
        "nodes used",
        "mean |cpu-mem| imbalance",
        "stranded",
    ]);
    for (name, policy) in [
        ("first-fit", PackingPolicy::FirstFit),
        ("best-fit", PackingPolicy::BestFit),
        ("worst-fit", PackingPolicy::WorstFit),
        ("complementary (§6)", PackingPolicy::Complementary),
    ] {
        let out = pack(&items, policy);
        t.row([
            name.to_string(),
            out.node_count().to_string(),
            format!("{:.3}", out.mean_imbalance()),
            format!("{:.1}%", out.stranded_fraction() * 100.0),
        ]);
    }
    t.print();
}

/// E24 — the stack monitoring itself: telemetry from a mixed FaaS
/// workload is pumped over Pulsar into a monitor that folds it into KLL
/// latency sketches, evaluates an SLO through an injected latency fault
/// (the alert must fire exactly once and resolve exactly once), and
/// flight-records a failed invocation into the Jiffy blackbox. A wall
/// clock coda measures the per-invoke cost of the telemetry sink.
fn e24_self_monitoring(bench: &mut Vec<(String, String)>) {
    banner(
        "E24",
        "self-monitoring: SLO alert fires+resolves around an injected fault; sketch quantiles match exact within rank-error bound; failures leave a blackbox dump",
    );

    // -- (a) mixed workload with a mid-run latency fault -----------------
    let clock = VirtualClock::shared();
    let tracer = Tracer::new(clock.clone());
    let sink = TelemetrySink::new(65_536);
    tracer.set_telemetry(sink.clone());
    let platform = FaasPlatform::new(PlatformConfig::deterministic(), clock.clone());
    platform.set_tracer(tracer.clone());
    let jiffy = Jiffy::new(JiffyConfig::default(), clock.clone());
    jiffy.set_tracer(tracer.clone());
    let cluster = PulsarCluster::new(PulsarConfig::default(), clock.clone());
    let mut pump = TelemetryPump::new(sink, &cluster).expect("pump");
    let mut monitor = Monitor::with_config(
        &cluster,
        clock.clone(),
        MonitorConfig {
            fast_window: Duration::from_millis(200),
            slow_window: Duration::from_millis(800),
            min_samples: 5,
            ..MonitorConfig::default()
        },
    )
    .expect("monitor")
    .with_policy(SloPolicy::parse("p99 faas.invoke < 12ms").expect("policy"))
    .with_policy(SloPolicy::parse("error_rate faas.invoke < 25%").expect("policy"))
    .with_flight_recorder(&tracer)
    .with_blackbox(&jiffy);

    let fault = Arc::new(AtomicBool::new(false));
    let api_fault = fault.clone();
    let api_clock = clock.clone();
    platform
        .register(FunctionSpec::new("api", "tenant", move |_ctx| {
            api_clock.advance(if api_fault.load(Ordering::Relaxed) {
                Duration::from_millis(25)
            } else {
                Duration::from_millis(1)
            });
            Ok(Vec::new())
        }))
        .expect("register");
    let batch_clock = clock.clone();
    platform
        .register(FunctionSpec::new("batch", "tenant", move |_ctx| {
            batch_clock.advance(Duration::from_millis(8));
            Ok(Vec::new())
        }))
        .expect("register");
    platform
        .register(FunctionSpec::new("flaky", "tenant", |_ctx| {
            Err("injected handler failure".to_string())
        }))
        .expect("register");
    for f in ["api", "batch", "flaky"] {
        platform.provision(f, 1).expect("provision");
    }

    const ROUNDS: u32 = 240;
    const FAULT: std::ops::Range<u32> = 100..140;
    for round in 0..ROUNDS {
        fault.store(FAULT.contains(&round), Ordering::Relaxed);
        platform.invoke("api", Vec::new()).expect("api");
        if round % 4 == 0 {
            platform.invoke("batch", Vec::new()).expect("batch");
        }
        if round == 150 {
            assert!(platform.invoke("flaky", Vec::new()).is_err());
        }
        clock.advance(Duration::from_millis(2));
        pump.pump();
        monitor.poll().expect("poll");
    }

    println!(
        "workload: {ROUNDS} rounds ({} invocations), latency fault in rounds {}..{}, 1 injected handler failure",
        monitor.op_count("faas.invoke"),
        FAULT.start,
        FAULT.end
    );
    println!("\nalert timeline:");
    for event in monitor.alerts() {
        println!("  {event}");
    }
    let fired = monitor
        .alerts()
        .iter()
        .filter(|a| matches!(a.state, taureau_monitor::AlertState::Firing))
        .count();
    let resolved = monitor.alerts().len() - fired;
    assert_eq!(fired, 1, "latency alert must fire exactly once");
    assert_eq!(resolved, 1, "latency alert must resolve exactly once");
    assert!(monitor.active_alerts().is_empty(), "run ends healthy");

    // -- (b) sketch quantiles vs exact, from the flight recorder ---------
    // The tracer ring holds every span of the run (no drops below the
    // retention cap), so exact per-op latency distributions are in hand
    // to grade the monitor's KLL estimates.
    assert_eq!(tracer.dropped_spans(), 0, "retention cap not hit");
    let spans = tracer.spans();
    let mut t = Table::new([
        "op",
        "events",
        "p50 sketch",
        "p50 exact",
        "p99 sketch",
        "p99 exact",
        "max rank err",
    ]);
    // Rank error with tie awareness: the workload's latencies are heavily
    // discretized (most invokes take exactly warm + handler time), so an
    // estimate equal to a mass point spans a whole rank interval. Error is
    // the distance from q·n to the interval [#exact < est, #exact ≤ est].
    let rank_err = |exact: &[f64], est: f64, q: f64| -> f64 {
        let n = exact.len() as f64;
        let lo = exact.iter().filter(|&&v| v < est).count() as f64;
        let hi = exact.iter().filter(|&&v| v <= est).count() as f64;
        let target = q * n;
        ((lo - target).max(target - hi).max(0.0)) / n
    };
    for op in ["faas.invoke", "faas.execute", "faas.startup"] {
        let mut exact: Vec<f64> = spans
            .iter()
            .filter(|s| s.name == op)
            .map(|s| s.duration().as_micros() as f64)
            .collect();
        exact.sort_by(f64::total_cmp);
        assert_eq!(
            monitor.op_count(op),
            exact.len() as u64,
            "monitor saw every {op} span"
        );
        let p50 = monitor.quantile_us(op, 0.50).expect("p50");
        let p99 = monitor.quantile_us(op, 0.99).expect("p99");
        let worst = rank_err(&exact, p50, 0.50).max(rank_err(&exact, p99, 0.99));
        // KLL with k=200 has rank error well under 1%; 4% is generous.
        assert!(worst <= 0.04, "{op}: rank error {worst:.4} out of bound");
        t.row([
            op.to_string(),
            exact.len().to_string(),
            fmt_dur(Duration::from_micros(p50 as u64)),
            fmt_dur(Duration::from_micros(exact[exact.len() / 2] as u64)),
            fmt_dur(Duration::from_micros(p99 as u64)),
            fmt_dur(Duration::from_micros(
                exact[(exact.len() - 1).min((0.99 * exact.len() as f64) as usize)] as u64,
            )),
            format!("{:.4}", worst),
        ]);
    }
    t.print();

    // -- (c) the blackbox --------------------------------------------------
    println!("\nblackbox dumps under /blackbox:");
    for id in monitor.dump_ids() {
        let summary = jiffy
            .open_file(format!("/blackbox/{id}/summary.txt").as_str())
            .expect("dump summary")
            .contents()
            .expect("dump contents");
        println!("  /blackbox/{id}  (summary.txt {} bytes)", summary.len());
    }
    assert!(
        monitor.dump_ids().iter().any(|d| d.starts_with("alert-")),
        "firing alert dumped recent history"
    );
    assert!(
        monitor
            .dump_ids()
            .iter()
            .any(|d| d.starts_with("invoke-failure-")),
        "failed invocation dumped its trace"
    );

    println!("\nhealth report:");
    for line in monitor.health_report().render_text().lines() {
        println!("  {line}");
    }

    // -- (d) per-invoke overhead of the telemetry sink, wall clock --------
    // Zero-latency platform, trivial handler: the loop is almost pure
    // platform overhead, the worst case for the sink's relative cost.
    let overhead_run = |telemetry: bool| -> Duration {
        let clock = Arc::new(WallClock::new());
        let tracer = Tracer::new(clock.clone());
        let cluster = PulsarCluster::new(PulsarConfig::default(), clock.clone());
        let mut pump = None;
        if telemetry {
            let sink = TelemetrySink::new(1 << 20);
            tracer.set_telemetry(sink.clone());
            pump = Some(TelemetryPump::new(sink, &cluster).expect("pump"));
        }
        let platform = FaasPlatform::new(
            PlatformConfig {
                cold_start: LatencyModel::Constant(Duration::ZERO),
                warm_start: LatencyModel::Constant(Duration::ZERO),
                ..PlatformConfig::default()
            },
            clock,
        );
        platform.set_tracer(tracer);
        platform
            .register(FunctionSpec::new("noop", "tenant", |_ctx| Ok(Vec::new())))
            .expect("register");
        const N: u32 = 10_000;
        let t0 = Instant::now();
        for i in 0..N {
            platform.invoke("noop", Vec::new()).expect("invoke");
            if telemetry && i % 1_000 == 999 {
                if let Some(p) = pump.as_mut() {
                    p.pump();
                }
            }
        }
        t0.elapsed() / N
    };
    // Two disabled runs bracket the measurement noise: the disabled path
    // (one `Option<TelemetrySink>` check, the PR-2 tracing baseline) must
    // sit inside that bracket, while the enabled path pays for real work.
    let off1 = overhead_run(false);
    let off2 = overhead_run(false);
    let on = overhead_run(true);
    bench.push((
        "e24_overhead".to_string(),
        format!(
            "{{\"per_invoke_ns\": {{\"disabled_run1\": {}, \"disabled_run2\": {}, \"sink_and_pump\": {}}}}}",
            off1.as_nanos(),
            off2.as_nanos(),
            on.as_nanos()
        ),
    ));
    let delta = |d: Duration| {
        format!(
            "{:+.1}%",
            100.0 * (d.as_secs_f64() - off1.as_secs_f64()) / off1.as_secs_f64().max(1e-12)
        )
    };
    let mut t = Table::new(["telemetry", "per-invoke", "delta"]);
    t.row([
        "disabled (run 1)".to_string(),
        fmt_dur(off1),
        "baseline".to_string(),
    ]);
    t.row(["disabled (run 2)".to_string(), fmt_dur(off2), delta(off2)]);
    t.row(["sink + pump".to_string(), fmt_dur(on), delta(on)]);
    t.print();
    println!("(disabled run 2 vs run 1 is the noise floor; the disabled path adds one None check over the tracing-only baseline)");
}

/// E25 — the sharded concurrency core: 1/2/4/8 threads drive each
/// subsystem's hot path, sharded implementation vs the retained
/// coarse-lock path. With striped locks, disjoint keys (different apps,
/// topics, functions, counter stripes) proceed in parallel; the coarse
/// baseline serializes every operation on one mutex. On a multi-core
/// machine the sharded column scales toward the core count while the
/// coarse column stays flat; on a single core both are flat (thread
/// parallelism cannot exceed the hardware), so the CI gate runs on
/// multi-core runners.
fn e25_contention_scaling(bench: &mut Vec<(String, String)>) {
    banner(
        "E25",
        "contention scaling: sharded locks scale with threads on disjoint keys; the coarse-lock baseline serializes",
    );
    const THREADS: &[usize] = &[1, 2, 4, 8];
    let cores = std::thread::available_parallelism().map_or(1, |n| n.get());
    println!("(hardware threads available: {cores})");

    /// Run `threads` workers, each performing `ops_per_thread` calls of
    /// `op(worker_index, iteration)`; aggregate wall-clock ops/sec.
    fn drive(threads: usize, ops_per_thread: u64, op: impl Fn(usize, u64) + Sync) -> f64 {
        let t0 = Instant::now();
        std::thread::scope(|s| {
            for t in 0..threads {
                let op = &op;
                s.spawn(move || {
                    for i in 0..ops_per_thread {
                        op(t, i);
                    }
                });
            }
        });
        (threads as u64 * ops_per_thread) as f64 / t0.elapsed().as_secs_f64().max(1e-9)
    }

    fn fmt_ops(v: f64) -> String {
        if v >= 1e6 {
            format!("{:.2}M/s", v / 1e6)
        } else {
            format!("{:.1}k/s", v / 1e3)
        }
    }

    let max_threads = *THREADS.last().expect("thread counts");
    let value = vec![0u8; 64];

    // -- Jiffy KV: per-app namespaces (sharded) vs baseline::GlobalStore --
    let jiffy = Jiffy::new(
        JiffyConfig {
            blocks_per_node: 4096,
            ..Default::default()
        },
        Arc::new(WallClock::new()),
    );
    let kvs: Vec<_> = (0..max_threads)
        .map(|t| {
            jiffy
                .create_kv(format!("/e25-app{t}/kv").as_str(), 4)
                .expect("create kv")
        })
        .collect();
    let jiffy_run = |threads: usize| {
        drive(threads, 20_000, |t, i| {
            let key = (i % 256).to_le_bytes();
            kvs[t].put(&key, &value).expect("put");
            let _ = kvs[t].get(&key).expect("get");
        })
    };
    let global = GlobalStore::new(4);
    let tenants: Vec<String> = (0..max_threads).map(|t| format!("e25-app{t}")).collect();
    let jiffy_coarse_run = |threads: usize| {
        drive(threads, 20_000, |t, i| {
            let key = (i % 256).to_le_bytes();
            global.put(&tenants[t], &key, &value);
            let _ = global.get(&tenants[t], &key);
        })
    };

    // -- Pulsar publish: sharded topic/ledger maps vs one global mutex ----
    let cluster = PulsarCluster::new(
        PulsarConfig {
            max_entries_per_ledger: 1 << 20,
            ..PulsarConfig::default()
        },
        WallClock::shared(),
    );
    let producers: Vec<_> = (0..max_threads)
        .map(|t| {
            let topic = format!("e25/t{t}");
            cluster.create_topic(&topic, 1).expect("topic");
            cluster.producer(&topic).expect("producer")
        })
        .collect();
    let pulsar_run = |threads: usize| {
        drive(threads, 10_000, |t, i| {
            producers[t].send(&i.to_le_bytes()).expect("publish");
        })
    };
    let coarse_cluster = PulsarCluster::new(
        PulsarConfig {
            max_entries_per_ledger: 1 << 20,
            ..PulsarConfig::default()
        },
        WallClock::shared(),
    );
    let coarse_producers: Vec<_> = (0..max_threads)
        .map(|t| {
            let topic = format!("e25c/t{t}");
            coarse_cluster.create_topic(&topic, 1).expect("topic");
            coarse_cluster.producer(&topic).expect("producer")
        })
        .collect();
    let publish_gate = std::sync::Mutex::new(());
    let pulsar_coarse_run = |threads: usize| {
        drive(threads, 10_000, |t, i| {
            let _g = publish_gate.lock().expect("gate");
            coarse_producers[t].send(&i.to_le_bytes()).expect("publish");
        })
    };

    // -- FaaS invoke: sharded warm pool vs one global mutex ---------------
    let platform = FaasPlatform::new(
        PlatformConfig {
            cold_start: LatencyModel::Constant(Duration::ZERO),
            warm_start: LatencyModel::Constant(Duration::ZERO),
            ..PlatformConfig::default()
        },
        Arc::new(WallClock::new()),
    );
    for t in 0..max_threads {
        platform
            .register(FunctionSpec::new(
                format!("f{t}"),
                "e25",
                |_| Ok(Vec::new()),
            ))
            .expect("register");
    }
    let fnames: Vec<String> = (0..max_threads).map(|t| format!("f{t}")).collect();
    let faas_run = |threads: usize| {
        drive(threads, 5_000, |t, _| {
            platform.invoke(&fnames[t], Vec::new()).expect("invoke");
        })
    };
    let invoke_gate = std::sync::Mutex::new(());
    let faas_coarse_run = |threads: usize| {
        drive(threads, 5_000, |t, _| {
            let _g = invoke_gate.lock().expect("gate");
            platform.invoke(&fnames[t], Vec::new()).expect("invoke");
        })
    };

    // -- Metrics counters: striped cells vs a mutex-guarded u64 -----------
    let registry = MetricsRegistry::new();
    let counter = registry.counter("e25_ops");
    let metrics_run = |threads: usize| drive(threads, 500_000, |_, _| counter.inc());
    let coarse_count = std::sync::Mutex::new(0u64);
    let metrics_coarse_run = |threads: usize| {
        drive(threads, 500_000, |_, _| {
            *coarse_count.lock().expect("count") += 1;
        })
    };

    // -- drive everything and report --------------------------------------
    let subsystems: Vec<(&str, Vec<f64>, Vec<f64>)> = vec![
        (
            "jiffy kv",
            THREADS.iter().map(|&n| jiffy_run(n)).collect(),
            THREADS.iter().map(|&n| jiffy_coarse_run(n)).collect(),
        ),
        (
            "pulsar publish",
            THREADS.iter().map(|&n| pulsar_run(n)).collect(),
            THREADS.iter().map(|&n| pulsar_coarse_run(n)).collect(),
        ),
        (
            "faas invoke",
            THREADS.iter().map(|&n| faas_run(n)).collect(),
            THREADS.iter().map(|&n| faas_coarse_run(n)).collect(),
        ),
        (
            "metrics counter",
            THREADS.iter().map(|&n| metrics_run(n)).collect(),
            THREADS.iter().map(|&n| metrics_coarse_run(n)).collect(),
        ),
    ];

    let scaling = |rates: &[f64]| rates[2] / rates[0].max(1e-9); // 1 → 4 threads
    let mut t = Table::new([
        "subsystem",
        "variant",
        "1 thr",
        "2 thr",
        "4 thr",
        "8 thr",
        "1→4 scaling",
    ]);
    for (name, sharded, coarse) in &subsystems {
        t.row([
            name.to_string(),
            "sharded".to_string(),
            fmt_ops(sharded[0]),
            fmt_ops(sharded[1]),
            fmt_ops(sharded[2]),
            fmt_ops(sharded[3]),
            format!("{:.2}x", scaling(sharded)),
        ]);
        t.row([
            name.to_string(),
            "coarse lock".to_string(),
            fmt_ops(coarse[0]),
            fmt_ops(coarse[1]),
            fmt_ops(coarse[2]),
            fmt_ops(coarse[3]),
            format!("{:.2}x", scaling(coarse)),
        ]);
    }
    t.print();
    println!(
        "(jiffy coarse baseline is baseline::GlobalStore — the retained single-mutex path; \
         other coarse rows drive the same code through one global mutex)"
    );

    let json_rates = |rates: &[f64]| {
        rates
            .iter()
            .map(|r| format!("{r:.1}"))
            .collect::<Vec<_>>()
            .join(", ")
    };
    let subsystem_json = subsystems
        .iter()
        .map(|(name, sharded, coarse)| {
            let key = name.replace(' ', "_");
            format!(
                "    \"{key}\": {{\"sharded_ops_per_sec\": [{}], \"coarse_ops_per_sec\": [{}], \
                 \"sharded_scaling_1_to_4\": {:.3}, \"coarse_scaling_1_to_4\": {:.3}}}",
                json_rates(sharded),
                json_rates(coarse),
                scaling(sharded),
                scaling(coarse)
            )
        })
        .collect::<Vec<_>>()
        .join(",\n");
    bench.push((
        "e25".to_string(),
        format!(
            "{{\n    \"cores\": {cores},\n    \"threads\": [1, 2, 4, 8],\n    \
             \"subsystems\": {{\n{subsystem_json}\n    }}\n  }}"
        ),
    ));
}

/// E26 — the data plane moves payloads by reference and the broker
/// amortises ledger group commits across producer-side batches: publish
/// throughput grows with batch size, a Jiffy read allocates nothing, and a
/// DAG fan-out passes one buffer to every child instead of one copy each.
fn e26_zero_copy_batching(bench: &mut Vec<(String, String)>) {
    banner(
        "E26",
        "zero-copy data plane: batched publish amortises ledger appends; Jiffy reads and DAG fan-out edges allocate nothing per payload",
    );

    const BATCH_SIZES: &[usize] = &[1, 8, 64, 256];
    const MSGS: usize = 8192;
    const PAYLOAD: usize = 256;

    let payloads: Vec<Vec<u8>> = (0..MSGS)
        .map(|i| {
            let mut v = vec![0u8; PAYLOAD];
            v[..8].copy_from_slice(&(i as u64).to_le_bytes());
            v
        })
        .collect();

    // -- Pulsar: publish + dispatch throughput vs producer batch size -----
    let mut publish_rates: Vec<f64> = Vec::new();
    let mut dispatch_rates: Vec<f64> = Vec::new();
    let mut appends_per_msg: Vec<f64> = Vec::new();
    let mut publish_alloc_b_per_msg: Vec<f64> = Vec::new();
    for &b in BATCH_SIZES {
        let cluster = PulsarCluster::new(
            PulsarConfig {
                max_entries_per_ledger: 1 << 20,
                ..PulsarConfig::default()
            },
            WallClock::shared(),
        );
        cluster.create_topic("e26", 1).expect("topic");
        let p = cluster.producer("e26").expect("producer");
        let t0 = Instant::now();
        let (_, alloc_bytes) = alloc_delta(|| {
            for chunk in payloads.chunks(b) {
                if b == 1 {
                    p.send(&chunk[0]).expect("send");
                } else {
                    p.send_batch(chunk).expect("send_batch");
                }
            }
        });
        publish_rates.push(MSGS as f64 / t0.elapsed().as_secs_f64().max(1e-9));
        publish_alloc_b_per_msg.push(alloc_bytes as f64 / MSGS as f64);
        let appended = if b == 1 {
            MSGS as u64
        } else {
            cluster.metrics().counter("batch_entries_appended").get()
        };
        appends_per_msg.push(appended as f64 / MSGS as f64);

        let mut consumer = cluster
            .subscribe("e26", "s", SubscriptionMode::Exclusive)
            .expect("subscribe");
        let t1 = Instant::now();
        let mut got = 0usize;
        loop {
            let ms = consumer.receive_batch(512).expect("receive_batch");
            if ms.is_empty() {
                break;
            }
            for m in &ms {
                assert_eq!(m.payload.len(), PAYLOAD);
                consumer.ack(m.id).expect("ack");
            }
            got += ms.len();
        }
        assert_eq!(got, MSGS);
        dispatch_rates.push(MSGS as f64 / t1.elapsed().as_secs_f64().max(1e-9));
    }

    let fmt_rate = |v: f64| {
        if v >= 1e6 {
            format!("{:.2}M/s", v / 1e6)
        } else {
            format!("{:.1}k/s", v / 1e3)
        }
    };
    let mut t = Table::new([
        "batch",
        "publish",
        "dispatch",
        "ledger appends/msg",
        "alloc B/msg (publish)",
    ]);
    for (i, &b) in BATCH_SIZES.iter().enumerate() {
        t.row([
            format!("{b}"),
            fmt_rate(publish_rates[i]),
            fmt_rate(dispatch_rates[i]),
            format!("{:.4}", appends_per_msg[i]),
            format!("{:.0}", publish_alloc_b_per_msg[i]),
        ]);
    }
    t.print();
    println!(
        "(one ledger entry per batch: a batch of {} costs {:.1}% of the appends \
         unbatched publishing pays; payload {} B, {} messages per point)",
        64,
        100.0 * appends_per_msg[2] / appends_per_msg[0],
        PAYLOAD,
        MSGS
    );

    // -- Jiffy: allocations per read on the refcounted block store --------
    let jiffy = Jiffy::new(
        JiffyConfig {
            blocks_per_node: 4096,
            ..Default::default()
        },
        Arc::new(WallClock::new()),
    );
    let kv = jiffy.create_kv("/e26/kv", 2).expect("kv");
    for k in 0u64..256 {
        kv.put(&k.to_le_bytes(), &payloads[0]).expect("put");
    }
    const OPS: u64 = 50_000;
    let (get_allocs, _) = alloc_delta(|| {
        for i in 0..OPS {
            let v = kv.get(&(i % 256).to_le_bytes()).expect("get").expect("hit");
            std::hint::black_box(&v);
        }
    });
    let file = jiffy.create_file("/e26/file").expect("file");
    file.append(&vec![7u8; 64 * 1024]).expect("append");
    let (read_allocs, _) = alloc_delta(|| {
        for i in 0..OPS {
            let v = file.read((i % 60) * 1024, 4096).expect("read");
            std::hint::black_box(&v);
        }
    });
    let get_per_op = get_allocs as f64 / OPS as f64;
    let read_per_op = read_allocs as f64 / OPS as f64;
    println!(
        "\njiffy allocations/op over {OPS} warm ops: kv get {get_per_op:.3}, \
         file read (4 KB within a chunk) {read_per_op:.3} \
         (a get clones a refcount, not the value; a within-chunk read is a slice)"
    );

    // -- DAG fan-out: bytes allocated per root-payload byte ---------------
    // One root produces an N-byte buffer; eight children each digest it;
    // a sink gathers the digests. With refcounted edges the run's
    // payload-proportional allocation is the root's own buffer — a copy
    // factor near 1.0. Per-edge copies would push it toward 1 + width.
    let platform = FaasPlatform::new(
        PlatformConfig {
            cold_start: LatencyModel::Constant(Duration::ZERO),
            warm_start: LatencyModel::Constant(Duration::ZERO),
            ..PlatformConfig::default()
        },
        Arc::new(WallClock::new()),
    );
    platform
        .register(FunctionSpec::new("produce", "e26", |ctx| {
            let n = u64::from_le_bytes(ctx.payload[..].try_into().map_err(|_| "bad input")?);
            Ok(vec![5u8; n as usize])
        }))
        .expect("register");
    platform
        .register(FunctionSpec::new("digest", "e26", |ctx| {
            let sum: u64 = ctx.payload.iter().map(|&b| b as u64).sum();
            Ok(sum.to_le_bytes().to_vec())
        }))
        .expect("register");
    platform
        .register(FunctionSpec::new("gather", "e26", |ctx| {
            let parts = frame::unpack(&ctx.payload).ok_or("malformed frame")?;
            Ok(parts.concat())
        }))
        .expect("register");
    const WIDTH: usize = 8;
    let children: Vec<String> = (0..WIDTH).map(|i| format!("d{i}")).collect();
    let mut builder = DagBuilder::new().node("root", "produce", &[]);
    for c in &children {
        builder = builder.node(c.as_str(), "digest", &["root"]);
    }
    let child_refs: Vec<&str> = children.iter().map(String::as_str).collect();
    let dag = builder
        .node("gather", "gather", &child_refs)
        .build()
        .expect("dag");
    let executor = DagExecutor::new(&platform).with_config(ExecutorConfig {
        max_parallelism: 1,
        retry: RetryPolicy::none(),
        checkpoint: false,
        data_passing: DataPassing::Inline,
    });
    let run_bytes = |label: &str, n: u64| {
        let (_, bytes) = alloc_delta(|| {
            executor
                .run(&dag, label, &n.to_le_bytes())
                .expect("fan-out run");
        });
        bytes as f64
    };
    // Warm the container pool so the measured runs pay no one-time setup.
    let _ = run_bytes("e26-warmup", 4096);
    let small = 4096u64;
    let large = 262_144u64;
    let b_small = run_bytes("e26-small", small);
    let b_large = run_bytes("e26-large", large);
    let copy_factor = (b_large - b_small) / (large - small) as f64;
    println!(
        "dag fan-out (width {WIDTH}): {:.2} bytes allocated per root-payload byte \
         (1.0 = the root buffer itself; per-edge copying would cost ~{}.0)",
        copy_factor,
        1 + WIDTH
    );

    bench.push((
        "e26".to_string(),
        format!(
            "{{\n    \"payload_bytes\": {PAYLOAD},\n    \"messages\": {MSGS},\n    \
             \"batch_sizes\": [1, 8, 64, 256],\n    \
             \"publish_msgs_per_sec\": [{}],\n    \
             \"dispatch_msgs_per_sec\": [{}],\n    \
             \"ledger_appends_per_msg\": [{}],\n    \
             \"publish_alloc_bytes_per_msg\": [{}],\n    \
             \"jiffy_get_allocs_per_op\": {get_per_op:.3},\n    \
             \"jiffy_read_allocs_per_op\": {read_per_op:.3},\n    \
             \"dag_fanout_width\": {WIDTH},\n    \
             \"dag_fanout_alloc_bytes_per_payload_byte\": {copy_factor:.3}\n  }}",
            publish_rates
                .iter()
                .map(|r| format!("{r:.1}"))
                .collect::<Vec<_>>()
                .join(", "),
            dispatch_rates
                .iter()
                .map(|r| format!("{r:.1}"))
                .collect::<Vec<_>>()
                .join(", "),
            appends_per_msg
                .iter()
                .map(|r| format!("{r:.4}"))
                .collect::<Vec<_>>()
                .join(", "),
            publish_alloc_b_per_msg
                .iter()
                .map(|r| format!("{r:.1}"))
                .collect::<Vec<_>>()
                .join(", "),
        ),
    ));
}

/// Fixed output path for E27's machine-readable numbers: CI gates read it
/// even when the combined `--bench-json` file is not requested.
const BENCH_E27_PATH: &str = "BENCH_e27.json";

/// E27 — the observability pipeline over the E26 data plane: (a) the
/// always-on lock profiler costs <5% on the publish hot path, (b) one
/// causal trace follows publish → dispatch → invoke across crates and the
/// critical-path analyzer attributes the consumer hop, (c) dispatch-side
/// phase attribution names the bottleneck (cursor bookkeeping vs. the
/// topic-shard lock vs. entry read/decode/deliver) with per-lock wait
/// times from the contention profiler.
fn e27_observability_pipeline(bench: &mut Vec<(String, String)>) {
    banner(
        "E27",
        "observability pipeline: <5% profiler overhead, causal publish→dispatch→invoke traces, and a named dispatch-side bottleneck",
    );

    const MSGS: usize = 8192;
    const PAYLOAD: usize = 256;
    const REPS: usize = 7;
    const BATCH: usize = 64;
    const TRACED: usize = 256;

    let payloads: Vec<Vec<u8>> = (0..MSGS)
        .map(|i| {
            let mut v = vec![0u8; PAYLOAD];
            v[..8].copy_from_slice(&(i as u64).to_le_bytes());
            v
        })
        .collect();

    // -- (a) profiler overhead on the E26 unbatched publish workload ------
    // A LockSite is attached per cluster (set-once), so each run gets a
    // fresh cluster; runs are interleaved and the minimum over REPS taken
    // so the comparison measures the instrumentation, not scheduler noise.
    // An unattached site is the same code path the `lock-prof` feature
    // compiles out entirely (one relaxed pointer load), so attached vs.
    // unattached bounds the feature-on vs. feature-off cost from above.
    let run_publish = |profiled: bool| -> Duration {
        let cluster = PulsarCluster::new(
            PulsarConfig {
                max_entries_per_ledger: 1 << 20,
                ..PulsarConfig::default()
            },
            WallClock::shared(),
        );
        let prof = ContentionProfiler::new();
        if profiled {
            cluster.enable_contention_profiling(&prof);
        }
        cluster.create_topic("e27", 1).expect("topic");
        let p = cluster.producer("e27").expect("producer");
        let t0 = Instant::now();
        for pl in &payloads {
            p.send(pl).expect("send");
        }
        t0.elapsed()
    };
    let mut base = Duration::MAX;
    let mut instr = Duration::MAX;
    for _ in 0..REPS {
        base = base.min(run_publish(false));
        instr = instr.min(run_publish(true));
    }
    let overhead_pct = (instr.as_secs_f64() / base.as_secs_f64() - 1.0) * 100.0;
    let fmt_rate = |d: Duration| {
        let v = MSGS as f64 / d.as_secs_f64().max(1e-9);
        if v >= 1e6 {
            format!("{:.2}M/s", v / 1e6)
        } else {
            format!("{:.1}k/s", v / 1e3)
        }
    };
    let mut t = Table::new(["profiler", "publish (min of 7)", "rate"]);
    t.row(["off".into(), fmt_dur(base), fmt_rate(base)]);
    t.row(["on".into(), fmt_dur(instr), fmt_rate(instr)]);
    t.print();
    println!(
        "lock-profiler overhead: {overhead_pct:+.2}% on {MSGS} unbatched publishes \
         (gate: <5%; an unattached site ≈ the compiled-out `lock-prof` path)"
    );

    // -- (b) causal trace + critical path across the crates ---------------
    let clock: SharedClock = WallClock::shared();
    let tracer = Tracer::new(clock.clone());
    let cluster = PulsarCluster::new(PulsarConfig::default(), clock.clone());
    cluster.set_tracer(tracer.clone());
    let faas = FaasPlatform::new(PlatformConfig::deterministic(), clock);
    faas.set_tracer(tracer.clone());
    faas.register(FunctionSpec::new("handle", "e27", |ctx| {
        Ok(ctx.payload.to_vec())
    }))
    .expect("register");
    cluster.create_topic("jobs", 1).expect("topic");
    let p = cluster.producer("jobs").expect("producer");
    let mut consumer = cluster
        .subscribe("jobs", "workers", SubscriptionMode::Exclusive)
        .expect("subscribe");
    for pl in payloads.iter().take(TRACED) {
        p.send(pl).expect("send");
    }
    let mut invoked = 0usize;
    loop {
        let ms = consumer.receive_batch(64).expect("receive_batch");
        if ms.is_empty() {
            break;
        }
        for m in &ms {
            faas.invoke_traced("handle", m.payload.clone(), m.ctx)
                .expect("invoke");
            consumer.ack(m.id).expect("ack");
            invoked += 1;
        }
    }
    assert_eq!(invoked, TRACED);
    let spans = tracer.spans();
    let graph = TraceGraph::build(spans);
    let traces = graph.traces().len();
    println!(
        "\ntraced {TRACED} messages end to end: {} spans across {traces} traces",
        graph.len()
    );
    let flat = graph.self_time_by_name();
    let mut t = Table::new(["span (flat profile)", "self time"]);
    for (name, d) in flat.iter().take(6) {
        t.row([name.clone(), fmt_dur(*d)]);
    }
    t.print();
    // The publish root's window closes before the consumer hop starts, so
    // the interesting path is the invoke subtree: analyze the slowest one.
    let invoke_idx = (0..graph.len())
        .filter(|&i| graph.span(i).name == "faas.invoke")
        .max_by_key(|&i| graph.span(i).duration())
        .expect("faas.invoke span");
    let cp = CriticalPath::compute_from(&graph, invoke_idx);
    let cp_total = cp.total;
    let cp_top = cp
        .top_name(&graph)
        .map(|(n, _)| n)
        .unwrap_or_else(|| "none".into());
    println!("\n{}", render::render_critical_path(&graph, &cp));

    // -- (c) dispatch-side attribution under concurrent publishers --------
    // Batched producers on four threads race the draining consumer for the
    // topic-shard lock, so both profilers see real contention. The phase
    // clock's checkpoint intervals are disjoint within the measured wall,
    // so `explained ≤ wall` by construction and the ≥80% gate is a real
    // measurement of attribution coverage, not an identity.
    let cluster = PulsarCluster::new(
        PulsarConfig {
            max_entries_per_ledger: 1 << 20,
            ..PulsarConfig::default()
        },
        WallClock::shared(),
    );
    let lock_prof = ContentionProfiler::new();
    let site = cluster.enable_contention_profiling(&lock_prof);
    cluster.set_dispatch_profiling(true);
    cluster.create_topic("e27", 1).expect("topic");
    let producer = cluster.producer("e27").expect("producer");
    let mut consumer = cluster
        .subscribe("e27", "s", SubscriptionMode::Exclusive)
        .expect("subscribe");
    const WRITERS: usize = 4;
    std::thread::scope(|s| {
        for w in 0..WRITERS {
            let producer = &producer;
            let payloads = &payloads;
            s.spawn(move || {
                for chunk in
                    payloads[w * (MSGS / WRITERS)..(w + 1) * (MSGS / WRITERS)].chunks(BATCH)
                {
                    producer.send_batch(chunk).expect("send_batch");
                }
            });
        }
        let mut got = 0usize;
        while got < MSGS {
            let ms = consumer.receive_batch(512).expect("receive_batch");
            if ms.is_empty() {
                std::thread::yield_now();
                continue;
            }
            for m in &ms {
                consumer.ack(m.id).expect("ack");
            }
            got += ms.len();
        }
    });
    let dp = cluster.dispatch_profile();
    let explained = dp.explained_fraction();
    let (top_phase, top_ns) = dp.top_phase();
    let mut t = Table::new(["dispatch phase", "time", "% of wall"]);
    for (name, ns) in dp.phases() {
        t.row([
            name.to_string(),
            fmt_dur(Duration::from_nanos(ns)),
            format!("{:.1}%", 100.0 * ns as f64 / dp.wall_ns.max(1) as f64),
        ]);
    }
    t.print();
    println!(
        "dispatch wall {} over {} scans / {} messages; {:.1}% attributed \
         (gate: ≥80%); bottleneck: {top_phase} ({})",
        fmt_dur(Duration::from_nanos(dp.wall_ns)),
        dp.scans,
        dp.messages,
        100.0 * explained,
        fmt_dur(Duration::from_nanos(top_ns)),
    );
    let snap = site.snapshot();
    let report = ContentionReport::new(lock_prof.snapshots());
    println!("\n{}", report.render());

    let phase_json = dp
        .phases()
        .iter()
        .map(|(name, ns)| format!("\"{name}\": {ns}"))
        .collect::<Vec<_>>()
        .join(", ");
    let fragment = format!(
        "{{\n    \"overhead_msgs\": {MSGS},\n    \"overhead_reps\": {REPS},\n    \
         \"profiling_overhead_pct\": {overhead_pct:.2},\n    \
         \"traced_messages\": {TRACED},\n    \"spans_recorded\": {},\n    \
         \"traces\": {traces},\n    \
         \"invoke_critical_path_us\": {:.1},\n    \
         \"invoke_critical_path_top\": \"{cp_top}\",\n    \
         \"dispatch_messages\": {},\n    \"dispatch_scans\": {},\n    \
         \"dispatch_wall_ns\": {},\n    \
         \"dispatch_explained_fraction\": {explained:.4},\n    \
         \"dispatch_phase_ns\": {{{phase_json}}},\n    \
         \"top_dispatch_phase\": \"{top_phase}\",\n    \
         \"lock_site\": \"{}\",\n    \"lock_acquisitions\": {},\n    \
         \"lock_contended\": {},\n    \"lock_wait_ns\": {},\n    \
         \"lock_hold_ns_estimate\": {}\n  }}",
        graph.len(),
        cp_total.as_secs_f64() * 1e6,
        dp.messages,
        dp.scans,
        dp.wall_ns,
        snap.name,
        snap.acquisitions,
        snap.contended,
        snap.wait_total.as_nanos(),
        snap.hold_total_estimate().as_nanos(),
    );
    std::fs::write(BENCH_E27_PATH, format!("{{\n  \"e27\": {fragment}\n}}\n")).unwrap_or_else(
        |e| {
            eprintln!("failed to write {BENCH_E27_PATH}: {e}");
            std::process::exit(1);
        },
    );
    println!("bench JSON written to {BENCH_E27_PATH}");
    bench.push(("e27".to_string(), fragment));
}

const BENCH_E28_PATH: &str = "BENCH_e28.json";

/// E28 — the multi-node cluster fabric under rolling failures: 5 brokers
/// behind a lossy simulated network serve a publish → dispatch → invoke
/// loop while one broker at a time is killed (rolling, at most 1-of-5
/// down) and one bookie dies permanently mid-run. Reports virtual-time
/// tail latency (the p99/max capture failover windows), end-to-end
/// operation availability (gate: ≥99%), background re-replication
/// converging back to the replication factor before the run ends, one
/// causal trace spanning the failover, and an elastic Jiffy leave with
/// no data loss.
fn e28_cluster_failover(bench: &mut Vec<(String, String)>) {
    banner(
        "E28",
        "cluster fabric: ≥99% op availability and bounded tails under rolling 1-of-5 broker kills; re-replication restores the replication factor before the run ends",
    );

    const REQUESTS: usize = 300;
    const KILL_EVERY: usize = 60; // broker kills at 60/120/180/240
    const BOOKIE_KILL_AT: usize = 150;

    let mut s = ClusterStack::new(ClusterStackConfig {
        seed: 0xE28,
        brokers: 5,
        ..ClusterStackConfig::default()
    });
    s.fabric().net().set_default_faults(LinkFaults {
        latency: Duration::from_micros(500),
        jitter: Duration::from_micros(200),
        drop_p: 0.005,
        dup_p: 0.005,
    });
    s.create_topic("e28", 1).expect("topic");
    s.register_function(FunctionSpec::new("handle", "e28", |ctx| {
        Ok(ctx.payload.to_vec())
    }))
    .expect("register");
    let tracer = s.fabric().tracer().clone();

    let mut e2e: Vec<Duration> = Vec::with_capacity(REQUESTS);
    let mut publish_lat: Vec<Duration> = Vec::with_capacity(REQUESTS);
    let mut attempts = 0u64;
    let mut successes = 0u64;
    let mut broker_kills = 0u32;
    let mut bookie_kills = 0u32;
    let mut killed: Vec<taureau_core::id::NodeId> = Vec::new();
    // The request fired immediately after the first broker kill is traced:
    // its publish retries through detection and lands on the new owner, so
    // one trace should span the failover across nodes and subsystems.
    let mut sentinel_trace: Option<taureau_core::trace::TraceId> = None;
    let mut underreplicated_peak = 0usize;

    for i in 0..REQUESTS {
        if i > 0 && i % KILL_EVERY == 0 {
            // Rolling: restore the previous victim, then kill the current
            // topic owner — at most one broker of five is ever down.
            if let Some(prev) = killed.last().copied() {
                s.revive(prev);
            }
            let owner = s.pulsar().owner("e28").expect("owner");
            s.kill(owner);
            killed.push(owner);
            broker_kills += 1;
        }
        if i == BOOKIE_KILL_AT {
            // Permanent bookie loss: the spare is activated and ledger
            // repair runs in the background from here on.
            let victim = s.pulsar().bookie_nodes()[0];
            s.kill(victim);
            bookie_kills += 1;
            underreplicated_peak = s.pulsar().underreplicated();
        }

        let ctx = if i > 0 && i % KILL_EVERY == 0 {
            let mut root = tracer.span("taureau-bench", "e28.request");
            root.attr("request", i);
            let c = root.context();
            if sentinel_trace.is_none() {
                sentinel_trace = c.map(|c| c.trace_id);
            }
            c
        } else {
            None
        };

        let t0 = s.now();
        attempts += 1;
        let published = s.publish("e28", &(i as u64).to_le_bytes(), ctx);
        let publish_ok = published.is_ok();
        if publish_ok {
            successes += 1;
            publish_lat.push(s.now() - t0);
        }

        // Drain until the entry just published is dispatched (duplicates
        // from earlier retried publishes may arrive first), invoke on it,
        // ack everything seen.
        let mut dispatched_and_invoked = false;
        'drain: for _ in 0..50 {
            attempts += 1;
            let msgs = match s.consume("e28", "s", 32, ctx) {
                Ok(m) => {
                    successes += 1;
                    m
                }
                Err(_) => break 'drain,
            };
            if msgs.is_empty() && dispatched_and_invoked {
                break 'drain;
            }
            for m in msgs {
                let mut b = [0u8; 8];
                b.copy_from_slice(&m.payload[..8]);
                let v = u64::from_le_bytes(b) as usize;
                if v == i && !dispatched_and_invoked {
                    attempts += 1;
                    if s.invoke("handle", &m.payload, m.ctx).is_ok() {
                        successes += 1;
                        dispatched_and_invoked = true;
                    }
                }
                attempts += 1;
                if s.ack("e28", "s", m.id, ctx).is_ok() {
                    successes += 1;
                }
            }
        }
        if publish_ok && dispatched_and_invoked {
            e2e.push(s.now() - t0);
        }
    }

    // -- background re-replication converges before the experiment ends --
    let repair_rounds = s.repair_until_replicated(2_000);
    let underreplicated_end = s.pulsar().underreplicated();

    // -- elastic Jiffy membership rides the same fabric ------------------
    let kv = s.jiffy().jiffy().create_kv("/e28/state", 2).expect("kv");
    for i in 0..32u64 {
        kv.put(&i.to_le_bytes(), &[7u8; 64]).expect("put");
    }
    s.join_memory_node();
    let leaving = s.jiffy().memory_nodes()[0];
    let migration = s.leave_memory_node(leaving).expect("leave");
    let jiffy_intact = (0..32u64).all(|i| {
        kv.get(&i.to_le_bytes())
            .ok()
            .flatten()
            .is_some_and(|v| v == [7u8; 64])
    });

    // -- one causal trace spans the failover -----------------------------
    let sentinel = sentinel_trace.expect("sentinel trace recorded");
    let spans = tracer.spans();
    let in_trace: Vec<_> = spans.iter().filter(|sp| sp.trace_id == sentinel).collect();
    let systems: std::collections::BTreeSet<&str> = in_trace.iter().map(|sp| sp.system).collect();
    let cross_failover_trace_ok =
        systems.contains("taureau-pulsar") && systems.contains("taureau-faas");
    let dropped = tracer.dropped_spans();

    let pct = |sorted: &[Duration], q: f64| -> Duration {
        if sorted.is_empty() {
            return Duration::ZERO;
        }
        let idx = ((sorted.len() as f64 - 1.0) * q).round() as usize;
        sorted[idx]
    };
    let mut e2e_sorted = e2e.clone();
    e2e_sorted.sort();
    let mut pub_sorted = publish_lat.clone();
    pub_sorted.sort();
    let availability = successes as f64 / attempts.max(1) as f64;

    let mut t = Table::new(["stage (virtual time)", "p50", "p99", "max"]);
    t.row([
        "publish".into(),
        fmt_dur(pct(&pub_sorted, 0.50)),
        fmt_dur(pct(&pub_sorted, 0.99)),
        fmt_dur(pub_sorted.last().copied().unwrap_or_default()),
    ]);
    t.row([
        "publish→dispatch→invoke".into(),
        fmt_dur(pct(&e2e_sorted, 0.50)),
        fmt_dur(pct(&e2e_sorted, 0.99)),
        fmt_dur(e2e_sorted.last().copied().unwrap_or_default()),
    ]);
    t.print();
    println!(
        "{REQUESTS} requests, {broker_kills} rolling broker kills + {bookie_kills} bookie loss: \
         {successes}/{attempts} ops succeeded ({:.3}% availability, gate ≥99%)",
        100.0 * availability
    );
    println!(
        "re-replication: {underreplicated_peak} under-replicated ledgers after bookie loss → \
         {underreplicated_end} after {repair_rounds} maintenance rounds (gate: 0)"
    );
    println!(
        "cross-failover trace: {} spans across {:?} (pulsar+faas required: {}); \
         jiffy leave moved {} blocks, data intact: {jiffy_intact}",
        in_trace.len(),
        systems,
        cross_failover_trace_ok,
        migration.blocks_moved
    );

    let fragment = format!(
        "{{\n    \"requests\": {REQUESTS},\n    \"broker_kills\": {broker_kills},\n    \
         \"bookie_kills\": {bookie_kills},\n    \"ops_attempted\": {attempts},\n    \
         \"ops_succeeded\": {successes},\n    \"availability\": {availability:.5},\n    \
         \"publish_p50_us\": {},\n    \"publish_p99_us\": {},\n    \"publish_max_us\": {},\n    \
         \"e2e_p50_us\": {},\n    \"e2e_p99_us\": {},\n    \"e2e_max_us\": {},\n    \
         \"underreplicated_peak\": {underreplicated_peak},\n    \
         \"underreplicated_end\": {underreplicated_end},\n    \
         \"repair_rounds\": {repair_rounds},\n    \
         \"cross_failover_trace_ok\": {cross_failover_trace_ok},\n    \
         \"trace_spans\": {},\n    \"dropped_spans\": {dropped},\n    \
         \"jiffy_blocks_moved\": {},\n    \"jiffy_data_intact\": {jiffy_intact}\n  }}",
        pct(&pub_sorted, 0.50).as_micros(),
        pct(&pub_sorted, 0.99).as_micros(),
        pub_sorted.last().copied().unwrap_or_default().as_micros(),
        pct(&e2e_sorted, 0.50).as_micros(),
        pct(&e2e_sorted, 0.99).as_micros(),
        e2e_sorted.last().copied().unwrap_or_default().as_micros(),
        in_trace.len(),
        migration.blocks_moved,
    );
    std::fs::write(BENCH_E28_PATH, format!("{{\n  \"e28\": {fragment}\n}}\n")).unwrap_or_else(
        |e| {
            eprintln!("failed to write {BENCH_E28_PATH}: {e}");
            std::process::exit(1);
        },
    );
    println!("bench JSON written to {BENCH_E28_PATH}");
    bench.push(("e28".to_string(), fragment));
}

const BENCH_E29_PATH: &str = "BENCH_e29.json";

/// E29 — the cluster observability plane under rolling failures: 5
/// brokers serve 8 topics over a lossy network while one broker is made
/// grey-slow (client links only — heartbeats unaffected), three rolling
/// owner kills and one permanent bookie loss are injected, and the
/// collector — fed exclusively by telemetry that rode the same faulty
/// wire — reconstructs every incident. Reports per-incident MTTD/MTTR
/// with phase attribution (gate: explained ≥90% of each unavailability
/// window), grey-detector lead time and precision (gates: zero false
/// positives on the healthy phase, grey broker flagged while heartbeats
/// still vouch for it), and exact telemetry loss accounting (gate:
/// sent = received + detected-dropped after sync).
fn e29_cluster_observability(bench: &mut Vec<(String, String)>) {
    banner(
        "E29",
        "observability plane: MTTD/MTTR attribution explains ≥90% of every outage window; grey broker flagged before any heartbeat suspicion; telemetry loss accounting exact under drops",
    );

    const TOPICS: usize = 8;
    const HEALTHY_ROUNDS: usize = 30;
    const GREY_ROUNDS: usize = 60;
    const BROKER_KILLS: usize = 3;

    let mut s = ClusterStack::new(ClusterStackConfig {
        seed: 0xE29,
        brokers: 5,
        observability: true,
        ..ClusterStackConfig::default()
    });
    let lossy = LinkFaults {
        latency: Duration::from_micros(500),
        jitter: Duration::from_micros(200),
        drop_p: 0.005,
        dup_p: 0.005,
    };
    s.fabric().net().set_default_faults(lossy);
    let topics: Vec<String> = (0..TOPICS).map(|i| format!("t{i}")).collect();
    for t in &topics {
        s.create_topic(t, 1).expect("topic");
    }
    let client = s.client_node();

    // -- phase 1: healthy baseline — the grey detector must stay silent --
    for round in 0..HEALTHY_ROUNDS {
        for t in &topics {
            let _ = s.publish(t, &(round as u64).to_le_bytes(), None);
        }
    }
    s.run_for(Duration::from_millis(50));
    let healthy_false_positives = s.obs().expect("plane").collector().grey_flags().len();

    // -- phase 2: one grey-slow broker ----------------------------------
    // Slow only the client<->grey links: broker<->broker heartbeats keep
    // flowing at normal latency, so the membership detector never fires —
    // the classic grey failure heartbeats cannot see.
    let t0_owner = s.pulsar().owner("t0").expect("owner");
    let grey_topic = topics
        .iter()
        .skip(1)
        .find(|t| s.pulsar().owner(t).ok() != Some(t0_owner))
        .cloned()
        .expect("8 topics over 5 brokers must use >1 owner");
    let grey = s.pulsar().owner(&grey_topic).expect("owner");
    let slow = LinkFaults {
        latency: Duration::from_millis(8),
        jitter: Duration::from_micros(200),
        drop_p: 0.005,
        dup_p: 0.0,
    };
    s.fabric().net().set_link_faults(client, grey, slow);
    s.fabric().net().set_link_faults(grey, client, slow);
    let grey_injected_at = s.now();
    let mut grey_flag_at: Option<Duration> = None;
    let mut control_alive_at_flag = false;
    for round in 0..GREY_ROUNDS {
        for t in &topics {
            let _ = s.publish(t, &(round as u64).to_le_bytes(), None);
        }
        if grey_flag_at.is_none() {
            if let Some(&at) = s
                .obs()
                .expect("plane")
                .collector()
                .grey_flags()
                .get(&grey.raw())
            {
                grey_flag_at = Some(at);
                // Heartbeats still vouch for the grey broker: detection
                // beat the failure detector (which never fires at all).
                control_alive_at_flag = s.fabric().control().lock().view().contains(&grey);
                break;
            }
        }
    }
    s.fabric().net().set_link_faults(client, grey, lossy);
    s.fabric().net().set_link_faults(grey, client, lossy);
    let grey_lead = grey_flag_at.map(|at| at.saturating_sub(grey_injected_at));

    // -- phase 3: rolling owner kills — MTTD/MTTR per incident -----------
    let mut specs: Vec<IncidentSpec> = Vec::new();
    let mut killed: Vec<taureau_core::id::NodeId> = Vec::new();
    for k in 0..BROKER_KILLS {
        if let Some(prev) = killed.last().copied() {
            s.revive(prev);
            s.run_for(Duration::from_millis(30));
        }
        let owner = s.pulsar().owner("t0").expect("owner");
        let fault_at = s.now();
        s.kill(owner);
        killed.push(owner);
        // Client-side ground truth: the window closes when a publish AND
        // a consume (subscription rebuilt on the new owner) both succeed.
        s.publish("t0", b"probe", None).expect("probe publish");
        let msgs = s.consume("t0", "s", 64, None).expect("probe consume");
        let recovered_at = s.now();
        for m in msgs {
            let _ = s.ack("t0", "s", m.id, None);
        }
        specs.push(IncidentSpec {
            id: format!("kill-{}", k + 1),
            node: owner,
            kind: IncidentKind::Broker,
            fault_at,
            recovered_at,
        });
    }

    // -- phase 4: permanent bookie loss — re-replication drain -----------
    let bookie = s.pulsar().bookie_nodes()[0];
    let bookie_fault_at = s.now();
    s.kill(bookie);
    s.publish("t0", b"probe-bookie", None)
        .expect("publish during repair");
    let repair_rounds = s.repair_until_replicated(2_000);
    let bookie_recovered_at = s.now();
    specs.push(IncidentSpec {
        id: "bookie-1".to_string(),
        node: bookie,
        kind: IncidentKind::Bookie,
        fault_at: bookie_fault_at,
        recovered_at: bookie_recovered_at,
    });

    // -- drain: revive the last victim so every agent can sync ------------
    if let Some(prev) = killed.last().copied() {
        s.revive(prev);
    }
    let synced = s.drain_telemetry(Duration::from_secs(10));
    let loss = s.obs().expect("plane").loss_accounting();
    let timeline = s.obs().expect("plane").timeline(&specs);
    let report = s.health_report().expect("plane");
    let blackbox_dumps = s
        .jiffy()
        .jiffy()
        .list("/blackbox")
        .map(|entries| entries.len())
        .unwrap_or(0);
    let flagged: Vec<u64> = s
        .obs()
        .expect("plane")
        .collector()
        .grey_flags()
        .keys()
        .copied()
        .collect();
    let grey_precision = if flagged.is_empty() {
        0.0
    } else {
        flagged.iter().filter(|&&n| n == grey.raw()).count() as f64 / flagged.len() as f64
    };

    // -- report -----------------------------------------------------------
    let mut t = Table::new([
        "incident",
        "MTTD",
        "MTTR",
        "detect",
        "re-lease",
        "rebuild",
        "drain",
        "unattrib",
        "explained",
    ]);
    for inc in &timeline.incidents {
        t.row([
            inc.id.clone(),
            inc.mttd().map(fmt_dur).unwrap_or_else(|| "n/a".into()),
            fmt_dur(inc.mttr()),
            fmt_dur(inc.phase(OutagePhase::Detection)),
            fmt_dur(inc.phase(OutagePhase::Release)),
            fmt_dur(inc.phase(OutagePhase::SubscriptionRebuild)),
            fmt_dur(inc.phase(OutagePhase::RereplicationDrain)),
            fmt_dur(inc.phase(OutagePhase::Unattributed)),
            format!("{:.1}%", inc.explained_fraction() * 100.0),
        ]);
    }
    t.print();
    let min_explained = timeline.min_explained_fraction();
    println!(
        "attribution: worst incident explains {:.1}% of its window (gate ≥90%); \
         mean MTTD {} mean MTTR {}",
        min_explained * 100.0,
        timeline
            .mean_mttd()
            .map(fmt_dur)
            .unwrap_or_else(|| "n/a".into()),
        timeline
            .mean_mttr()
            .map(fmt_dur)
            .unwrap_or_else(|| "n/a".into()),
    );
    println!(
        "grey detector: broker n{} flagged {} after injection (heartbeats still vouching: {}); \
         healthy-phase false positives: {healthy_false_positives} (gate 0); precision {:.2}",
        grey.raw(),
        grey_lead.map(fmt_dur).unwrap_or_else(|| "NEVER".into()),
        control_alive_at_flag,
        grey_precision,
    );
    println!(
        "telemetry: {} sent, {} received, {} detected-dropped, {} died-with-process \
         (synced: {synced}, books exact: {})",
        loss.sent,
        loss.received,
        loss.dropped,
        loss.pending_lost,
        loss.exact(),
    );
    println!(
        "collector: {} per-(op,node) rows, {} active alerts, {blackbox_dumps} blackbox dump(s); \
         repair converged in {repair_rounds} rounds",
        report.ops.len(),
        report.active_alerts.len(),
    );

    let incidents_json = timeline
        .incidents
        .iter()
        .map(|inc| {
            format!(
                "{{\n      \"id\": \"{}\",\n      \"kind\": \"{}\",\n      \
                 \"mttd_us\": {},\n      \"mttr_us\": {},\n      \"wall_us\": {},\n      \
                 \"detection_us\": {},\n      \"release_us\": {},\n      \
                 \"rebuild_us\": {},\n      \"drain_us\": {},\n      \
                 \"unattributed_us\": {},\n      \"explained_fraction\": {:.5}\n    }}",
                inc.id,
                match inc.kind {
                    IncidentKind::Broker => "broker",
                    IncidentKind::Bookie => "bookie",
                },
                inc.mttd().map(|d| d.as_micros()).unwrap_or(0),
                inc.mttr().as_micros(),
                inc.wall().as_micros(),
                inc.phase(OutagePhase::Detection).as_micros(),
                inc.phase(OutagePhase::Release).as_micros(),
                inc.phase(OutagePhase::SubscriptionRebuild).as_micros(),
                inc.phase(OutagePhase::RereplicationDrain).as_micros(),
                inc.phase(OutagePhase::Unattributed).as_micros(),
                inc.explained_fraction(),
            )
        })
        .collect::<Vec<_>>()
        .join(",\n    ");
    let fragment = format!(
        "{{\n    \"incidents\": [\n    {incidents_json}\n    ],\n    \
         \"attribution_min_fraction\": {min_explained:.5},\n    \
         \"mean_mttd_us\": {},\n    \"mean_mttr_us\": {},\n    \
         \"grey_flagged\": {},\n    \"grey_lead_ms\": {:.3},\n    \
         \"grey_control_alive_at_flag\": {control_alive_at_flag},\n    \
         \"grey_precision\": {grey_precision:.3},\n    \
         \"healthy_false_positives\": {healthy_false_positives},\n    \
         \"telemetry_sent\": {},\n    \"telemetry_received\": {},\n    \
         \"telemetry_dropped\": {},\n    \"telemetry_pending_lost\": {},\n    \
         \"telemetry_synced\": {synced},\n    \"loss_exact\": {},\n    \
         \"blackbox_dumps\": {blackbox_dumps},\n    \
         \"repair_rounds\": {repair_rounds}\n  }}",
        timeline.mean_mttd().map(|d| d.as_micros()).unwrap_or(0),
        timeline.mean_mttr().map(|d| d.as_micros()).unwrap_or(0),
        grey_flag_at.is_some(),
        grey_lead.map(|d| d.as_secs_f64() * 1e3).unwrap_or(-1.0),
        loss.sent,
        loss.received,
        loss.dropped,
        loss.pending_lost,
        loss.exact(),
    );
    std::fs::write(BENCH_E29_PATH, format!("{{\n  \"e29\": {fragment}\n}}\n")).unwrap_or_else(
        |e| {
            eprintln!("failed to write {BENCH_E29_PATH}: {e}");
            std::process::exit(1);
        },
    );
    println!("bench JSON written to {BENCH_E29_PATH}");
    bench.push(("e29".to_string(), fragment));
}
