//! Trace-graph reconstruction from a flat span dump.

use std::collections::HashMap;
use std::time::Duration;

use taureau_core::trace::{SpanId, SpanRecord, TraceId};

/// The causal DAG rebuilt from a flat list of [`SpanRecord`]s (e.g.
/// [`Tracer::spans`][taureau_core::trace::Tracer::spans], or spans decoded
/// off the `_telemetry/spans` stream).
///
/// Holds any number of traces at once. Parent links are resolved to
/// indices; a span whose parent was not captured (sampled out, evicted
/// from the flight recorder, or produced by an earlier process — the
/// checkpoint-restore case) is treated as a root of its trace, so
/// analysis degrades gracefully on partial captures.
#[derive(Debug, Clone)]
pub struct TraceGraph {
    spans: Vec<SpanRecord>,
    children: Vec<Vec<usize>>,
    roots: Vec<usize>,
}

impl TraceGraph {
    /// Build the graph. Children are ordered by start time, roots by
    /// (trace, start) so iteration order is deterministic whatever order
    /// the spans arrived in.
    pub fn build(spans: Vec<SpanRecord>) -> Self {
        let by_id: HashMap<SpanId, usize> = spans
            .iter()
            .enumerate()
            .map(|(i, s)| (s.span_id, i))
            .collect();
        let mut children: Vec<Vec<usize>> = vec![Vec::new(); spans.len()];
        let mut roots = Vec::new();
        for (i, s) in spans.iter().enumerate() {
            match s.parent.and_then(|p| by_id.get(&p)) {
                Some(&p) => children[p].push(i),
                None => roots.push(i),
            }
        }
        for c in &mut children {
            c.sort_by_key(|&i| spans[i].start);
        }
        roots.sort_by_key(|&i| (spans[i].trace_id.0, spans[i].start));
        Self {
            spans,
            children,
            roots,
        }
    }

    /// Number of spans in the graph.
    pub fn len(&self) -> usize {
        self.spans.len()
    }

    /// Whether the graph holds no spans.
    pub fn is_empty(&self) -> bool {
        self.spans.is_empty()
    }

    /// All spans, in build order. Indices into this slice are the node
    /// ids used by every other accessor.
    pub fn spans(&self) -> &[SpanRecord] {
        &self.spans
    }

    /// The span at `idx`.
    pub fn span(&self, idx: usize) -> &SpanRecord {
        &self.spans[idx]
    }

    /// Children of `idx`, ordered by start time.
    pub fn children(&self, idx: usize) -> &[usize] {
        &self.children[idx]
    }

    /// Root spans (no captured parent), ordered by (trace, start).
    pub fn roots(&self) -> &[usize] {
        &self.roots
    }

    /// Spans that *recorded* a parent which was never captured: they
    /// surface as roots, but a fully stitched cross-node trace should
    /// have none. The cluster observability acceptance test asserts this
    /// is empty after reassembling collector-side captures.
    pub fn orphans(&self) -> Vec<usize> {
        self.roots
            .iter()
            .copied()
            .filter(|&i| self.spans[i].parent.is_some())
            .collect()
    }

    /// Distinct subsystem names across all spans, sorted — a quick check
    /// that a stitched trace really crosses the tiers it should.
    pub fn systems(&self) -> Vec<&'static str> {
        let mut out: Vec<&'static str> = Vec::new();
        for s in &self.spans {
            if !out.contains(&s.system) {
                out.push(s.system);
            }
        }
        out.sort_unstable();
        out
    }

    /// Distinct trace ids, in root order.
    pub fn traces(&self) -> Vec<TraceId> {
        let mut out: Vec<TraceId> = Vec::new();
        for &r in &self.roots {
            let t = self.spans[r].trace_id;
            if !out.contains(&t) {
                out.push(t);
            }
        }
        out
    }

    /// The root of `trace` — when a trace has several captured roots
    /// (partial capture), the earliest-starting one.
    pub fn root_of(&self, trace: TraceId) -> Option<usize> {
        self.roots
            .iter()
            .copied()
            .find(|&r| self.spans[r].trace_id == trace)
    }

    /// Every span of `trace`, as indices.
    pub fn trace_spans(&self, trace: TraceId) -> Vec<usize> {
        (0..self.spans.len())
            .filter(|&i| self.spans[i].trace_id == trace)
            .collect()
    }

    /// Time `idx` spent in its own code: its duration minus the time its
    /// children cover within its window (overlapping children — parallel
    /// fan-out — are merged, not double-subtracted).
    pub fn self_time(&self, idx: usize) -> Duration {
        let s = &self.spans[idx];
        // Merge child intervals clamped to the parent window.
        let mut ivs: Vec<(Duration, Duration)> = self.children[idx]
            .iter()
            .map(|&c| {
                let ch = &self.spans[c];
                (ch.start.max(s.start), ch.end.min(s.end))
            })
            .filter(|(a, b)| b > a)
            .collect();
        ivs.sort();
        let mut covered = Duration::ZERO;
        let mut cur: Option<(Duration, Duration)> = None;
        for (a, b) in ivs {
            match &mut cur {
                Some((_, e)) if a <= *e => *e = (*e).max(b),
                _ => {
                    if let Some((st, e)) = cur {
                        covered += e - st;
                    }
                    cur = Some((a, b));
                }
            }
        }
        if let Some((st, e)) = cur {
            covered += e - st;
        }
        s.duration().saturating_sub(covered)
    }

    /// Self-time summed per span name across the whole graph, sorted
    /// descending — the flat profile ("where does time go, regardless of
    /// call path").
    pub fn self_time_by_name(&self) -> Vec<(String, Duration)> {
        let mut agg: HashMap<&str, Duration> = HashMap::new();
        for i in 0..self.spans.len() {
            *agg.entry(self.spans[i].name.as_str()).or_default() += self.self_time(i);
        }
        let mut out: Vec<(String, Duration)> =
            agg.into_iter().map(|(k, v)| (k.to_string(), v)).collect();
        out.sort_by(|a, b| b.1.cmp(&a.1).then(a.0.cmp(&b.0)));
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    pub(crate) fn span(
        trace: u64,
        id: u64,
        parent: Option<u64>,
        name: &str,
        start_us: u64,
        end_us: u64,
    ) -> SpanRecord {
        SpanRecord {
            trace_id: TraceId(trace),
            span_id: SpanId(id),
            parent: parent.map(SpanId),
            name: name.to_string(),
            system: "test",
            start: Duration::from_micros(start_us),
            end: Duration::from_micros(end_us),
            attrs: Vec::new(),
        }
    }

    #[test]
    fn builds_dag_with_orphans_as_roots() {
        let g = TraceGraph::build(vec![
            span(1, 10, None, "root", 0, 100),
            span(1, 11, Some(10), "child", 10, 40),
            span(1, 12, Some(10), "child", 50, 90),
            // Parent 99 was never captured: orphan joins trace 2's roots.
            span(2, 20, Some(99), "orphan", 0, 10),
        ]);
        assert_eq!(g.len(), 4);
        assert_eq!(g.roots().len(), 2);
        assert_eq!(g.traces(), vec![TraceId(1), TraceId(2)]);
        let root = g.root_of(TraceId(1)).unwrap();
        assert_eq!(g.span(root).name, "root");
        assert_eq!(g.children(root).len(), 2);
        assert_eq!(g.trace_spans(TraceId(1)).len(), 3);
        assert!(g.root_of(TraceId(7)).is_none());
    }

    #[test]
    fn orphans_are_roots_with_uncaptured_parents() {
        let g = TraceGraph::build(vec![
            span(1, 10, None, "root", 0, 100),
            span(1, 11, Some(10), "child", 10, 40),
            span(2, 20, Some(99), "orphan", 0, 10),
        ]);
        assert_eq!(g.orphans(), vec![2]);
        assert_eq!(g.systems(), vec!["test"]);

        let stitched = TraceGraph::build(vec![
            span(1, 10, None, "root", 0, 100),
            span(1, 11, Some(10), "child", 10, 40),
        ]);
        assert!(stitched.orphans().is_empty());
    }

    #[test]
    fn self_time_merges_overlapping_children() {
        let g = TraceGraph::build(vec![
            span(1, 1, None, "root", 0, 100),
            // Two parallel children overlapping [20, 60): the union
            // [10, 70) is covered once, leaving 40us of self time.
            span(1, 2, Some(1), "a", 10, 60),
            span(1, 3, Some(1), "b", 20, 70),
        ]);
        assert_eq!(g.self_time(0), Duration::from_micros(40));
        assert_eq!(g.self_time(1), Duration::from_micros(50));
        let flat = g.self_time_by_name();
        assert_eq!(flat[0].0, "a");
        assert_eq!(flat[0].1, Duration::from_micros(50));
    }
}
