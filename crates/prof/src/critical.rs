//! Critical-path extraction over a reconstructed trace.

use std::collections::HashMap;
use std::time::Duration;

use taureau_core::trace::TraceId;

use crate::graph::TraceGraph;

/// A stretch of the critical path spent in one span's own code.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PathSegment {
    /// Index of the span (into [`TraceGraph::spans`]) doing the work.
    pub span: usize,
    /// Segment start (trace clock).
    pub start: Duration,
    /// Segment end (trace clock).
    pub end: Duration,
}

impl PathSegment {
    /// Length of this stretch.
    pub fn duration(&self) -> Duration {
        self.end.saturating_sub(self.start)
    }
}

/// The critical path of one trace: the causally-dependent chain of
/// self-work that determined the root span's end-to-end latency.
/// Shortening any segment shortens the whole request; work off the path
/// is shadowed by it.
///
/// Computed by walking backwards from the root's end: at every point the
/// path descends into the child whose completion gated that moment, and
/// gaps between gating children are the parent's own work. Every
/// nanosecond of the root's duration lands in exactly one segment, so
/// the per-name/per-system rollups always sum to [`CriticalPath::total`].
#[derive(Debug, Clone)]
pub struct CriticalPath {
    /// The trace analyzed.
    pub trace_id: TraceId,
    /// Root span index.
    pub root: usize,
    /// Root duration — what the rollups sum to.
    pub total: Duration,
    /// Path segments in chronological order.
    pub segments: Vec<PathSegment>,
}

impl CriticalPath {
    /// Extract the critical path of `trace`; `None` when the graph holds
    /// no root for it.
    pub fn compute(graph: &TraceGraph, trace: TraceId) -> Option<Self> {
        Some(Self::compute_from(graph, graph.root_of(trace)?))
    }

    /// Extract the critical path of the subtree under `root` (any span
    /// index, not necessarily a trace root) — e.g. just the consumer-side
    /// `faas.invoke` hop of a publish-rooted trace.
    pub fn compute_from(graph: &TraceGraph, root: usize) -> Self {
        let mut segments = Vec::new();
        walk(graph, root, graph.span(root).end, &mut segments);
        segments.reverse();
        Self {
            trace_id: graph.span(root).trace_id,
            root,
            total: graph.span(root).duration(),
            segments,
        }
    }

    /// On-path self time per span name, descending.
    pub fn by_name(&self, graph: &TraceGraph) -> Vec<(String, Duration)> {
        self.rollup(|i| graph.span(i).name.clone())
    }

    /// On-path self time per subsystem, descending.
    pub fn by_system(&self, graph: &TraceGraph) -> Vec<(String, Duration)> {
        self.rollup(|i| graph.span(i).system.to_string())
    }

    /// The single largest contributor by span name.
    pub fn top_name(&self, graph: &TraceGraph) -> Option<(String, Duration)> {
        self.by_name(graph).into_iter().next()
    }

    fn rollup(&self, key: impl Fn(usize) -> String) -> Vec<(String, Duration)> {
        let mut agg: HashMap<String, Duration> = HashMap::new();
        for seg in &self.segments {
            *agg.entry(key(seg.span)).or_default() += seg.duration();
        }
        let mut out: Vec<(String, Duration)> = agg.into_iter().collect();
        out.sort_by(|a, b| b.1.cmp(&a.1).then(a.0.cmp(&b.0)));
        out
    }
}

/// Backward walk: attribute `span`'s window up to `until`. Children are
/// visited latest-completion first; the interval between a gating child's
/// end and the previous attribution point is the parent's own work, and
/// the child is then analyzed within its own window. Children that end
/// after `until` (already shadowed) or entirely before the span's start
/// (clock noise) are skipped. Segments are pushed in reverse
/// chronological order; the caller reverses once.
fn walk(graph: &TraceGraph, span: usize, until: Duration, segments: &mut Vec<PathSegment>) {
    let rec = graph.span(span);
    let mut cursor = until;
    let mut kids: Vec<usize> = graph.children(span).to_vec();
    kids.sort_by_key(|&c| graph.span(c).end);
    for &child in kids.iter().rev() {
        let ch = graph.span(child);
        if ch.end > cursor || ch.end <= rec.start {
            continue;
        }
        // Parent self-work between this gating child finishing and the
        // previously attributed point.
        if cursor > ch.end {
            segments.push(PathSegment {
                span,
                start: ch.end,
                end: cursor,
            });
        }
        walk(graph, child, ch.end, segments);
        cursor = ch.start.max(rec.start);
        if cursor <= rec.start {
            return;
        }
    }
    if cursor > rec.start {
        segments.push(PathSegment {
            span,
            start: rec.start,
            end: cursor,
        });
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use taureau_core::trace::{SpanId, SpanRecord};

    fn span(
        trace: u64,
        id: u64,
        parent: Option<u64>,
        name: &str,
        start_us: u64,
        end_us: u64,
    ) -> SpanRecord {
        SpanRecord {
            trace_id: TraceId(trace),
            span_id: SpanId(id),
            parent: parent.map(SpanId),
            name: name.to_string(),
            system: "test",
            start: Duration::from_micros(start_us),
            end: Duration::from_micros(end_us),
            attrs: Vec::new(),
        }
    }

    #[test]
    fn path_attributes_every_nanosecond_once() {
        // root [0,100] with sequential children a [10,40], b [50,90]:
        // path = root(0-10), a(10-40), root(40-50), b(50-90), root(90-100).
        let g = TraceGraph::build(vec![
            span(1, 1, None, "root", 0, 100),
            span(1, 2, Some(1), "a", 10, 40),
            span(1, 3, Some(1), "b", 50, 90),
        ]);
        let cp = CriticalPath::compute(&g, TraceId(1)).unwrap();
        assert_eq!(cp.total, Duration::from_micros(100));
        let attributed: Duration = cp.segments.iter().map(|s| s.duration()).sum();
        assert_eq!(attributed, cp.total);
        assert_eq!(cp.segments.len(), 5);
        // Chronological, gap-free.
        for w in cp.segments.windows(2) {
            assert_eq!(w[0].end, w[1].start);
        }
        let by_name = cp.by_name(&g);
        let root_time = by_name.iter().find(|(n, _)| n == "root").unwrap().1;
        assert_eq!(root_time, Duration::from_micros(30));
    }

    #[test]
    fn parallel_children_only_the_gating_one_is_on_path() {
        // Fan-out: slow [10,80] shadows fast [10,30]. The fast child must
        // not appear on the path at all.
        let g = TraceGraph::build(vec![
            span(1, 1, None, "root", 0, 100),
            span(1, 2, Some(1), "fast", 10, 30),
            span(1, 3, Some(1), "slow", 10, 80),
        ]);
        let cp = CriticalPath::compute(&g, TraceId(1)).unwrap();
        let names: Vec<&str> = cp
            .segments
            .iter()
            .map(|s| g.span(s.span).name.as_str())
            .collect();
        assert!(names.contains(&"slow"));
        assert!(!names.contains(&"fast"));
        let attributed: Duration = cp.segments.iter().map(|s| s.duration()).sum();
        assert_eq!(attributed, cp.total);
        // Deep nesting: the path descends transitively.
        let g2 = TraceGraph::build(vec![
            span(2, 1, None, "root", 0, 100),
            span(2, 2, Some(1), "mid", 10, 90),
            span(2, 3, Some(2), "leaf", 20, 80),
        ]);
        let cp2 = CriticalPath::compute(&g2, TraceId(2)).unwrap();
        assert_eq!(
            cp2.top_name(&g2).unwrap(),
            ("leaf".to_string(), Duration::from_micros(60))
        );
        assert!(CriticalPath::compute(&g2, TraceId(9)).is_none());
    }
}
