//! Human- and tool-readable views of a trace analysis.

use std::fmt::Write as _;
use std::time::Duration;

use taureau_core::trace::TraceId;

use crate::critical::CriticalPath;
use crate::graph::TraceGraph;

/// Indented span tree for one trace: `name [system] total (self …) attrs`,
/// children beneath their parent in start order. Spans on `path` (if
/// given) are flagged with `*` — the chain that gated end-to-end latency.
pub fn render_tree(graph: &TraceGraph, trace: TraceId, path: Option<&CriticalPath>) -> String {
    let on_path: Vec<bool> = {
        let mut v = vec![false; graph.len()];
        if let Some(p) = path {
            for seg in &p.segments {
                v[seg.span] = true;
            }
        }
        v
    };
    let mut out = String::new();
    for &root in graph.roots() {
        if graph.span(root).trace_id != trace {
            continue;
        }
        render_node(graph, root, 0, &on_path, &mut out);
    }
    out
}

fn render_node(graph: &TraceGraph, idx: usize, depth: usize, on_path: &[bool], out: &mut String) {
    let s = graph.span(idx);
    let marker = if on_path[idx] { "*" } else { " " };
    let _ = writeln!(
        out,
        "{}{} {} [{}] {:.3?} (self {:.3?}){}",
        "  ".repeat(depth),
        marker,
        s.name,
        s.system,
        s.duration(),
        graph.self_time(idx),
        if s.attrs.is_empty() {
            String::new()
        } else {
            format!(
                "  {}",
                s.attrs
                    .iter()
                    .map(|(k, v)| format!("{k}={v}"))
                    .collect::<Vec<_>>()
                    .join(" ")
            )
        }
    );
    for &c in graph.children(idx) {
        render_node(graph, c, depth + 1, on_path, out);
    }
}

/// The critical-path report: chronological segments, then per-name and
/// per-system attribution tables with percentages of the end-to-end
/// total. This is the text the e27 experiment prints.
pub fn render_critical_path(graph: &TraceGraph, path: &CriticalPath) -> String {
    let mut out = String::new();
    let _ = writeln!(
        out,
        "critical path of trace {:#x}: {:.3?} end-to-end, {} segments",
        path.trace_id.0,
        path.total,
        path.segments.len()
    );
    for seg in &path.segments {
        let s = graph.span(seg.span);
        let _ = writeln!(
            out,
            "  {:>10.3?}..{:>10.3?}  {:>10.3?}  {} [{}]",
            seg.start,
            seg.end,
            seg.duration(),
            s.name,
            s.system
        );
    }
    let total = path.total.max(Duration::from_nanos(1));
    for (title, rows) in [
        ("by span name", path.by_name(graph)),
        ("by subsystem", path.by_system(graph)),
    ] {
        let _ = writeln!(out, "attribution {title}:");
        for (name, d) in rows {
            let _ = writeln!(
                out,
                "  {:<28} {:>10.3?}  {:>5.1}%",
                name,
                d,
                100.0 * d.as_secs_f64() / total.as_secs_f64()
            );
        }
    }
    out
}

/// Serialize the whole graph as Chrome trace-event JSON (the
/// `chrome://tracing` / Perfetto "JSON array" format): one complete
/// (`"ph":"X"`) event per span, grouped by trace via `pid` and by
/// subsystem via `tid`, attrs carried in `args`. Load the returned string
/// directly in the viewer.
pub fn chrome_trace(graph: &TraceGraph) -> String {
    let mut out = String::from("[");
    for (i, s) in graph.spans().iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        let _ = write!(
            out,
            "{{\"name\":{},\"cat\":{},\"ph\":\"X\",\"ts\":{},\"dur\":{},\"pid\":{},\"tid\":{},\"args\":{{",
            json_str(&s.name),
            json_str(s.system),
            s.start.as_nanos() as f64 / 1000.0,
            s.duration().as_nanos() as f64 / 1000.0,
            s.trace_id.0,
            stable_tid(s.system),
        );
        let _ = write!(out, "\"span_id\":{}", s.span_id.0);
        if let Some(p) = s.parent {
            let _ = write!(out, ",\"parent\":{}", p.0);
        }
        for (k, v) in &s.attrs {
            let _ = write!(out, ",{}:{}", json_str(k), json_str(v));
        }
        out.push_str("}}");
    }
    out.push(']');
    out
}

/// Stable small integer per subsystem name so spans group into one lane
/// per component in the viewer.
fn stable_tid(system: &str) -> u64 {
    system
        .bytes()
        .fold(0u64, |h, b| h.wrapping_mul(31).wrapping_add(b as u64))
        % 1000
}

/// Minimal JSON string encoding: quotes, backslashes, and control
/// characters escaped.
fn json_str(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use taureau_core::trace::{SpanId, SpanRecord};

    fn graph() -> TraceGraph {
        TraceGraph::build(vec![
            SpanRecord {
                trace_id: TraceId(1),
                span_id: SpanId(1),
                parent: None,
                name: "root".into(),
                system: "sys-a",
                start: Duration::ZERO,
                end: Duration::from_micros(100),
                attrs: vec![("note", "he said \"hi\"\n".to_string())],
            },
            SpanRecord {
                trace_id: TraceId(1),
                span_id: SpanId(2),
                parent: Some(SpanId(1)),
                name: "child".into(),
                system: "sys-b",
                start: Duration::from_micros(10),
                end: Duration::from_micros(60),
                attrs: Vec::new(),
            },
        ])
    }

    #[test]
    fn tree_and_path_reports_render() {
        let g = graph();
        let cp = CriticalPath::compute(&g, TraceId(1)).unwrap();
        let tree = render_tree(&g, TraceId(1), Some(&cp));
        assert!(tree.contains("root") && tree.contains("  "));
        assert!(tree.lines().any(|l| l.trim_start().starts_with('*')));
        let report = render_critical_path(&g, &cp);
        assert!(report.contains("critical path of trace 0x1"));
        assert!(report.contains("by span name") && report.contains("by subsystem"));
        assert!(report.contains("100.0%") || report.contains("50.0%"));
    }

    #[test]
    fn chrome_trace_is_escaped_json() {
        let g = graph();
        let json = chrome_trace(&g);
        assert!(json.starts_with('[') && json.ends_with(']'));
        assert_eq!(json.matches("\"ph\":\"X\"").count(), 2);
        // The attr with quote + newline is escaped, never raw.
        assert!(json.contains("he said \\\"hi\\\"\\n"));
        assert!(!json.contains('\n'));
        assert!(json.contains("\"parent\":1"));
    }
}
