//! # taureau-prof
//!
//! Causal trace analysis for the Le Taureau stack. The instrumented
//! subsystems ([`Tracer`][taureau_core::trace::Tracer] spans with
//! cross-component parent links, [`LockSite`][taureau_core::sync::LockSite]
//! contention counters) produce raw observations; this crate turns them
//! into answers:
//!
//! - [`TraceGraph`] rebuilds the causal DAG from a flat span dump —
//!   parent links resolved, children ordered, self-time computed.
//! - [`CriticalPath`] walks a trace backwards from its root's end and
//!   attributes every nanosecond of end-to-end latency to exactly one
//!   span's self-work: the chain you must shorten to make the whole
//!   request faster. Attribution rolls up per span name and per
//!   subsystem.
//! - [`ContentionReport`] merges [`LockSiteSnapshot`]s into a ranked
//!   where-do-we-block summary.
//! - [`render`] turns any of the above into text trees, attribution
//!   tables, or a `chrome://tracing` / Perfetto JSON dump.
//!
//! The analyzers are pure functions over plain data — they never touch
//! the live system, so they can run in-process after an experiment or
//! offline over spans shipped through the telemetry pump.

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

pub mod critical;
pub mod graph;
pub mod render;

pub use critical::{CriticalPath, PathSegment};
pub use graph::TraceGraph;

use std::time::Duration;
use taureau_core::sync::LockSiteSnapshot;

/// Merged view over lock-contention snapshots, ranked by total wait time:
/// where threads actually block, which is not necessarily where they
/// acquire most often.
#[derive(Debug, Clone)]
pub struct ContentionReport {
    sites: Vec<LockSiteSnapshot>,
}

impl ContentionReport {
    /// Build a report; sites are ranked by total wait time, descending.
    pub fn new(mut sites: Vec<LockSiteSnapshot>) -> Self {
        sites.sort_by_key(|s| std::cmp::Reverse(s.wait_total));
        Self { sites }
    }

    /// Ranked sites, hottest first.
    pub fn sites(&self) -> &[LockSiteSnapshot] {
        &self.sites
    }

    /// The site threads spend the most time blocked on, if any waited.
    pub fn top(&self) -> Option<&LockSiteSnapshot> {
        self.sites.first().filter(|s| s.wait_total > Duration::ZERO)
    }

    /// Total wait time across every site.
    pub fn total_wait(&self) -> Duration {
        self.sites.iter().map(|s| s.wait_total).sum()
    }

    /// One line per site: name, acquisitions, contention ratio, wait
    /// total, estimated hold total, hottest shard.
    pub fn render(&self) -> String {
        let mut out = String::from("lock contention (by total wait)\n");
        if self.sites.is_empty() {
            out.push_str("  (no sites profiled)\n");
            return out;
        }
        for s in &self.sites {
            out.push_str(&format!(
                "  {:<24} acq {:>8}  contended {:>6} ({:>5.1}%)  wait {:>10.3?}  hold~ {:>10.3?}",
                s.name,
                s.acquisitions,
                s.contended,
                s.contention_ratio() * 100.0,
                s.wait_total,
                s.hold_total_estimate(),
            ));
            if let Some((shard, wait)) = s.hottest_shard() {
                out.push_str(&format!("  hottest shard #{shard} ({wait:.3?})"));
            }
            out.push('\n');
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;
    use taureau_core::sync::{ContentionProfiler, ShardedMap};

    #[test]
    fn contention_report_ranks_by_wait() {
        let prof = ContentionProfiler::new();
        let quiet = prof.site("quiet", 4);
        let busy = prof.site("busy", 1);
        let map: ShardedMap<u64, u64> = ShardedMap::with_shards(1);
        assert!(map.attach_profiler(Arc::clone(&busy)));
        // Manufacture contention on the single shard.
        std::thread::scope(|s| {
            for _ in 0..4 {
                s.spawn(|| {
                    for i in 0..200u64 {
                        map.with(&i, |shard| {
                            shard.insert(i, i);
                            std::thread::sleep(std::time::Duration::from_micros(5));
                        });
                    }
                });
            }
        });
        let report = ContentionReport::new(prof.snapshots());
        assert_eq!(report.sites().len(), 2);
        let top = report.top().expect("busy site waited");
        assert_eq!(top.name, "busy");
        assert!(report.total_wait() >= top.wait_total);
        let text = report.render();
        assert!(text.contains("busy") && text.contains("quiet"));
        // Unprofiled world: report renders, names no top site.
        let empty = ContentionReport::new(vec![quiet.snapshot()]);
        assert!(empty.top().is_none());
    }
}
