//! Integration: the cluster observability plane. A cross-node trace
//! (client → broker → failover → new owner → worker) reassembles from
//! collector captures with zero orphan spans; telemetry loss accounting
//! reconciles exactly under injected drops; a broker failover dumps the
//! reconstructed incident timeline and collector trace to the Jiffy
//! blackbox; and the cluster health report carries per-node labels.

use std::time::Duration;

use taureau::cluster::obs::{IncidentKind, IncidentSpec};
use taureau::cluster::{ClusterStack, ClusterStackConfig, LinkFaults};
use taureau::prelude::*;

fn obs_stack() -> ClusterStack {
    ClusterStack::new(ClusterStackConfig {
        observability: true,
        ..Default::default()
    })
}

#[test]
fn cross_node_trace_reassembles_from_collector_with_zero_orphans() {
    let mut s = obs_stack();
    s.create_topic("orders", 1).unwrap();
    s.register_function(FunctionSpec::new("handle", "tenant", |ctx| {
        Ok(ctx.payload.to_vec())
    }))
    .unwrap();

    let tracer = s.fabric().tracer().clone();
    let root_ctx = {
        let mut root = tracer.span("stack-obs-test", "e2e.request");
        root.attr("test", "collector-reassembly");
        root.context().expect("tracer enabled")
    };

    // Publish under the root trace, let the owner's agent flush the
    // publish-side spans, then kill the owner: the consume and invoke
    // hops happen on different nodes than the one that stored the entry.
    s.publish("orders", b"order-1", Some(root_ctx)).unwrap();
    s.run_for(Duration::from_millis(20));
    let owner = s.pulsar().owner("orders").unwrap();
    s.kill(owner);
    s.run_for(Duration::from_millis(150));

    let msgs = s.consume("orders", "s", 8, None).unwrap();
    assert_eq!(msgs.len(), 1);
    let m = &msgs[0];
    let msg_ctx = m.ctx.expect("traced publish carries ctx through failover");
    assert_eq!(msg_ctx.trace_id, root_ctx.trace_id);
    s.invoke("handle", &m.payload, m.ctx).unwrap();

    // Ship everything that is still buffered (the dead owner's agent is
    // gone, but its spans were flushed before the kill).
    assert!(
        s.drain_telemetry(Duration::from_secs(2)),
        "telemetry must sync on a healthy network"
    );

    // Reassemble the trace purely from what crossed the wire to the
    // collector — not from the in-process tracer ring.
    let records = s.obs().unwrap().collector().span_records();
    let graph = TraceGraph::build(records);
    let in_trace: Vec<_> = graph
        .spans()
        .iter()
        .filter(|sp| sp.trace_id == root_ctx.trace_id)
        .collect();
    let systems: std::collections::BTreeSet<&str> = in_trace.iter().map(|sp| sp.system).collect();
    assert!(
        systems.contains("taureau-pulsar") && systems.contains("taureau-faas"),
        "collector capture must cross pulsar and faas: {systems:?}"
    );
    assert!(
        in_trace.len() >= 4,
        "expected publish + cluster + dispatch + invoke spans at the collector, got {}",
        in_trace.len()
    );
    assert_eq!(
        graph.orphans(),
        Vec::<usize>::new(),
        "every captured span's parent must also have been captured"
    );
}

#[test]
fn loss_accounting_is_exact_under_injected_drops() {
    let mut s = obs_stack();
    let collector = s.obs().unwrap().collector_node();
    let client = s.client_node();
    // A third of telemetry batches from the client vanish in flight.
    let lossy = LinkFaults {
        latency: Duration::from_micros(500),
        jitter: Duration::ZERO,
        drop_p: 0.34,
        dup_p: 0.1,
    };
    s.fabric().net().set_link_faults(client, collector, lossy);

    s.create_topic("t", 1).unwrap();
    for i in 0..40u64 {
        s.publish("t", &i.to_le_bytes(), None).unwrap();
    }
    s.run_for(Duration::from_millis(100));

    // Heal the link; sync batches then carry the final cumulative counts
    // through, making the books balance exactly.
    s.fabric()
        .net()
        .set_link_faults(client, collector, LinkFaults::default());
    assert!(
        s.drain_telemetry(Duration::from_secs(5)),
        "agents must sync once the link heals"
    );

    let loss = s.obs().unwrap().loss_accounting();
    assert!(loss.sent > 0, "{loss:?}");
    assert!(
        loss.dropped > 0,
        "a 34% drop rate must lose at least one batch: {loss:?}"
    );
    assert!(loss.exact(), "books must balance: {loss:?}");
    assert_eq!(
        loss.dropped,
        loss.sent - loss.received,
        "every sent event is received or detected-dropped: {loss:?}"
    );
}

#[test]
fn failover_dumps_incident_blackbox_to_jiffy() {
    let mut s = obs_stack();
    s.create_topic("stream", 1).unwrap();
    for i in 0..10u64 {
        s.publish("stream", &i.to_le_bytes(), None).unwrap();
    }
    let owner = s.pulsar().owner("stream").unwrap();
    s.kill(owner);
    // The next publish rides through detection + failover; the
    // maintenance round that moves the lease also fires the dump.
    s.publish("stream", b"after", None).unwrap();

    assert_eq!(s.obs().unwrap().dump_errors(), 0);
    let jiffy = s.jiffy().jiffy();
    let incidents = jiffy.list("/blackbox").expect("blackbox dir exists");
    assert!(
        incidents.iter().any(|e| e.contains("incident-1")),
        "failover must dump an incident: {incidents:?}"
    );
    let timeline = jiffy
        .open_file("/blackbox/incident-1/timeline.txt")
        .unwrap();
    let text = String::from_utf8(timeline.read(0, 1 << 20).unwrap().to_vec()).unwrap();
    assert!(text.contains("broker node"), "{text}");
    assert!(text.contains("telemetry:"), "{text}");
    let trace = jiffy.open_file("/blackbox/incident-1/trace.json").unwrap();
    let json = String::from_utf8(trace.read(0, 1 << 22).unwrap().to_vec()).unwrap();
    assert!(json.contains("\"trace_id\""), "trace dump must hold spans");
}

#[test]
fn incident_timeline_attribution_explains_most_of_the_outage() {
    let mut s = obs_stack();
    s.create_topic("jobs", 1).unwrap();
    for i in 0..10u64 {
        s.publish("jobs", &i.to_le_bytes(), None).unwrap();
    }
    let owner = s.pulsar().owner("jobs").unwrap();
    let fault_at = s.now();
    s.kill(owner);
    s.publish("jobs", b"recovery-probe", None).unwrap();
    let msgs = s.consume("jobs", "s", 16, None).unwrap();
    assert!(!msgs.is_empty());
    let recovered_at = s.now();

    assert!(s.drain_telemetry(Duration::from_secs(2)));
    let spec = IncidentSpec {
        id: "kill-1".into(),
        node: owner,
        kind: IncidentKind::Broker,
        fault_at,
        recovered_at,
    };
    let timeline = s.obs().unwrap().timeline(&[spec]);
    let inc = &timeline.incidents[0];
    let mttd = inc.mttd().expect("membership must report the dead owner");
    assert!(
        mttd <= Duration::from_millis(150),
        "detection took {mttd:?} with a 100ms failure timeout"
    );
    assert!(inc.released_at.is_some(), "lease move must be captured");
    assert!(inc.explained() <= inc.wall());
    assert!(
        inc.explained_fraction() >= 0.9,
        "attribution must explain ≥90% of the window: {:.3} of {:?}\n{}",
        inc.explained_fraction(),
        inc.wall(),
        timeline.render_text()
    );
}

#[test]
fn health_report_merges_collector_state_with_node_labels() {
    let mut s = obs_stack();
    s.create_topic("t", 1).unwrap();
    for i in 0..20u64 {
        s.publish("t", &i.to_le_bytes(), None).unwrap();
    }
    assert!(s.drain_telemetry(Duration::from_secs(2)));

    let report = s.health_report().expect("plane deployed");
    let remote_op = report
        .ops
        .iter()
        .find(|op| op.node.is_some() && op.count > 0)
        .expect("collector must hold per-node op rows");
    let prom = report.render_prometheus();
    assert!(
        prom.contains(&format!("node=\"{}\"", remote_op.node.unwrap())),
        "prometheus rendering must label remote ops with their node"
    );
    let counters: std::collections::HashMap<_, _> = report
        .counters
        .iter()
        .map(|(k, v)| (k.as_str(), *v))
        .collect();
    assert!(counters["cluster.telemetry_events_received"] > 0);
    assert_eq!(counters["cluster.telemetry_dropped_detected"], 0);
    // No grey flags on a healthy, uniform network.
    assert!(
        report.active_alerts.is_empty(),
        "healthy run must not flag grey nodes: {:?}",
        report.active_alerts
    );
}
