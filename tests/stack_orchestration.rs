//! Integration: orchestrated multi-function applications with the Lopez
//! et al. properties checked across the real platform, including failure
//! retries and Jiffy side effects.

use std::sync::atomic::{AtomicU32, Ordering};
use std::sync::Arc;

use taureau::orchestration::frame;
use taureau::prelude::*;
use taureau_faas::FunctionSpec as Spec;

fn stack() -> (FaasPlatform, Jiffy, Orchestrator) {
    let clock = VirtualClock::shared();
    let platform = FaasPlatform::new(PlatformConfig::deterministic(), clock.clone());
    let jiffy = Jiffy::new(JiffyConfig::default(), clock);
    let orch = Orchestrator::new(platform.clone());
    (platform, jiffy, orch)
}

#[test]
fn fan_out_image_thumbnailing_shape() {
    // The classic serverless example: map a "resize" function over a
    // framed batch of images (here: byte blobs halved in size).
    let (platform, _, orch) = stack();
    platform
        .register(Spec::new("resize", "media", |ctx| {
            Ok(ctx.payload.iter().step_by(2).copied().collect())
        }))
        .unwrap();
    let comp = Composition::Map(Box::new(Composition::Task("resize".into())));
    let images: Vec<Vec<u8>> = (0..8).map(|i| vec![i as u8; 100]).collect();
    let report = orch.run(&comp, &frame::pack(&images)).unwrap();
    let thumbs = frame::unpack(&report.output).unwrap();
    assert_eq!(thumbs.len(), 8);
    assert!(thumbs.iter().all(|t| t.len() == 50));
    assert_eq!(report.invocation_count(), 8);
    // No double billing: platform charged exactly the 8 resize runs.
    let billed = platform.billing().total("media");
    assert!((billed - report.total_cost()).abs() < 1e-15);
}

#[test]
fn nested_named_compositions_with_jiffy_side_effects() {
    let (platform, jiffy, orch) = stack();
    let store = jiffy.clone();
    platform
        .register(Spec::new("persist", "app", move |ctx| {
            let kv = store
                .open_kv("/app/results")
                .or_else(|_| store.create_kv("/app/results", 1))
                .map_err(|e| e.to_string())?;
            let n = kv.len().map_err(|e| e.to_string())? as u64;
            kv.put(&n.to_le_bytes(), &ctx.payload)
                .map_err(|e| e.to_string())?;
            Ok(ctx.payload.to_vec())
        }))
        .unwrap();
    platform
        .register(Spec::new("stamp", "app", |ctx| {
            let mut out = ctx.payload.to_vec();
            out.extend_from_slice(b"!");
            Ok(out)
        }))
        .unwrap();
    orch.register_composition(
        "stamp_and_persist",
        Composition::pipeline(["stamp", "persist"]),
    );
    // Closure property: the named composition nests inside a parallel.
    let comp = Composition::Parallel(vec![
        Composition::Named("stamp_and_persist".into()),
        Composition::Named("stamp_and_persist".into()),
    ]);
    let report = orch.run(&comp, b"x").unwrap();
    assert_eq!(report.invocation_count(), 4);
    let kv = jiffy.open_kv("/app/results").unwrap();
    assert_eq!(kv.len().unwrap(), 2);
}

#[test]
fn retry_wrapped_stage_recovers_and_audit_includes_failures_cost() {
    let (platform, _, orch) = stack();
    let failures = Arc::new(AtomicU32::new(1));
    let f = failures.clone();
    platform
        .register(Spec::new("sometimes", "t", move |ctx| {
            if f.fetch_update(Ordering::SeqCst, Ordering::SeqCst, |n| n.checked_sub(1))
                .is_ok()
            {
                Err("transient outage".into())
            } else {
                Ok(ctx.payload.to_vec())
            }
        }))
        .unwrap();
    let comp = Composition::Sequence(vec![Composition::Retry {
        inner: Box::new(Composition::Task("sometimes".into())),
        attempts: 3,
    }]);
    let before = platform.billing().invocations("t");
    let report = orch.run(&comp, b"data").unwrap();
    assert_eq!(report.output, b"data");
    // Two executions were billed (one failed, one succeeded): failed
    // attempts cost money on real platforms, and do here too.
    assert_eq!(platform.billing().invocations("t") - before, 2);
}

#[test]
fn choice_routes_hot_and_cold_paths() {
    let (platform, _, orch) = stack();
    platform
        .register(Spec::new("express", "t", |_| Ok(b"express".to_vec())))
        .unwrap();
    platform
        .register(Spec::new("batch", "t", |_| Ok(b"batch".to_vec())))
        .unwrap();
    let comp = Composition::choice(
        |input| input.len() < 10,
        Composition::Task("express".into()),
        Composition::Task("batch".into()),
    );
    assert_eq!(orch.run(&comp, b"small").unwrap().output, b"express");
    assert_eq!(orch.run(&comp, &[0u8; 100]).unwrap().output, b"batch");
}
