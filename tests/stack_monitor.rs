//! Integration: the self-monitoring loop over the full stack. The FaaS
//! platform emits telemetry through a sink, a pump ships it over Pulsar,
//! and the monitor folds it into SLO verdicts and blackbox dumps — all on
//! one virtual clock, fully deterministic.

use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::Duration;

use taureau::monitor::{AlertState, METRICS_TOPIC, SPANS_TOPIC};
use taureau::prelude::*;

/// The full stack with telemetry enabled: one shared tracer feeding a
/// sink, a pump onto the cluster's telemetry topics, and a monitor with
/// test-sized windows consuming them.
struct MonitoredStack {
    clock: Arc<VirtualClock>,
    tracer: Tracer,
    faas: FaasPlatform,
    jiffy: Jiffy,
    pump: TelemetryPump,
    monitor: Monitor,
}

fn monitored_stack(policy: &str) -> MonitoredStack {
    let clock = Arc::new(VirtualClock::new());
    let tracer = Tracer::new(clock.clone());
    let sink = TelemetrySink::new(65_536);
    tracer.set_telemetry(sink.clone());

    let faas = FaasPlatform::new(PlatformConfig::deterministic(), clock.clone());
    faas.set_tracer(tracer.clone());
    let jiffy = Jiffy::new(JiffyConfig::default(), clock.clone());
    jiffy.set_tracer(tracer.clone());
    let cluster = PulsarCluster::new(PulsarConfig::default(), clock.clone());
    cluster.set_tracer(tracer.clone());

    let pump = TelemetryPump::new(sink, &cluster).unwrap();
    let cfg = MonitorConfig {
        fast_window: Duration::from_millis(100),
        slow_window: Duration::from_millis(400),
        min_samples: 3,
        ..MonitorConfig::default()
    };
    let monitor = Monitor::with_config(&cluster, clock.clone(), cfg)
        .unwrap()
        .with_policy(SloPolicy::parse(policy).unwrap())
        .with_flight_recorder(&tracer)
        .with_blackbox(&jiffy);
    MonitoredStack {
        clock,
        tracer,
        faas,
        jiffy,
        pump,
        monitor,
    }
}

#[test]
fn slo_breach_over_the_full_stack_fires_once_and_resolves_once() {
    let mut s = monitored_stack("p99 faas.invoke < 10ms");
    // A handler whose latency degrades while the fault flag is set:
    // 1 ms normally, 30 ms during the fault (plus the platform's fixed
    // 2 ms warm dispatch either way).
    let fault = Arc::new(AtomicBool::new(false));
    let handler_fault = fault.clone();
    let handler_clock = s.clock.clone();
    s.faas
        .register(FunctionSpec::new("api", "tenant", move |_ctx| {
            let latency = if handler_fault.load(Ordering::Relaxed) {
                Duration::from_millis(30)
            } else {
                Duration::from_millis(1)
            };
            handler_clock.advance(latency);
            Ok(Vec::new())
        }))
        .unwrap();
    // Pre-warm so the one-off 200 ms cold start cannot masquerade as an
    // SLO breach of its own.
    s.faas.provision("api", 1).unwrap();

    for round in 0..120 {
        fault.store((40..60).contains(&round), Ordering::Relaxed);
        s.faas.invoke("api", Vec::new()).unwrap();
        s.clock.advance(Duration::from_millis(2));
        s.pump.pump();
        s.monitor.poll().unwrap();
    }

    let alerts = s.monitor.alerts();
    assert_eq!(
        alerts.len(),
        2,
        "exactly one fire + one resolve, got {alerts:#?}"
    );
    assert_eq!(alerts[0].state, AlertState::Firing);
    assert_eq!(alerts[1].state, AlertState::Resolved);
    assert!(alerts[0].at < alerts[1].at);
    assert!(s.monitor.active_alerts().is_empty());
    // The firing alert left a blackbox dump with recent history.
    let dumps = s.monitor.dump_ids();
    assert_eq!(dumps.len(), 1);
    assert!(dumps[0].starts_with("alert-1-p99-faas.invoke"), "{dumps:?}");
    assert!(s
        .jiffy
        .exists(format!("/blackbox/{}/summary.txt", dumps[0]).as_str()));
    // Nothing was shed anywhere along the pipeline.
    assert_eq!(s.tracer.dropped_spans(), 0);
    assert_eq!(s.pump.publish_errors(), 0);
    assert_eq!(s.monitor.decode_errors(), 0);
}

#[test]
fn failed_invocation_dumps_its_complete_span_tree() {
    let mut s = monitored_stack("error_rate faas.invoke < 50%");
    // The handler stages state in (traced) Jiffy, then fails — the dump
    // must show the whole causal tree, not just the failing root.
    let kv = s.jiffy.create_kv("/app/state", 1).unwrap();
    s.faas
        .register(FunctionSpec::new("ingest", "tenant", move |ctx| {
            kv.put(b"last", &ctx.payload).map_err(|e| e.to_string())?;
            Err("downstream unavailable".to_string())
        }))
        .unwrap();

    assert!(s.faas.invoke("ingest", vec![1, 2, 3]).is_err());
    s.pump.pump();
    let summary = s.monitor.poll().unwrap();
    assert_eq!(summary.dumps.len(), 1);
    let id = &summary.dumps[0];
    assert!(id.starts_with("invoke-failure-"), "{id}");

    let read = |name: &str| {
        let bytes = s
            .jiffy
            .open_file(format!("/blackbox/{id}/{name}").as_str())
            .unwrap()
            .contents()
            .unwrap();
        String::from_utf8(bytes.to_vec()).unwrap()
    };
    let text = read("summary.txt");
    // Causally complete: the invoke root, the platform's internal phases,
    // and the handler's cross-subsystem Jiffy call are all present.
    for span in [
        "faas.invoke",
        "faas.admission",
        "faas.startup",
        "faas.execute",
        "jiffy.kv_put",
    ] {
        assert!(text.contains(span), "missing {span} in dump:\n{text}");
    }
    assert!(text.contains("outcome=error"));
    assert!(text.contains("function=ingest"));
    let json = read("trace.json");
    assert!(json.contains("\"name\":\"faas.invoke\""));
    assert!(json.contains("\"name\":\"jiffy.kv_put\""));
    assert!(json.contains("\"parent_span_id\""));
    // The same failure never dumps twice.
    assert!(s.monitor.poll().unwrap().dumps.is_empty());
}

#[test]
fn disabled_telemetry_leaves_no_pulsar_footprint() {
    // The stack without any sink/pump/monitor attached: same workload,
    // zero telemetry surface.
    let clock: SharedClock = Arc::new(VirtualClock::new());
    let tracer = Tracer::new(clock.clone());
    let faas = FaasPlatform::new(PlatformConfig::deterministic(), clock.clone());
    faas.set_tracer(tracer.clone());
    let cluster = PulsarCluster::new(PulsarConfig::default(), clock.clone());
    cluster.set_tracer(tracer.clone());

    faas.register(FunctionSpec::new("api", "tenant", |_ctx| Ok(Vec::new())))
        .unwrap();
    for _ in 0..50 {
        faas.invoke("api", Vec::new()).unwrap();
    }

    // No sink attached: the tracer hands out no telemetry handle and the
    // telemetry topics were never created on the cluster.
    assert!(tracer.telemetry().is_none());
    assert!(cluster.partitions(SPANS_TOPIC).is_err());
    assert!(cluster.partitions(METRICS_TOPIC).is_err());
    // Tracing itself still works — only the monitoring plane is off.
    assert!(tracer.span_count() > 0);
    assert_eq!(tracer.dropped_spans(), 0);
}
