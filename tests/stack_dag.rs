//! Integration: the DAG workflow engine driving the whole stack — FaaS
//! compute, Jiffy spill + checkpoints, Pulsar completion events, the
//! state-machine chain-DAG bridge, and one causally-linked trace across
//! every subsystem.

use std::sync::atomic::{AtomicU32, Ordering};
use std::sync::Arc;

use taureau::dag::{Dag, DagBuilder, DagError};
use taureau::orchestration::frame;
use taureau::orchestration::statemachine::{State, StateMachine, Transition};
use taureau::prelude::*;
use taureau_faas::FunctionSpec as Spec;

fn stack() -> (FaasPlatform, Jiffy, PulsarCluster) {
    let clock = VirtualClock::shared();
    let platform = FaasPlatform::new(PlatformConfig::deterministic(), clock.clone());
    let jiffy = Jiffy::new(JiffyConfig::default(), clock.clone());
    let pulsar = PulsarCluster::new(PulsarConfig::default(), clock);
    (platform, jiffy, pulsar)
}

#[test]
fn map_reduce_wordcount_over_the_full_stack() {
    let (platform, jiffy, pulsar) = stack();
    platform
        .register(Spec::new("split", "wc", |ctx| {
            let text = String::from_utf8(ctx.payload.to_vec()).map_err(|e| e.to_string())?;
            let words: Vec<&str> = text.split_whitespace().collect();
            let chunks: Vec<Vec<u8>> = words
                .chunks(words.len().div_ceil(4).max(1))
                .map(|c| c.join(" ").into_bytes())
                .collect();
            Ok(frame::pack(&chunks))
        }))
        .unwrap();
    for i in 0..4usize {
        platform
            .register(Spec::new(format!("count-{i}"), "wc", move |ctx| {
                let chunks = frame::unpack(&ctx.payload).ok_or("malformed frame")?;
                let chunk = chunks.get(i).cloned().unwrap_or_default();
                let n = String::from_utf8(chunk)
                    .map_err(|e| e.to_string())?
                    .split_whitespace()
                    .count() as u32;
                Ok(n.to_le_bytes().to_vec())
            }))
            .unwrap();
    }
    platform
        .register(Spec::new("sum", "wc", |ctx| {
            let parts = frame::unpack(&ctx.payload).ok_or("malformed frame")?;
            let total: u32 = parts
                .iter()
                .map(|p| u32::from_le_bytes(p[..4].try_into().unwrap()))
                .sum();
            Ok(total.to_le_bytes().to_vec())
        }))
        .unwrap();

    pulsar.create_topic("wf-events", 2).unwrap();
    let mut consumer = pulsar
        .subscribe("wf-events", "audit", SubscriptionMode::Exclusive)
        .unwrap();

    let mut b = DagBuilder::new().node("split", "split", &[]);
    let mappers: Vec<String> = (0..4).map(|i| format!("map-{i}")).collect();
    for (i, m) in mappers.iter().enumerate() {
        b = b.node(m.as_str(), format!("count-{i}"), &["split"]);
    }
    let dep_refs: Vec<&str> = mappers.iter().map(String::as_str).collect();
    let dag = b.node("reduce", "sum", &dep_refs).build().unwrap();

    let exec = DagExecutor::new(&platform)
        .with_state(&jiffy)
        .with_events(pulsar.producer("wf-events").unwrap());
    let text = b"the quick brown fox jumps over the lazy dog again and again";
    let report = exec.run(&dag, "wc", text).unwrap();
    assert_eq!(report.output, 12u32.to_le_bytes().to_vec());
    assert_eq!(report.frontiers, 3);
    assert_eq!(report.invocations, 6);
    // Every node announced completion on the bus.
    assert_eq!(consumer.drain().unwrap().len(), 6);
    // Workflow state was ephemeral: the job's namespace is gone.
    assert!(!jiffy.exists("/dag-wc"));
}

#[test]
fn injected_failure_recovers_across_runs_with_identical_output() {
    let (platform, jiffy, _) = stack();
    let fail_once = Arc::new(AtomicU32::new(1));
    let f = fail_once.clone();
    platform
        .register(Spec::new("stamp", "app", |ctx| {
            let mut out = ctx.payload.to_vec();
            out.push(b'#');
            Ok(out)
        }))
        .unwrap();
    platform
        .register(Spec::new("unstable", "app", move |ctx| {
            if f.fetch_update(Ordering::SeqCst, Ordering::SeqCst, |v| v.checked_sub(1))
                .is_ok()
            {
                Err("injected".into())
            } else {
                let mut out = ctx.payload.to_vec();
                out.push(b'%');
                Ok(out)
            }
        }))
        .unwrap();
    let dag = Dag::chain(&[("a", "stamp"), ("b", "unstable"), ("c", "stamp")]).unwrap();
    let exec = DagExecutor::new(&platform).with_state(&jiffy);
    let with_failure = exec.run(&dag, "rec", b"x").unwrap();
    assert_eq!(with_failure.retries, 1);
    let clean = exec.run(&dag, "rec2", b"x").unwrap();
    assert_eq!(clean.retries, 0);
    assert_eq!(with_failure.output, clean.output);
    assert_eq!(with_failure.output, b"x#%#");
}

#[test]
fn linear_state_machines_run_unchanged_on_the_dag_executor() {
    let (platform, _, _) = stack();
    platform
        .register(Spec::new("add1", "sm", |ctx| Ok(vec![ctx.payload[0] + 1])))
        .unwrap();
    platform
        .register(Spec::new("times3", "sm", |ctx| {
            Ok(vec![ctx.payload[0] * 3])
        }))
        .unwrap();
    let machine = StateMachine::new("first")
        .state(
            "first",
            State {
                function: "add1".into(),
                next: Transition::Always("second".into()),
            },
        )
        .state(
            "second",
            State {
                function: "times3".into(),
                next: Transition::End,
            },
        );
    // Same workload, two engines, one answer.
    let sm_report = machine.run(&platform, &[4]).unwrap();
    let dag = Dag::from_state_machine(&machine).unwrap();
    let dag_report = DagExecutor::new(&platform).run(&dag, "sm", &[4]).unwrap();
    assert_eq!(sm_report.output, dag_report.output);
    assert_eq!(dag_report.output, vec![15]); // (4+1)*3
    assert_eq!(dag_report.frontiers, 2);

    // Machines with runtime routing stay on the state-machine engine.
    let branching = StateMachine::new("route").state(
        "route",
        State {
            function: "add1".into(),
            next: Transition::branch(|o| o[0] > 1, "first", "second"),
        },
    );
    assert!(matches!(
        Dag::from_state_machine(&branching),
        Err(DagError::NotAChain)
    ));
}

#[test]
fn one_trace_spans_compute_state_and_workflow_layers() {
    let (platform, jiffy, _) = stack();
    let tracer = Tracer::new(platform.clock().clone());
    platform.set_tracer(tracer.clone());
    jiffy.set_tracer(tracer.clone());
    platform
        .register(Spec::new("blow-up", "tr", |ctx| {
            Ok(ctx.payload.repeat(40_000))
        }))
        .unwrap();
    platform
        .register(Spec::new("shrink", "tr", |ctx| {
            Ok(ctx.payload.len().to_le_bytes().to_vec())
        }))
        .unwrap();
    let dag = Dag::chain(&[("grow", "blow-up"), ("fit", "shrink")]).unwrap();
    DagExecutor::new(&platform)
        .with_state(&jiffy)
        .run(&dag, "trace", b"a")
        .unwrap();
    let spans = tracer.spans();
    let root = spans.iter().find(|s| s.name == "dag.run").unwrap();
    // Jiffy's file-append span (the spill) joins the same trace as the
    // workflow and compute spans — one tree across three subsystems.
    for name in [
        "dag.node",
        "dag.checkpoint",
        "faas.invoke",
        "jiffy.file_append",
    ] {
        let span = spans
            .iter()
            .find(|s| s.name == name)
            .unwrap_or_else(|| panic!("missing span {name}"));
        assert_eq!(span.trace_id, root.trace_id, "span {name} left the trace");
    }
}
