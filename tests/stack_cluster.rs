//! Integration: the multi-node cluster fabric. Broker failover under a
//! mid-stream kill (at-least-once, no entry loss), causal trace contexts
//! and batch message identities surviving failover redelivery,
//! idempotent acks across the ownership move, bookie replacement with
//! background re-replication, and elastic Jiffy membership — all over
//! the simulated network.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Duration;

use taureau::cluster::{ClusterStack, ClusterStackConfig, LinkFaults};
use taureau::core::clock::VirtualClock;
use taureau::core::trace::Tracer;
use taureau::prelude::*;
use taureau::pulsar::bookie::Bookie;
use taureau::pulsar::metadata::MetadataStore;

// ---------------------------------------------------------------------------
// Full-fabric scenarios (requests cross the simulated network).
// ---------------------------------------------------------------------------

#[test]
fn owner_kill_mid_stream_is_at_least_once_with_no_loss() {
    let mut s = ClusterStack::new(ClusterStackConfig {
        brokers: 5,
        ..Default::default()
    });
    // A lossy, jittery network underneath everything.
    s.fabric().net().set_default_faults(LinkFaults {
        latency: Duration::from_micros(500),
        jitter: Duration::from_micros(300),
        drop_p: 0.01,
        dup_p: 0.01,
    });
    s.create_topic("stream", 1).unwrap();

    let mut published = Vec::new();
    for i in 0..60u64 {
        if i == 30 {
            // Kill the topic owner mid-stream; the next publishes ride
            // through detection, lease failover, and cursor rebuild.
            let owner = s.pulsar().owner("stream").unwrap();
            s.kill(owner);
        }
        s.publish("stream", &i.to_le_bytes(), None).unwrap();
        published.push(i);
    }

    let mut got = std::collections::BTreeSet::new();
    let mut redelivered = 0u64;
    loop {
        let msgs = s.consume("stream", "s", 64, None).unwrap();
        if msgs.is_empty() {
            break;
        }
        for m in msgs {
            let mut b = [0u8; 8];
            b.copy_from_slice(&m.payload[..8]);
            if !got.insert(u64::from_le_bytes(b)) {
                redelivered += 1;
            }
            s.ack("stream", "s", m.id, None).unwrap();
        }
    }
    // At-least-once: every entry arrives; duplicates are allowed (and
    // expected — a retried publish after failover re-appends).
    for v in published {
        assert!(got.contains(&v), "entry {v} lost across failover");
    }
    let _ = redelivered; // informational: may be zero on clean schedules
}

#[test]
fn one_trace_spans_publish_failover_dispatch_and_invoke() {
    let mut s = ClusterStack::new(ClusterStackConfig::default());
    s.create_topic("orders", 1).unwrap();
    s.register_function(FunctionSpec::new("handle", "tenant", |ctx| {
        Ok(ctx.payload.to_vec())
    }))
    .unwrap();

    let tracer = s.fabric().tracer().clone();
    let root_ctx = {
        let mut root = tracer.span("stack-cluster-test", "e2e.request");
        root.attr("test", "trace-across-failover");
        root.context().expect("tracer enabled")
    };

    // Publish with the root context; the entry header stores the publish
    // span, a child of the client's root.
    s.publish("orders", b"order-1", Some(root_ctx)).unwrap();

    // Kill the owner BEFORE dispatch: the consumer that delivers the
    // message lives on a different broker node than the one that stored
    // it.
    let owner = s.pulsar().owner("orders").unwrap();
    s.kill(owner);
    s.run_for(Duration::from_millis(150));

    let msgs = s.consume("orders", "s", 8, None).unwrap();
    assert_eq!(msgs.len(), 1);
    let m = &msgs[0];
    let msg_ctx = m
        .ctx
        .expect("traced publish must carry ctx through failover");
    assert_eq!(
        msg_ctx.trace_id, root_ctx.trace_id,
        "dispatch hop lost the publish trace"
    );

    // The invocation joins the same trace, on yet another node.
    s.invoke("handle", &m.payload, m.ctx).unwrap();

    let spans = tracer.spans();
    let in_trace: Vec<_> = spans
        .iter()
        .filter(|sp| sp.trace_id == root_ctx.trace_id)
        .collect();
    let systems: std::collections::BTreeSet<&str> = in_trace.iter().map(|sp| sp.system).collect();
    assert!(
        systems.contains("taureau-pulsar") && systems.contains("taureau-faas"),
        "trace must cross pulsar and faas: {systems:?}"
    );
    assert!(
        in_trace.len() >= 4,
        "expected publish + cluster + dispatch + invoke spans, got {}",
        in_trace.len()
    );
    assert_eq!(tracer.dropped_spans(), 0);
}

#[test]
fn bookie_replacement_rereplicates_in_background() {
    let mut s = ClusterStack::new(ClusterStackConfig::default());
    s.create_topic("t", 1).unwrap();
    for i in 0..80u64 {
        s.publish("t", &i.to_le_bytes(), None).unwrap();
    }
    let victim = s.pulsar().bookie_nodes()[1];
    s.kill(victim);
    assert!(s.pulsar().underreplicated() > 0);

    // Repair happens in chunks across maintenance rounds, not at once.
    let first = s.maintain();
    assert_eq!(first.bookies_replaced, 1);
    let rounds = s.repair_until_replicated(500);
    assert!(rounds < 500, "repair never converged");
    assert_eq!(s.pulsar().underreplicated(), 0);

    // Durability: the full stream survives losing the original bookie
    // permanently, served from the restored replication factor.
    let mut seen = 0;
    loop {
        let msgs = s.consume("t", "verify", 64, None).unwrap();
        if msgs.is_empty() {
            break;
        }
        seen += msgs.len();
        for m in msgs {
            s.ack("t", "verify", m.id, None).unwrap();
        }
    }
    assert_eq!(seen, 80);
}

#[test]
fn jiffy_membership_join_leave_under_load() {
    let mut s = ClusterStack::new(ClusterStackConfig::default());
    let kv = s.jiffy().jiffy().create_kv("/app/state", 2).unwrap();
    for i in 0..48u64 {
        kv.put(&i.to_le_bytes(), &[3u8; 128]).unwrap();
    }
    let joined = s.join_memory_node();
    let leaving = s.jiffy().memory_nodes()[0];
    let report = s.leave_memory_node(leaving).unwrap();
    assert!(report.freed_blocks + report.blocks_moved > 0);
    s.run_for(Duration::from_millis(30));
    // Data intact; survivors absorbed the modeled transfer traffic.
    for i in 0..48u64 {
        assert!(kv.get(&i.to_le_bytes()).unwrap().is_some(), "lost key {i}");
    }
    if report.blocks_moved > 0 {
        let absorbed: u64 = s
            .jiffy()
            .memory_nodes()
            .iter()
            .map(|&n| s.jiffy().received_blocks(n))
            .sum();
        assert_eq!(absorbed, report.blocks_moved);
    }
    assert!(s.fabric().is_alive(joined));
}

// ---------------------------------------------------------------------------
// Two brokers over shared bookies/metadata: the precise failover
// semantics the fabric relies on, pinned without network noise.
// ---------------------------------------------------------------------------

/// Two broker instances over one bookie fleet + metadata store, with a
/// flip-able owner cell driving both fence checks.
fn shared_pair() -> (PulsarCluster, PulsarCluster, Arc<AtomicU64>, Tracer) {
    let clock: SharedClock = VirtualClock::shared();
    let tracer = Tracer::new(clock.clone());
    let cfg = PulsarConfig {
        bookies: 3,
        max_entries_per_ledger: 4,
        ..Default::default()
    };
    let bookies: Arc<Vec<Arc<Bookie>>> =
        Arc::new((0..3).map(|i| Arc::new(Bookie::new(i))).collect());
    let meta = Arc::new(MetadataStore::new());
    let a = PulsarCluster::with_shared(cfg.clone(), clock.clone(), bookies.clone(), meta.clone());
    let b = PulsarCluster::with_shared(cfg, clock, bookies, meta);
    a.set_tracer(tracer.clone());
    b.set_tracer(tracer.clone());
    let owner = Arc::new(AtomicU64::new(0));
    let (oa, ob) = (owner.clone(), owner.clone());
    a.set_fence_check(Arc::new(move |_t| oa.load(Ordering::SeqCst) == 0));
    b.set_fence_check(Arc::new(move |_t| ob.load(Ordering::SeqCst) == 1));
    (a, b, owner, tracer)
}

#[test]
fn failover_redelivery_preserves_ctx_and_batch_identity_and_ack_idempotence() {
    let (a, b, owner, _tracer) = shared_pair();
    a.create_topic("t", 1).unwrap();

    // Publish a batch under an open trace: each message gets a distinct
    // MessageId within the shared entry, and the entry header carries
    // the publish span context.
    let producer = a.producer("t").unwrap();
    let ids = producer.send_batch(&[b"m0", b"m1", b"m2"]).unwrap();
    assert_eq!(ids.len(), 3);
    assert!(ids.iter().all(|id| id.batch_size == 3));

    // Deliver on A without acking, capturing the pre-failover identity.
    let mut ca = a.subscribe("t", "s", SubscriptionMode::Shared).unwrap();
    let before = ca.receive_batch(8).unwrap();
    assert_eq!(before.len(), 3);
    let ctx_before: Vec<_> = before.iter().map(|m| m.ctx).collect();
    assert!(
        ctx_before.iter().all(|c| c.is_some()),
        "traced publish must stamp every batched message"
    );

    // Ownership moves to B. A is fenced; B rebuilds the subscription
    // from the metadata cursor and redelivers the unacked entry.
    owner.store(1, Ordering::SeqCst);
    assert!(matches!(
        a.producer("t").and_then(|p| p.send(b"zombie")),
        Err(taureau::pulsar::PulsarError::Fenced(_))
    ));
    let mut cb = b.subscribe("t", "s", SubscriptionMode::Shared).unwrap();
    let after = cb.receive_batch(8).unwrap();
    assert_eq!(
        after.len(),
        3,
        "unacked batch must redeliver after failover"
    );

    for (i, (pre, post)) in before.iter().zip(after.iter()).enumerate() {
        // Identity: the redelivered message is THE SAME message — same
        // ledger/entry/batch coordinates — so acks correlate across the
        // failover.
        assert_eq!(pre.id, post.id, "message {i} changed identity");
        assert_eq!(post.id.batch_index, i as u32);
        assert_eq!(post.id.batch_size, 3);
        assert_eq!(pre.payload, post.payload);
        // Causality: the trace context recovered from the entry header
        // names the same trace on both sides of the failover.
        let (pc, qc) = (pre.ctx.unwrap(), post.ctx.unwrap());
        assert_eq!(pc.trace_id, qc.trace_id, "message {i} lost its trace");
    }

    // Ack idempotence across the move: double-acks (client retried after
    // the failover) are absorbed, the cursor advances, storage reclaims.
    for m in &after {
        cb.ack(m.id).unwrap();
        cb.ack(m.id).unwrap(); // duplicate ack must be a no-op
    }
    assert_eq!(cb.redeliver_unacked().unwrap(), 0);
    assert!(cb.receive_batch(8).unwrap().is_empty());
}

#[test]
fn cursor_survives_trim_plus_failover_without_skipping_entries() {
    let (a, b, owner, _tracer) = shared_pair();
    a.create_topic("t", 1).unwrap();
    let producer = a.producer("t").unwrap();
    // 12 entries at 4/ledger = 3 full segments.
    for i in 0..12u64 {
        producer.send(&i.to_le_bytes()).unwrap();
    }
    let mut ca = a.subscribe("t", "s", SubscriptionMode::Shared).unwrap();
    // Consume + ack the first segment and a bit of the second, then trim:
    // the first segment's ledger disappears from the topic.
    for _ in 0..5 {
        let m = ca.receive().unwrap().unwrap();
        ca.ack(m.id).unwrap();
    }
    a.trim_consumed("t").unwrap();

    // Failover. The new owner restores the cursor from the persisted
    // mark-delete, whose segment may have been trimmed — it must resume
    // exactly at the first unconsumed entry, not skip a segment.
    owner.store(1, Ordering::SeqCst);
    let mut cb = b.subscribe("t", "s", SubscriptionMode::Shared).unwrap();
    let rest = cb.receive_batch(64).unwrap();
    let values: Vec<u64> = rest
        .iter()
        .map(|m| {
            let mut x = [0u8; 8];
            x.copy_from_slice(&m.payload[..8]);
            u64::from_le_bytes(x)
        })
        .collect();
    assert_eq!(
        values,
        (5..12).collect::<Vec<u64>>(),
        "post-trim resume lost entries"
    );
    for m in &rest {
        cb.ack(m.id).unwrap();
    }
    assert!(cb.receive_batch(8).unwrap().is_empty());
}
