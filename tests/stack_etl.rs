//! Integration: the ETL application across FaaS + Jiffy + orchestration,
//! with a billing audit at the end.

use taureau::apps::etl::{run_batched, synthetic_lines, EtlPipeline};
use taureau::prelude::*;

fn stack() -> (FaasPlatform, Jiffy) {
    let clock = VirtualClock::shared();
    (
        FaasPlatform::new(PlatformConfig::deterministic(), clock.clone()),
        Jiffy::new(JiffyConfig::default(), clock),
    )
}

#[test]
fn etl_processes_a_realistic_batch() {
    let (platform, jiffy) = stack();
    let pipeline = EtlPipeline::deploy(&platform, &jiffy, 0.0, 1.0);
    let lines = synthetic_lines(2000, 20, 7);
    let report = run_batched(&pipeline, &lines, 250).unwrap();
    assert_eq!(report.input_lines, 2000);
    assert_eq!(report.extracted, 1900); // 5% malformed dropped
    assert_eq!(report.loaded, 1900);
    // 8 batches x 3 stages.
    assert_eq!(report.invocations, 24);
    // Aggregates cover all loaded records.
    let total: u64 = ["web", "iot", "mobile", "batch"]
        .iter()
        .filter_map(|c| pipeline.aggregate(c))
        .map(|(count, _)| count)
        .sum();
    assert_eq!(total, 1900);
}

#[test]
fn etl_billing_matches_executions() {
    let (platform, jiffy) = stack();
    let pipeline = EtlPipeline::deploy(&platform, &jiffy, 0.0, 1.0);
    run_batched(&pipeline, &synthetic_lines(100, 0, 8), 50).unwrap();
    // 2 batches x 3 stages, each billed at least one 100 ms granule.
    assert_eq!(platform.billing().invocations("etl"), 6);
    let min_granule = platform
        .billing()
        .pricing()
        .invocation_cost(ByteSize::mb(512), std::time::Duration::from_millis(1));
    assert!(platform.billing().total("etl") >= 6.0 * min_granule * 0.99);
}

#[test]
fn etl_state_survives_in_jiffy_between_batches() {
    let (platform, jiffy) = stack();
    let pipeline = EtlPipeline::deploy(&platform, &jiffy, 0.0, 2.0);
    pipeline.run(&["1,web,5.0".to_string()]).unwrap();
    pipeline.run(&["2,web,7.0".to_string()]).unwrap();
    // Both records and a combined aggregate visible from outside.
    assert_eq!(pipeline.lookup(1).unwrap().value, 10.0);
    assert_eq!(pipeline.lookup(2).unwrap().value, 14.0);
    assert_eq!(pipeline.aggregate("web"), Some((2, 24.0)));
    // The underlying Jiffy namespace exists and holds blocks.
    assert!(jiffy.exists("/etl/sink"));
    assert!(jiffy.blocks_held_by("etl") > 0);
}
