//! Integration: failure injection across the stack — bookie crashes during
//! replication, lease expiry reclaiming a live job's state, and function
//! re-execution semantics.

use std::sync::atomic::{AtomicU32, Ordering};
use std::sync::Arc;
use std::time::Duration;

use taureau::prelude::*;
use taureau_faas::{FaasError, FunctionSpec};
use taureau_jiffy::JiffyError;
use taureau_pulsar::broker::PulsarConfig as PCfg;
use taureau_pulsar::ledger::LedgerConfig;

#[test]
fn messaging_survives_single_bookie_crash_end_to_end() {
    let cfg = PCfg {
        bookies: 4,
        ledger: LedgerConfig {
            ensemble: 3,
            write_quorum: 2,
            ack_quorum: 2,
        },
        max_entries_per_ledger: 16,
    };
    let cluster = PulsarCluster::new(cfg, WallClock::shared());
    cluster.create_topic("t", 1).unwrap();
    let producer = cluster.producer("t").unwrap();
    for i in 0..40u64 {
        producer.send(&i.to_le_bytes()).unwrap();
    }
    // One bookie dies; every message must still be readable from replicas,
    // and publishing continues (rollover onto live ensembles).
    cluster.bookies()[1].crash();
    for i in 40..60u64 {
        producer.send(&i.to_le_bytes()).unwrap();
    }
    let mut consumer = cluster
        .subscribe("t", "s", SubscriptionMode::Exclusive)
        .unwrap();
    let got = consumer.drain().unwrap();
    assert_eq!(got.len(), 60, "messages lost after bookie crash");
    let payloads: Vec<u64> = got
        .iter()
        .map(|m| u64::from_le_bytes(m.payload[..].try_into().unwrap()))
        .collect();
    assert_eq!(payloads, (0..60).collect::<Vec<_>>());
}

#[test]
fn lease_expiry_reclaims_abandoned_job_state() {
    let clock = VirtualClock::shared();
    let jiffy = Jiffy::new(
        JiffyConfig {
            default_lease_ttl: Duration::from_secs(30),
            ..JiffyConfig::default()
        },
        clock.clone(),
    );
    // A job stages state, then its producer crashes (no more accesses).
    let kv = jiffy.create_kv("/crashed-job/state", 4).unwrap();
    kv.put(b"progress", b"50%").unwrap();
    let held = jiffy.blocks_held_by("crashed-job");
    assert!(held > 0);
    // A live job keeps renewing by using its state.
    let live = jiffy.create_kv("/live-job/state", 2).unwrap();
    for _ in 0..5 {
        clock.advance(Duration::from_secs(20));
        live.put(b"heartbeat", b"x").unwrap();
        jiffy.reap_expired();
    }
    // The crashed job is gone; the live one survives.
    assert!(!jiffy.exists("/crashed-job"));
    assert_eq!(jiffy.blocks_held_by("crashed-job"), 0);
    assert!(jiffy.exists("/live-job"));
    assert!(matches!(kv.get(b"progress"), Err(JiffyError::NotFound(_))));
}

#[test]
fn subscriber_is_notified_of_lease_reclamation() {
    let clock = VirtualClock::shared();
    let jiffy = Jiffy::new(JiffyConfig::default(), clock.clone());
    let sub = jiffy.subscribe("/job");
    jiffy.create_queue("/job/out").unwrap();
    sub.drain();
    clock.advance(Duration::from_secs(3600));
    jiffy.reap_expired();
    let events = sub.drain();
    assert!(
        events
            .iter()
            .any(|e| matches!(e.kind, taureau_jiffy::EventKind::LeaseExpired)),
        "consumer never learned its input vanished: {events:?}"
    );
}

#[test]
fn at_least_once_reexecution_duplicates_side_effects() {
    // §4.1: "most FaaS platforms re-execute functions transparently on
    // failure" — which is why the paper stresses transactional BaaS
    // semantics. Demonstrate the anomaly: a non-idempotent function
    // double-writes under retry.
    let clock = VirtualClock::shared();
    let platform = FaasPlatform::new(PlatformConfig::deterministic(), clock.clone());
    let jiffy = Jiffy::new(JiffyConfig::default(), clock);
    let store = jiffy.clone();
    let fail_once = Arc::new(AtomicU32::new(1));
    let f = fail_once.clone();
    platform
        .register(FunctionSpec::new("append-row", "t", move |_| {
            let q = store
                .open_queue("/t/rows")
                .or_else(|_| store.create_queue("/t/rows"))
                .map_err(|e| e.to_string())?;
            q.push(b"row").map_err(|e| e.to_string())?;
            if f.fetch_update(Ordering::SeqCst, Ordering::SeqCst, |n| n.checked_sub(1))
                .is_ok()
            {
                Err("crash after side effect".into())
            } else {
                Ok(vec![])
            }
        }))
        .unwrap();
    let r = platform
        .invoke_with_retries("append-row", &[][..], 3)
        .unwrap();
    assert_eq!(r.attempts, 2);
    // The side effect happened twice — at-least-once, not exactly-once.
    let q = jiffy.open_queue("/t/rows").unwrap();
    assert_eq!(q.len().unwrap(), 2);
}

#[test]
fn timeout_mid_job_is_billed_and_reported() {
    let clock = VirtualClock::shared();
    let platform = FaasPlatform::new(PlatformConfig::deterministic(), clock.clone());
    platform
        .register(
            FunctionSpec::new("runaway", "t", |ctx| {
                ctx.burn(Duration::from_secs(300));
                Ok(vec![])
            })
            .with_timeout(Duration::from_secs(30)),
        )
        .unwrap();
    let err = platform.invoke("runaway", &[][..]).unwrap_err();
    assert!(matches!(err, FaasError::Timeout { .. }));
    // Billed for the timeout window, not the runaway duration.
    let billed = platform.billing().total("t");
    let cap = platform
        .billing()
        .pricing()
        .invocation_cost(ByteSize::mb(512), Duration::from_secs(30));
    assert!((billed - cap).abs() < 1e-12);
}

#[test]
fn pool_exhaustion_fails_cleanly_and_recovers() {
    let clock = VirtualClock::shared();
    let jiffy = Jiffy::new(
        JiffyConfig {
            memory_nodes: 1,
            blocks_per_node: 8,
            block_size: ByteSize::kb(4),
            ..JiffyConfig::default()
        },
        clock,
    );
    let f = jiffy.create_file("/big/blob").unwrap();
    // 8 blocks of 4 KiB = 32 KiB capacity; a 64 KiB write must fail…
    assert!(matches!(
        f.append(&vec![0u8; 64 * 1024]),
        Err(JiffyError::PoolExhausted { .. })
    ));
    // …but freeing makes room again.
    jiffy.remove_namespace("/big").unwrap();
    let g = jiffy.create_file("/small/blob").unwrap();
    assert!(g.append(&vec![0u8; 8 * 1024]).is_ok());
}
