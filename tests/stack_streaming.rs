//! Integration: streaming analytics across Pulsar + Functions + Jiffy +
//! sketches — including a broker restart in the middle of the pipeline
//! (the §4.3 statelessness claim, end to end).

use taureau::core::rng::{det_rng, Zipf};
use taureau::prelude::*;
use taureau::sketches::HyperLogLog;

fn stack() -> (PulsarCluster, FunctionRuntime) {
    let cluster = PulsarCluster::with_defaults();
    let jiffy = Jiffy::with_defaults();
    let runtime = FunctionRuntime::new(cluster.clone(), jiffy);
    (cluster, runtime)
}

#[test]
fn countmin_estimates_match_truth_within_bound() {
    let (cluster, runtime) = stack();
    cluster.create_topic("events", 1).unwrap();
    cluster.create_topic("estimates", 1).unwrap();
    let mut sketch = CountMinSketch::with_error_bounds(0.001, 0.01, 3);
    runtime
        .register(
            FunctionConfig {
                name: "cm".into(),
                inputs: vec!["events".into()],
                output: Some("estimates".into()),
            },
            Box::new(move |msg, _| {
                sketch.add(&msg.payload, 1);
                Some(sketch.estimate(&msg.payload).to_le_bytes().to_vec())
            }),
        )
        .unwrap();

    let producer = cluster.producer("events").unwrap();
    let zipf = Zipf::new(200, 1.1);
    let mut rng = det_rng(3);
    let n = 5000;
    let mut truth = vec![0u64; 200];
    let mut stream = Vec::with_capacity(n);
    for _ in 0..n {
        let item = zipf.sample(&mut rng);
        truth[item] += 1;
        stream.push(item);
        producer.send(&(item as u64).to_le_bytes()).unwrap();
    }
    runtime.run_available("cm").unwrap();

    // The final estimate per item (last message per item) must be >= its
    // true running count and within eps*N of it.
    let mut reader = cluster
        .subscribe("estimates", "check", SubscriptionMode::Exclusive)
        .unwrap();
    let estimates: Vec<u64> = reader
        .drain()
        .unwrap()
        .iter()
        .map(|m| u64::from_le_bytes(m.payload[..].try_into().unwrap()))
        .collect();
    assert_eq!(estimates.len(), n);
    // Track running truth as the stream replays.
    let mut running = vec![0u64; 200];
    let bound = (0.001 * n as f64).ceil() as u64 + 1;
    for (idx, &item) in stream.iter().enumerate() {
        running[item] += 1;
        let est = estimates[idx];
        assert!(est >= running[item], "underestimate at event {idx}");
        assert!(
            est - running[item] <= bound,
            "event {idx}: est {est}, truth {}, bound {bound}",
            running[item]
        );
    }
}

#[test]
fn pipeline_survives_broker_restart() {
    let (cluster, runtime) = stack();
    cluster.create_topic("in", 1).unwrap();
    cluster.create_topic("out", 1).unwrap();
    runtime
        .register(
            FunctionConfig {
                name: "upper".into(),
                inputs: vec!["in".into()],
                output: Some("out".into()),
            },
            Box::new(|msg, _| Some(msg.payload.to_ascii_uppercase())),
        )
        .unwrap();
    let producer = cluster.producer("in").unwrap();
    for i in 0..50u64 {
        producer.send(format!("msg-{i}").as_bytes()).unwrap();
    }
    // Process the first wave, then the broker dies: all of its in-memory
    // topic/cursor state is discarded and rebuilt from metadata + ledgers.
    assert_eq!(runtime.run_available("upper").unwrap(), 50);
    cluster.restart_broker();
    for i in 50..60u64 {
        producer.send(format!("msg-{i}").as_bytes()).unwrap();
    }
    runtime.run_available("upper").unwrap();
    let mut reader = cluster
        .subscribe("out", "check", SubscriptionMode::Exclusive)
        .unwrap();
    let msgs = reader.drain().unwrap();
    assert_eq!(msgs.len(), 60, "lost messages across broker restart");
    assert!(msgs
        .iter()
        .all(|m| m.payload_str().unwrap().starts_with("MSG-")));
}

#[test]
fn distributed_hll_merges_across_function_instances() {
    // Two function instances sketch disjoint partitions of a topic; their
    // merged HLL estimates the full distinct count — the Mergeable
    // property doing real work.
    let (cluster, runtime) = stack();
    cluster.create_topic("visits", 2).unwrap();
    let results: std::sync::Arc<std::sync::Mutex<Vec<HyperLogLog>>> =
        std::sync::Arc::new(std::sync::Mutex::new(Vec::new()));
    for part in 0..2 {
        let results = results.clone();
        let mut hll = HyperLogLog::new(12, 99);
        runtime
            .register(
                FunctionConfig {
                    name: format!("hll-{part}"),
                    inputs: vec!["visits".into()],
                    output: None,
                },
                Box::new(move |msg, _| {
                    hll.add(&msg.payload);
                    // Snapshot on every event; the last snapshot wins.
                    let mut r = results.lock().unwrap();
                    while r.len() <= part {
                        r.push(HyperLogLog::new(12, 99));
                    }
                    r[part] = hll.clone();
                    None
                }),
            )
            .unwrap();
    }
    let producer = cluster.producer("visits").unwrap();
    let mut rng = det_rng(5);
    use rand::Rng;
    let mut distinct = std::collections::HashSet::new();
    for _ in 0..4000 {
        let user: u64 = rng.gen_range(0..1500);
        distinct.insert(user);
        producer
            .send_keyed(&user.to_le_bytes(), &user.to_le_bytes())
            .unwrap();
    }
    runtime.run_to_quiescence().unwrap();
    let snapshots = results.lock().unwrap();
    // The two functions shared one subscription per function name, but both
    // read the whole topic (each has its own subscription) — merge both
    // partial sketches. Since each function consumed everything, merging is
    // idempotent; estimate must be near the true distinct count.
    let mut merged = snapshots[0].clone();
    merged.merge(&snapshots[1]).unwrap();
    let est = merged.estimate();
    let err = (est - distinct.len() as f64).abs() / distinct.len() as f64;
    assert!(err < 0.1, "est {est}, truth {}", distinct.len());
}
