//! Integration: the cluster-scale simulator reproduces the paper's
//! economic claims in shape — serverless wins under spiky load, the
//! server-centric fleet wins at sustained high utilisation, and the whole
//! simulation is deterministic.

use std::time::Duration;

use taureau::core::bytesize::ByteSize;
use taureau::core::latency::LatencyModel;
use taureau::sim::serverless::{simulate_serverless, ServerlessConfig};
use taureau::sim::vmfleet::{simulate_vm_fleet, VmFleetConfig, VmScalingPolicy};
use taureau::sim::workload::{typical_duration_model, WorkloadSpec};

fn hour() -> Duration {
    Duration::from_secs(3600)
}

#[test]
fn serverless_wins_on_spiky_low_utilization_load() {
    // §3.2's shape: peak >> mean, minimum near zero.
    let spec = WorkloadSpec::Bursty {
        on_rate: 40.0,
        on_mean: Duration::from_secs(20),
        off_mean: Duration::from_secs(300),
    };
    let w = spec.generate(hour(), &typical_duration_model(), ByteSize::mb(512), 1);
    let sl = simulate_serverless(&w, &ServerlessConfig::default());
    let vm = simulate_vm_fleet(
        &w,
        &VmFleetConfig {
            policy: VmScalingPolicy::FixedAtPeak,
            ..VmFleetConfig::default()
        },
    );
    assert!(
        sl.cost < vm.cost / 2.0,
        "serverless {} should be well under peak-provisioned VM {}",
        sl.cost,
        vm.cost
    );
}

#[test]
fn vms_win_at_sustained_high_utilization() {
    // The crossover the paper's cost argument implies: steady, saturating
    // load favors reserved capacity.
    let spec = WorkloadSpec::Poisson { rate: 400.0 };
    let w = spec.generate(
        hour(),
        &LatencyModel::Constant(Duration::from_millis(500)),
        ByteSize::gb(1),
        2,
    );
    let sl = simulate_serverless(&w, &ServerlessConfig::default());
    let vm = simulate_vm_fleet(
        &w,
        &VmFleetConfig {
            policy: VmScalingPolicy::FixedAtPeak,
            ..VmFleetConfig::default()
        },
    );
    assert!(
        vm.cost < sl.cost,
        "at sustained load VMs ({}) should beat serverless ({})",
        vm.cost,
        sl.cost
    );
    // And the fleet is actually busy.
    assert!(
        vm.mean_utilization > 0.3,
        "utilization {}",
        vm.mean_utilization
    );
}

#[test]
fn cold_start_fraction_vs_keep_alive_shape() {
    // E2's ablation shape: longer keep-alive monotonically (within noise)
    // reduces the cold-start fraction.
    let spec = WorkloadSpec::Poisson { rate: 1.0 };
    let w = spec.generate(hour(), &typical_duration_model(), ByteSize::mb(512), 3);
    let mut last = f64::INFINITY;
    for keep_secs in [1u64, 10, 60, 600] {
        let cfg = ServerlessConfig {
            keep_alive: Duration::from_secs(keep_secs),
            ..ServerlessConfig::default()
        };
        let out = simulate_serverless(&w, &cfg);
        assert!(
            out.cold_fraction() <= last + 0.02,
            "keep-alive {keep_secs}s worsened cold fraction: {} -> {}",
            last,
            out.cold_fraction()
        );
        last = out.cold_fraction();
    }
    assert!(last < 0.2, "long keep-alive should mostly eliminate colds");
}

#[test]
fn simulation_is_deterministic() {
    let spec = WorkloadSpec::diurnal_with_peak_ratio(10.0, 5.0, Duration::from_secs(600));
    let w1 = spec.generate(hour(), &typical_duration_model(), ByteSize::mb(512), 7);
    let w2 = spec.generate(hour(), &typical_duration_model(), ByteSize::mb(512), 7);
    let a = simulate_serverless(&w1, &ServerlessConfig::default());
    let b = simulate_serverless(&w2, &ServerlessConfig::default());
    assert_eq!(a.requests, b.requests);
    assert_eq!(a.cold_starts, b.cold_starts);
    assert!((a.cost - b.cost).abs() < 1e-12);
    assert_eq!(a.latency_us.p99(), b.latency_us.p99());
}

#[test]
fn provider_side_multiplexing_footprint() {
    // The provider's win (§6 "higher degree of resource multiplexing"):
    // container-seconds are far below a peak fleet's slot-seconds.
    let spec = WorkloadSpec::Bursty {
        on_rate: 30.0,
        on_mean: Duration::from_secs(30),
        off_mean: Duration::from_secs(240),
    };
    let w = spec.generate(hour(), &typical_duration_model(), ByteSize::mb(512), 9);
    let sl = simulate_serverless(
        &w,
        &ServerlessConfig {
            keep_alive: Duration::from_secs(60),
            ..Default::default()
        },
    );
    let peak_fleet_slot_seconds = w.peak_concurrency() as f64 * 3600.0;
    assert!(
        sl.container_seconds < peak_fleet_slot_seconds / 2.0,
        "containers {} vs peak-fleet {}",
        sl.container_seconds,
        peak_fleet_slot_seconds
    );
}
