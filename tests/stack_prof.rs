//! Integration: causal context propagation across the deconstructed
//! stack, and the taureau-prof analyzers over the resulting trace. One
//! published message must yield ONE trace that follows
//! publish → dispatch → invoke across crates — every hop sharing the
//! publish span's trace id with correct parent links — and the trace
//! graph / critical-path / contention reports must be computable from it.

use std::sync::Arc;

use taureau::core::trace::SpanRecord;
use taureau::prelude::*;
use taureau::prof::render;

struct Stack {
    tracer: Tracer,
    pulsar: PulsarCluster,
    faas: FaasPlatform,
}

/// Pulsar + FaaS on one wall clock sharing one tracer, with an echo
/// function registered. Wall time (not virtual) so spans have real,
/// nonzero durations for the analyzers to attribute.
fn traced_stack() -> Stack {
    let clock: SharedClock = WallClock::shared();
    let tracer = Tracer::new(clock.clone());
    let pulsar = PulsarCluster::new(PulsarConfig::default(), clock.clone());
    pulsar.set_tracer(tracer.clone());
    let faas = FaasPlatform::new(PlatformConfig::deterministic(), clock);
    faas.set_tracer(tracer.clone());
    faas.register(FunctionSpec::new("handle", "tenant", |ctx| {
        Ok(ctx.payload.to_vec())
    }))
    .unwrap();
    pulsar.create_topic("jobs", 1).unwrap();
    Stack {
        tracer,
        pulsar,
        faas,
    }
}

fn by_name<'a>(spans: &'a [SpanRecord], name: &str) -> Vec<&'a SpanRecord> {
    spans.iter().filter(|s| s.name == name).collect()
}

#[test]
fn one_trace_follows_publish_dispatch_invoke_across_crates() {
    let stack = traced_stack();
    let producer = stack.pulsar.producer("jobs").unwrap();
    let mut consumer = stack
        .pulsar
        .subscribe("jobs", "workers", SubscriptionMode::Exclusive)
        .unwrap();

    producer.send(b"job-1").unwrap();
    let msg = consumer.receive().unwrap().unwrap();
    let ctx = msg.ctx.expect("traced broker must stamp message context");
    // The consumer-side function invocation adopts the message context.
    stack
        .faas
        .invoke_traced("handle", msg.payload.clone(), Some(ctx))
        .unwrap();

    let spans = stack.tracer.spans();
    let publish = by_name(&spans, "pulsar.publish")[0];
    let dispatch = by_name(&spans, "pulsar.dispatch_msg")[0];
    let invoke = by_name(&spans, "faas.invoke")[0];

    // One trace end to end, rooted at the publish.
    assert_eq!(publish.parent, None);
    assert_eq!(dispatch.trace_id, publish.trace_id);
    assert_eq!(invoke.trace_id, publish.trace_id);
    // Correct hop-by-hop parent links: publish → dispatch → invoke.
    assert_eq!(dispatch.parent, Some(publish.span_id));
    assert_eq!(invoke.parent, Some(dispatch.span_id));
    // The invocation's nested platform spans ride in the same trace, so
    // the trace really does cross the crate boundary with structure.
    let execute = by_name(&spans, "faas.execute")[0];
    assert_eq!(execute.trace_id, publish.trace_id);
    assert_eq!(execute.parent, Some(invoke.span_id));

    // The analyzers consume the trace: the flat profile sees every hop...
    let trace_id = publish.trace_id;
    let graph = TraceGraph::build(spans.clone());
    let flat = graph.self_time_by_name();
    for hop in ["pulsar.publish", "pulsar.dispatch_msg", "faas.invoke"] {
        assert!(flat.iter().any(|(n, _)| n == hop), "{hop} missing");
    }
    // ...the critical path attributes the root's full latency...
    let cp = CriticalPath::compute(&graph, trace_id).unwrap();
    let attributed: std::time::Duration = cp.segments.iter().map(|s| s.duration()).sum();
    assert_eq!(attributed, cp.total);
    assert!(cp.top_name(&graph).is_some());
    // ...and both renderers produce non-degenerate output.
    let report = render::render_critical_path(&graph, &cp);
    assert!(report.contains("critical path of trace"));
    let tree = render::render_tree(&graph, trace_id, Some(&cp));
    assert!(tree.contains("pulsar.publish"));
    let json = render::chrome_trace(&graph);
    assert!(json.starts_with('[') && json.contains("pulsar.dispatch_msg"));
}

#[test]
fn batched_publish_fans_into_per_message_dispatch_spans() {
    let stack = traced_stack();
    let producer = stack.pulsar.producer("jobs").unwrap();
    let mut consumer = stack
        .pulsar
        .subscribe("jobs", "workers", SubscriptionMode::Exclusive)
        .unwrap();
    producer.send_batch(&[b"a".as_slice(), b"b", b"c"]).unwrap();
    let got = consumer.receive_batch(10).unwrap();
    assert_eq!(got.len(), 3);
    let spans = stack.tracer.spans();
    let publish = by_name(&spans, "pulsar.publish_batch")[0];
    // All three messages decode out of ONE ledger entry, yet each gets
    // its own dispatch span in the batch's publish trace.
    for m in &got {
        let ctx = m.ctx.unwrap();
        assert_eq!(ctx.trace_id, publish.trace_id);
        let hop = spans.iter().find(|s| s.span_id == ctx.span_id).unwrap();
        assert_eq!(hop.name, "pulsar.dispatch_msg");
        assert_eq!(hop.parent, Some(publish.span_id));
    }
}

#[test]
fn contention_profiler_reports_through_the_stack() {
    let stack = traced_stack();
    let prof = taureau::core::sync::ContentionProfiler::new();
    let site = stack.pulsar.enable_contention_profiling(&prof);
    let producer = stack.pulsar.producer("jobs").unwrap();
    // Hammer one topic (one shard) from several threads so acquisitions
    // actually contend.
    std::thread::scope(|s| {
        for _ in 0..4 {
            s.spawn(|| {
                for _ in 0..100 {
                    producer.send(b"x").unwrap();
                }
            });
        }
    });
    let snap = site.snapshot();
    assert!(snap.acquisitions >= 400);
    let report = ContentionReport::new(prof.snapshots());
    assert_eq!(report.sites()[0].name, "pulsar.topics");
    let text = report.render();
    assert!(text.contains("pulsar.topics"), "{text}");
    drop(Arc::clone(&site));
}
