//! Integration: the §5.1 analytics workloads sharing one platform and one
//! Jiffy deployment — graph processing, matrix multiplication, and
//! sequence comparison running back-to-back with correct isolation.

use std::sync::Arc;

use taureau::apps::graph::{run_pregel, sssp_seq, Graph, Sssp};
use taureau::apps::matmul::{distributed_multiply, Matrix};
use taureau::apps::seqcompare::{all_pairs_serverless, smith_waterman, synthetic_proteins};
use taureau::prelude::*;

fn stack() -> (FaasPlatform, Jiffy) {
    let clock = VirtualClock::shared();
    (
        FaasPlatform::new(PlatformConfig::deterministic(), clock.clone()),
        Jiffy::new(JiffyConfig::default(), clock),
    )
}

#[test]
fn three_analytics_jobs_share_the_stack() {
    let (platform, jiffy) = stack();

    // 1. Graph job.
    let g = Arc::new(Graph::random(40, 160, 1));
    let sssp = run_pregel(
        &platform,
        &jiffy,
        Arc::clone(&g),
        Arc::new(Sssp { source: 0 }),
        3,
        "shared-sssp",
    );
    let reference = sssp_seq(&g, 0);
    for (a, b) in sssp.values.iter().zip(&reference) {
        if b.is_finite() {
            assert!((a - b).abs() < 1e-6);
        }
    }

    // 2. Matmul job on the same deployment.
    let a = Matrix::random(24, 24, 2);
    let b = Matrix::random(24, 24, 3);
    let (c, _) = distributed_multiply(&platform, &jiffy, &a, &b, 3);
    assert!(a.mul_naive(&b).max_abs_diff(&c).unwrap() < 1e-9);

    // 3. Bioinformatics job.
    let seqs = Arc::new(synthetic_proteins(5, 30, 4));
    let pairs = all_pairs_serverless(&platform, &jiffy, Arc::clone(&seqs), "shared-bio");
    assert_eq!(pairs.invocations, 10);
    assert_eq!(
        pairs.score(0, 1),
        smith_waterman(&seqs[0], &seqs[1], 2, -1, -1)
    );

    // All jobs cleaned their ephemeral namespaces; the pool is empty.
    assert_eq!(jiffy.pool_stats().allocated_blocks, 0);
    // Each tenant was billed separately.
    assert!(platform.billing().total("pregel") > 0.0);
    assert!(platform.billing().total("matmul") > 0.0);
    assert!(platform.billing().total("bio") > 0.0);
}

#[test]
fn jiffy_multiplexing_across_sequential_jobs() {
    // The E5 claim at application scale: jobs run one after another, so
    // the pool's peak is far below the sum of per-job peaks.
    let (platform, jiffy) = stack();
    for job in 0..4 {
        let a = Matrix::random(32, 32, job);
        let b = Matrix::random(32, 32, job + 100);
        let (_, _) = distributed_multiply(&platform, &jiffy, &a, &b, 2);
    }
    let (pool_peak, sum_of_peaks) = jiffy.multiplexing_report();
    assert!(
        (sum_of_peaks as f64) >= 1.5 * pool_peak as f64 || sum_of_peaks == pool_peak,
        "pool peak {pool_peak}, sum of app peaks {sum_of_peaks}"
    );
    assert_eq!(jiffy.pool_stats().allocated_blocks, 0);
}

#[test]
fn concurrent_tenants_stay_isolated_under_quota() {
    // A greedy analytics job cannot starve a small one when quotas are on.
    let clock = VirtualClock::shared();
    let platform = FaasPlatform::new(PlatformConfig::deterministic(), clock.clone());
    let jiffy = Jiffy::new(
        JiffyConfig {
            memory_nodes: 2,
            blocks_per_node: 32,
            block_size: ByteSize::kb(16),
            app_quota_blocks: Some(24),
            ..JiffyConfig::default()
        },
        clock,
    );
    // Greedy tenant tries to stage far more than its quota.
    let f = jiffy.create_file("/greedy/blob").unwrap();
    let res = f.append(&vec![0u8; 16 * 1024 * 30]);
    assert!(res.is_err(), "quota should have stopped the greedy tenant");
    // The small job still completes.
    let a = Matrix::random(8, 8, 5);
    let b = Matrix::random(8, 8, 6);
    let (c, _) = distributed_multiply(&platform, &jiffy, &a, &b, 2);
    assert!(a.mul_naive(&b).max_abs_diff(&c).unwrap() < 1e-9);
}
