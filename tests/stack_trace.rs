//! Integration: end-to-end request tracing across the deconstructed
//! stack. One FaaS invocation whose handler synchronously stages state in
//! Jiffy and publishes to Pulsar must produce a single causally-linked
//! span tree covering all three subsystems, and the exporters (Chrome
//! trace-event JSON, flame summary, Prometheus text format) must be
//! well-formed.

use std::sync::Arc;

use taureau::core::trace::SpanRecord;
use taureau::prelude::*;

/// Build the full stack on one virtual clock with one shared tracer, and
/// run `invocations` requests through a handler that touches Jiffy (kv
/// put + get) and Pulsar (publish) on the invoking thread.
fn traced_stack(invocations: u64) -> (Tracer, FaasPlatform, PulsarCluster, Jiffy) {
    let clock: SharedClock = Arc::new(VirtualClock::new());
    let tracer = Tracer::new(clock.clone());

    let faas = FaasPlatform::new(PlatformConfig::deterministic(), clock.clone());
    faas.set_tracer(tracer.clone());
    let pulsar = PulsarCluster::new(PulsarConfig::default(), clock.clone());
    pulsar.set_tracer(tracer.clone());
    pulsar.create_topic("events", 1).unwrap();
    let jiffy = Jiffy::new(JiffyConfig::default(), clock);
    jiffy.set_tracer(tracer.clone());

    let producer = pulsar.producer("events").unwrap();
    let kv = jiffy.create_kv("/trace/state", 1).unwrap();
    faas.register(FunctionSpec::new("pipeline", "tenant", move |ctx| {
        kv.put(b"last", &ctx.payload).map_err(|e| e.to_string())?;
        let staged = kv
            .get(b"last")
            .map_err(|e| e.to_string())?
            .unwrap_or_default();
        producer.send(&staged).map_err(|e| e.to_string())?;
        Ok(staged.to_vec())
    }))
    .unwrap();

    for i in 0..invocations {
        faas.invoke("pipeline", i.to_le_bytes().to_vec()).unwrap();
    }
    (tracer, faas, pulsar, jiffy)
}

/// All spans reachable from `root` by parent links (excluding the root).
fn descendants<'a>(spans: &'a [SpanRecord], root: &SpanRecord) -> Vec<&'a SpanRecord> {
    let mut out = Vec::new();
    let mut frontier = vec![root.span_id];
    while let Some(id) = frontier.pop() {
        for child in spans.iter().filter(|s| s.parent == Some(id)) {
            out.push(child);
            frontier.push(child.span_id);
        }
    }
    out
}

#[test]
fn one_invocation_yields_one_tree_spanning_three_systems() {
    let (tracer, _faas, _pulsar, _jiffy) = traced_stack(3);
    let spans = tracer.spans();
    let roots: Vec<_> = spans.iter().filter(|s| s.name == "faas.invoke").collect();
    assert_eq!(roots.len(), 3);
    for root in roots {
        assert_eq!(root.parent, None, "faas.invoke must root its trace");
        let kids = descendants(&spans, root);
        // Every descendant stays in the root's trace.
        assert!(kids.iter().all(|s| s.trace_id == root.trace_id));
        // The tree covers compute, messaging, and ephemeral state.
        for system in ["taureau-faas", "taureau-pulsar", "taureau-jiffy"] {
            assert!(
                kids.iter().any(|s| s.system == system),
                "no {system} span under faas.invoke"
            );
        }
        // Cross-crate nesting: the bookie append hangs under the publish,
        // which hangs (transitively) under the invocation.
        let publish = kids.iter().find(|s| s.name == "pulsar.publish").unwrap();
        assert!(kids
            .iter()
            .any(|s| s.name == "pulsar.bookie_append" && s.parent == Some(publish.span_id)));
        // Timestamps stay within the root's window.
        assert!(kids
            .iter()
            .all(|s| root.start <= s.start && s.end <= root.end));
    }
    // The three invocations are three distinct traces.
    let mut trace_ids: Vec<_> = spans
        .iter()
        .filter(|s| s.name == "faas.invoke")
        .map(|s| s.trace_id)
        .collect();
    trace_ids.dedup();
    assert_eq!(trace_ids.len(), 3);
}

#[test]
fn chrome_export_is_well_formed_json_with_parent_links() {
    let (tracer, _faas, _pulsar, _jiffy) = traced_stack(1);
    let json = tracer.chrome_trace_json();
    assert!(json.starts_with("{\"displayTimeUnit\":\"ms\",\"traceEvents\":["));
    assert!(json.ends_with("]}"));
    // Braces and brackets balance (no raw quotes/escapes leak: every
    // span name and attr in this test is ASCII identifier-like).
    let depth = json.chars().fold(0i64, |d, c| match c {
        '{' | '[' => d + 1,
        '}' | ']' => d - 1,
        _ => d,
    });
    assert_eq!(depth, 0, "unbalanced JSON braces");
    // One complete event per recorded span.
    assert_eq!(json.matches("\"ph\":\"X\"").count(), tracer.span_count());
    // Child spans carry their causal link.
    assert!(json.contains("\"parent_span_id\""));
    // Attributes ride along in args.
    assert!(json.contains("\"topic\":\"events\""));
}

#[test]
fn flame_summary_folds_cross_crate_paths() {
    let (tracer, _faas, _pulsar, _jiffy) = traced_stack(2);
    let flame = tracer.flame_summary();
    // The folded path walks from the FaaS root through the handler into
    // the other subsystems.
    assert!(flame
        .lines()
        .any(|l| l.starts_with("faas.invoke;faas.execute;jiffy.kv_put ")));
    assert!(flame
        .lines()
        .any(|l| l.starts_with("faas.invoke;faas.execute;pulsar.publish;pulsar.bookie_append ")));
    // Lines are `path count total_us` with numeric fields.
    for line in flame.lines() {
        let mut parts = line.rsplitn(3, ' ');
        let total: u64 = parts.next().unwrap().parse().unwrap();
        let count: u64 = parts.next().unwrap().parse().unwrap();
        assert!(count >= 1);
        let _ = total;
        assert!(!parts.next().unwrap().is_empty());
    }
}

#[test]
fn prometheus_snapshot_concatenates_across_registries() {
    let (_tracer, faas, pulsar, jiffy) = traced_stack(4);
    let mut out = String::new();
    out.push_str(&faas.metrics().render_prometheus_prefixed("faas_"));
    out.push_str(&pulsar.metrics().render_prometheus_prefixed("pulsar_"));
    out.push_str(&jiffy.metrics().render_prometheus_prefixed("jiffy_"));
    // Every subsystem contributed samples under its own prefix.
    for needle in [
        "faas_invocations_ok 4",
        "pulsar_messages_published 4",
        "jiffy_kv_puts 4",
    ] {
        assert!(out.contains(needle), "missing `{needle}` in:\n{out}");
    }
    // Text-format discipline: every non-comment line is `name[labels] value`.
    for line in out.lines() {
        if line.starts_with('#') || line.is_empty() {
            continue;
        }
        let (name, value) = line.rsplit_once(' ').expect("sample line");
        assert!(!name.is_empty());
        assert!(
            value.parse::<f64>().is_ok(),
            "unparseable sample value in `{line}`"
        );
        let bare = name.split('{').next().unwrap();
        assert!(
            bare.chars()
                .all(|c| c.is_ascii_alphanumeric() || c == '_' || c == ':'),
            "invalid metric name `{bare}`"
        );
    }
}

#[test]
fn detached_tracer_stops_recording() {
    let (tracer, faas, _pulsar, _jiffy) = traced_stack(1);
    let faas_spans = |t: &Tracer| {
        t.spans()
            .iter()
            .filter(|s| s.system == "taureau-faas")
            .count()
    };
    let before = faas_spans(&tracer);
    assert!(before > 0);
    // Detach the platform's tracer: further invocations add no FaaS
    // spans. (Pulsar/Jiffy still hold the shared tracer, so their spans —
    // now roots of their own traces — keep appearing.)
    faas.set_tracer(Tracer::disabled());
    faas.invoke("pipeline", vec![9]).unwrap();
    assert_eq!(faas_spans(&tracer), before);
    assert!(tracer
        .spans()
        .iter()
        .any(|s| s.system == "taureau-jiffy" && s.parent.is_none()));
}
