//! Offline shim for `rand` 0.8: the trait surface the workspace uses
//! (`RngCore`, the `Rng` extension trait, `SeedableRng`, and
//! `seq::SliceRandom`), with uniform sampling over integer and float
//! ranges. Concrete generators live in the `rand_chacha` shim.

use std::ops::{Range, RangeInclusive};

/// Core source of randomness.
pub trait RngCore {
    /// Next 32 random bits.
    fn next_u32(&mut self) -> u32;

    /// Next 64 random bits.
    fn next_u64(&mut self) -> u64;

    /// Fill `dest` with random bytes.
    fn fill_bytes(&mut self, dest: &mut [u8]) {
        let mut chunks = dest.chunks_exact_mut(8);
        for chunk in &mut chunks {
            chunk.copy_from_slice(&self.next_u64().to_le_bytes());
        }
        let rem = chunks.into_remainder();
        if !rem.is_empty() {
            let bytes = self.next_u64().to_le_bytes();
            rem.copy_from_slice(&bytes[..rem.len()]);
        }
    }
}

impl<R: RngCore + ?Sized> RngCore for &mut R {
    fn next_u32(&mut self) -> u32 {
        (**self).next_u32()
    }
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
    fn fill_bytes(&mut self, dest: &mut [u8]) {
        (**self).fill_bytes(dest)
    }
}

/// Types that can be sampled uniformly from the full value space
/// (unit-interval for floats), backing [`Rng::gen`].
pub trait Standard: Sized {
    /// Draw one value from `rng`.
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

macro_rules! standard_int {
    ($($t:ty),*) => {$(
        impl Standard for $t {
            fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
                rng.next_u64() as $t
            }
        }
    )*};
}

standard_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Standard for u128 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (u128::from(rng.next_u64()) << 64) | u128::from(rng.next_u64())
    }
}

impl Standard for bool {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

impl Standard for f64 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        // 53 uniform bits in [0, 1).
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl Standard for f32 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u32() >> 8) as f32 * (1.0 / (1u32 << 24) as f32)
    }
}

/// Ranges that [`Rng::gen_range`] accepts.
pub trait SampleRange<T> {
    /// Draw one value uniformly from the range.
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

macro_rules! range_int {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "gen_range: empty range");
                let span = (self.end as i128 - self.start as i128) as u128;
                let v = (u128::from(rng.next_u64()) % span) as i128;
                (self.start as i128 + v) as $t
            }
        }
        impl SampleRange<$t> for RangeInclusive<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "gen_range: empty range");
                let span = (hi as i128 - lo as i128) as u128 + 1;
                let v = (u128::from(rng.next_u64()) % span) as i128;
                (lo as i128 + v) as $t
            }
        }
    )*};
}

range_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

macro_rules! range_float {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "gen_range: empty range");
                let unit: $t = Standard::sample(rng);
                self.start + unit * (self.end - self.start)
            }
        }
    )*};
}

range_float!(f32, f64);

/// Extension methods over any [`RngCore`] (the rand 0.8 `Rng` trait).
pub trait Rng: RngCore {
    /// Sample a value of type `T` from its standard distribution.
    fn gen<T: Standard>(&mut self) -> T {
        T::sample(self)
    }

    /// Sample uniformly from `range`.
    fn gen_range<T, Rr: SampleRange<T>>(&mut self, range: Rr) -> T {
        range.sample_single(self)
    }

    /// Bernoulli draw with probability `p`.
    fn gen_bool(&mut self, p: f64) -> bool {
        let unit: f64 = self.gen();
        unit < p
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// Generators constructible from a seed.
pub trait SeedableRng: Sized {
    /// Raw seed type (a byte array).
    type Seed: AsMut<[u8]> + Default;

    /// Construct from a full seed.
    fn from_seed(seed: Self::Seed) -> Self;

    /// Construct from a `u64` by expanding it with SplitMix64.
    fn seed_from_u64(state: u64) -> Self {
        let mut seed = Self::Seed::default();
        let mut x = state;
        for chunk in seed.as_mut().chunks_mut(8) {
            // SplitMix64 step.
            x = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = x;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^= z >> 31;
            let bytes = z.to_le_bytes();
            chunk.copy_from_slice(&bytes[..chunk.len()]);
        }
        Self::from_seed(seed)
    }
}

/// Slice shuffling and sampling.
pub mod seq {
    use super::Rng;

    /// Extension trait adding in-place shuffling to slices.
    pub trait SliceRandom {
        /// Element type.
        type Item;

        /// Fisher–Yates shuffle in place.
        fn shuffle<R: Rng + ?Sized>(&mut self, rng: &mut R);

        /// A uniformly random element, or `None` if empty.
        fn choose<R: Rng + ?Sized>(&self, rng: &mut R) -> Option<&Self::Item>;
    }

    impl<T> SliceRandom for [T] {
        type Item = T;

        fn shuffle<R: Rng + ?Sized>(&mut self, rng: &mut R) {
            for i in (1..self.len()).rev() {
                let j = (rng.next_u64() % (i as u64 + 1)) as usize;
                self.swap(i, j);
            }
        }

        fn choose<R: Rng + ?Sized>(&self, rng: &mut R) -> Option<&T> {
            if self.is_empty() {
                None
            } else {
                let i = (rng.next_u64() % self.len() as u64) as usize;
                self.get(i)
            }
        }
    }
}

/// The crate prelude, mirroring `rand::prelude`.
pub mod prelude {
    pub use crate::seq::SliceRandom;
    pub use crate::{Rng, RngCore, SeedableRng};
}

#[cfg(test)]
mod tests {
    use super::*;

    struct Lcg(u64);
    impl RngCore for Lcg {
        fn next_u32(&mut self) -> u32 {
            self.next_u64() as u32
        }
        fn next_u64(&mut self) -> u64 {
            self.0 = self.0.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
            self.0
        }
    }

    #[test]
    fn ranges_stay_in_bounds() {
        let mut r = Lcg(42);
        for _ in 0..1000 {
            let v: u64 = r.gen_range(10..20);
            assert!((10..20).contains(&v));
            let f: f64 = r.gen_range(-1.0..1.0);
            assert!((-1.0..1.0).contains(&f));
            let i: usize = r.gen_range(0..=5);
            assert!(i <= 5);
            let u: f64 = r.gen();
            assert!((0.0..1.0).contains(&u));
        }
    }

    #[test]
    fn shuffle_is_permutation() {
        use seq::SliceRandom;
        let mut v: Vec<u32> = (0..100).collect();
        let mut r = Lcg(7);
        v.shuffle(&mut r);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..100).collect::<Vec<_>>());
    }
}
