//! Offline shim for `criterion`: runs each benchmark closure a fixed
//! number of sampled iterations and prints mean/min/max wall time. No
//! statistics engine, plots, or baselines — just enough to keep the
//! workspace's `[[bench]]` targets runnable offline.

use std::fmt;
use std::time::{Duration, Instant};

pub use std::hint::black_box;

/// Top-level benchmark driver.
pub struct Criterion {
    sample_size: usize,
}

impl Default for Criterion {
    fn default() -> Self {
        Self { sample_size: 20 }
    }
}

impl Criterion {
    /// Set samples per benchmark (upstream default is 100; the shim keeps
    /// runs short).
    pub fn sample_size(mut self, n: usize) -> Self {
        self.sample_size = n.max(1);
        self
    }

    /// Configure from CLI args — a no-op here, for upstream parity.
    pub fn configure_from_args(self) -> Self {
        self
    }

    /// Run a single named benchmark.
    pub fn bench_function<F>(&mut self, name: &str, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        run_bench(name, self.sample_size, &mut f);
        self
    }

    /// Open a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: &str) -> BenchmarkGroup<'_> {
        let sample_size = self.sample_size;
        BenchmarkGroup { _parent: self, name: name.to_string(), sample_size }
    }

    /// Finalize (upstream prints summaries; the shim prints per-bench).
    pub fn final_summary(&mut self) {}
}

/// A group of related benchmarks sharing a name prefix.
pub struct BenchmarkGroup<'a> {
    _parent: &'a mut Criterion,
    name: String,
    sample_size: usize,
}

impl BenchmarkGroup<'_> {
    /// Set samples per benchmark within the group.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(1);
        self
    }

    /// Record the work-per-iteration for throughput reporting.
    pub fn throughput(&mut self, _throughput: Throughput) -> &mut Self {
        self
    }

    /// Run a benchmark within the group.
    pub fn bench_function<F>(&mut self, id: impl Into<BenchmarkId>, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let id = id.into();
        run_bench(&format!("{}/{}", self.name, id), self.sample_size, &mut f);
        self
    }

    /// Run a benchmark parameterized by `input`.
    pub fn bench_with_input<I, F>(
        &mut self,
        id: impl Into<BenchmarkId>,
        input: &I,
        mut f: F,
    ) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        let id = id.into();
        run_bench(&format!("{}/{}", self.name, id), self.sample_size, &mut |b| f(b, input));
        self
    }

    /// Close the group.
    pub fn finish(self) {}
}

/// Identifier for a benchmark within a group.
pub struct BenchmarkId {
    text: String,
}

impl BenchmarkId {
    /// A function name plus parameter value.
    pub fn new(name: impl fmt::Display, param: impl fmt::Display) -> Self {
        Self { text: format!("{name}/{param}") }
    }

    /// Just a parameter value.
    pub fn from_parameter(param: impl fmt::Display) -> Self {
        Self { text: param.to_string() }
    }
}

impl From<&str> for BenchmarkId {
    fn from(s: &str) -> Self {
        Self { text: s.to_string() }
    }
}

impl fmt::Display for BenchmarkId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.text)
    }
}

/// Work-per-iteration declaration (reported but not rate-normalized).
pub enum Throughput {
    /// Elements processed per iteration.
    Elements(u64),
    /// Bytes processed per iteration.
    Bytes(u64),
}

/// Timing harness handed to each benchmark closure.
pub struct Bencher {
    samples: Vec<Duration>,
    iters_per_sample: u64,
}

impl Bencher {
    /// Time `f`, called `iters_per_sample` times per recorded sample.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut f: F) {
        let start = Instant::now();
        for _ in 0..self.iters_per_sample {
            black_box(f());
        }
        let elapsed = start.elapsed() / self.iters_per_sample as u32;
        self.samples.push(elapsed);
    }
}

fn run_bench<F: FnMut(&mut Bencher)>(name: &str, samples: usize, f: &mut F) {
    // One warmup call, then timed samples.
    let mut warm = Bencher { samples: Vec::new(), iters_per_sample: 1 };
    f(&mut warm);
    let mut b = Bencher { samples: Vec::with_capacity(samples), iters_per_sample: 1 };
    for _ in 0..samples {
        f(&mut b);
    }
    if b.samples.is_empty() {
        println!("{name:<60} (no samples)");
        return;
    }
    let total: Duration = b.samples.iter().sum();
    let mean = total / b.samples.len() as u32;
    let min = *b.samples.iter().min().unwrap();
    let max = *b.samples.iter().max().unwrap();
    println!("{name:<60} mean {mean:>12?}  min {min:>12?}  max {max:>12?}");
}

/// Declare a benchmark group function, mirroring criterion's two forms.
#[macro_export]
macro_rules! criterion_group {
    (name = $name:ident; config = $config:expr; targets = $($target:path),+ $(,)?) => {
        fn $name() {
            let mut criterion = $config;
            $($target(&mut criterion);)+
        }
    };
    ($name:ident, $($target:path),+ $(,)?) => {
        $crate::criterion_group!(
            name = $name;
            config = $crate::Criterion::default();
            targets = $($target),+
        );
    };
}

/// Declare the bench `main` running each group.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sum_to(n: u64) -> u64 {
        (0..n).sum()
    }

    fn bench_example(c: &mut Criterion) {
        c.bench_function("sum_small", |b| b.iter(|| sum_to(black_box(100))));
        let mut g = c.benchmark_group("sums");
        g.sample_size(5);
        g.throughput(Throughput::Elements(1000));
        g.bench_with_input(BenchmarkId::new("sum", 1000), &1000u64, |b, &n| {
            b.iter(|| sum_to(n))
        });
        g.bench_function(BenchmarkId::from_parameter(10), |b| b.iter(|| sum_to(10)));
        g.finish();
    }

    criterion_group!(benches, bench_example);
    criterion_group! {
        name = configured;
        config = Criterion::default().sample_size(3);
        targets = bench_example
    }

    #[test]
    fn harness_runs() {
        benches();
        configured();
    }
}
