//! Offline shim for `rand_chacha`: a from-scratch ChaCha8 keystream
//! generator implementing the `rand` shim's `RngCore`/`SeedableRng`.
//! Deterministic for a given seed (the workspace's reproducibility tests
//! rely on that, not on matching upstream rand_chacha's exact stream).

use rand::{RngCore, SeedableRng};

const CHACHA_ROUNDS: usize = 8;

/// A ChaCha8-based deterministic random number generator.
#[derive(Debug, Clone)]
pub struct ChaCha8Rng {
    /// Key (8 words) as seeded.
    key: [u32; 8],
    /// 64-bit block counter.
    counter: u64,
    /// Current output block.
    block: [u32; 16],
    /// Next word index within `block` (16 = exhausted).
    index: usize,
}

fn quarter_round(state: &mut [u32; 16], a: usize, b: usize, c: usize, d: usize) {
    state[a] = state[a].wrapping_add(state[b]);
    state[d] = (state[d] ^ state[a]).rotate_left(16);
    state[c] = state[c].wrapping_add(state[d]);
    state[b] = (state[b] ^ state[c]).rotate_left(12);
    state[a] = state[a].wrapping_add(state[b]);
    state[d] = (state[d] ^ state[a]).rotate_left(8);
    state[c] = state[c].wrapping_add(state[d]);
    state[b] = (state[b] ^ state[c]).rotate_left(7);
}

impl ChaCha8Rng {
    fn refill(&mut self) {
        let mut state: [u32; 16] = [
            0x6170_7865,
            0x3320_646e,
            0x7962_2d32,
            0x6b20_6574,
            self.key[0],
            self.key[1],
            self.key[2],
            self.key[3],
            self.key[4],
            self.key[5],
            self.key[6],
            self.key[7],
            self.counter as u32,
            (self.counter >> 32) as u32,
            0,
            0,
        ];
        let input = state;
        for _ in 0..CHACHA_ROUNDS / 2 {
            // Column round.
            quarter_round(&mut state, 0, 4, 8, 12);
            quarter_round(&mut state, 1, 5, 9, 13);
            quarter_round(&mut state, 2, 6, 10, 14);
            quarter_round(&mut state, 3, 7, 11, 15);
            // Diagonal round.
            quarter_round(&mut state, 0, 5, 10, 15);
            quarter_round(&mut state, 1, 6, 11, 12);
            quarter_round(&mut state, 2, 7, 8, 13);
            quarter_round(&mut state, 3, 4, 9, 14);
        }
        for (out, inp) in state.iter_mut().zip(input.iter()) {
            *out = out.wrapping_add(*inp);
        }
        self.block = state;
        self.counter = self.counter.wrapping_add(1);
        self.index = 0;
    }

    fn next_word(&mut self) -> u32 {
        if self.index >= 16 {
            self.refill();
        }
        let w = self.block[self.index];
        self.index += 1;
        w
    }
}

impl RngCore for ChaCha8Rng {
    fn next_u32(&mut self) -> u32 {
        self.next_word()
    }

    fn next_u64(&mut self) -> u64 {
        let lo = u64::from(self.next_word());
        let hi = u64::from(self.next_word());
        lo | (hi << 32)
    }
}

impl SeedableRng for ChaCha8Rng {
    type Seed = [u8; 32];

    fn from_seed(seed: Self::Seed) -> Self {
        let mut key = [0u32; 8];
        for (k, chunk) in key.iter_mut().zip(seed.chunks_exact(4)) {
            *k = u32::from_le_bytes(chunk.try_into().unwrap());
        }
        Self { key, counter: 0, block: [0; 16], index: 16 }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::Rng;

    #[test]
    fn deterministic_per_seed() {
        let mut a = ChaCha8Rng::seed_from_u64(7);
        let mut b = ChaCha8Rng::seed_from_u64(7);
        let va: Vec<u64> = (0..64).map(|_| a.next_u64()).collect();
        let vb: Vec<u64> = (0..64).map(|_| b.next_u64()).collect();
        assert_eq!(va, vb);
        let mut c = ChaCha8Rng::seed_from_u64(8);
        assert_ne!(va, (0..64).map(|_| c.next_u64()).collect::<Vec<_>>());
    }

    #[test]
    fn unit_floats_look_uniform() {
        let mut r = ChaCha8Rng::seed_from_u64(1234);
        let n = 100_000;
        let mean: f64 = (0..n).map(|_| r.gen::<f64>()).sum::<f64>() / n as f64;
        assert!((mean - 0.5).abs() < 0.01, "mean {mean}");
        let ones = (0..n).filter(|_| r.gen::<bool>()).count() as f64 / n as f64;
        assert!((ones - 0.5).abs() < 0.01, "bool rate {ones}");
    }

    #[test]
    fn fill_bytes_covers_tail() {
        let mut r = ChaCha8Rng::seed_from_u64(5);
        let mut buf = [0u8; 13];
        r.fill_bytes(&mut buf);
        assert!(buf.iter().any(|&b| b != 0));
    }
}
