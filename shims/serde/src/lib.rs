//! Offline shim for `serde`: the workspace only uses the derive macros as
//! forward-compatible annotations (nothing serializes through serde yet),
//! so both derives expand to nothing.

use proc_macro::TokenStream;

/// No-op stand-in for `serde::Serialize`.
#[proc_macro_derive(Serialize)]
pub fn derive_serialize(_item: TokenStream) -> TokenStream {
    TokenStream::new()
}

/// No-op stand-in for `serde::Deserialize`.
#[proc_macro_derive(Deserialize)]
pub fn derive_deserialize(_item: TokenStream) -> TokenStream {
    TokenStream::new()
}
