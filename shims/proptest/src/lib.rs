//! Offline shim for `proptest`: the strategy combinators and macros the
//! workspace's property tests use. Cases are generated from a
//! deterministic per-test RNG; failures report the failing inputs but are
//! not shrunk. Case count defaults to 64 (override with `PROPTEST_CASES`).

use std::fmt::Debug;
use std::ops::{Range, RangeInclusive};

use rand::{Rng, RngCore, SeedableRng};
use rand_chacha::ChaCha8Rng;

/// Deterministic RNG handed to strategies while generating a case.
pub struct TestRng(ChaCha8Rng);

impl TestRng {
    /// RNG seeded from the test name so each test gets a stable stream.
    pub fn for_test(name: &str) -> Self {
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        for b in name.bytes() {
            h ^= u64::from(b);
            h = h.wrapping_mul(0x100_0000_01b3);
        }
        Self(ChaCha8Rng::seed_from_u64(h))
    }
}

impl RngCore for TestRng {
    fn next_u32(&mut self) -> u32 {
        self.0.next_u32()
    }
    fn next_u64(&mut self) -> u64 {
        self.0.next_u64()
    }
}

/// Number of cases per property (`PROPTEST_CASES` env override).
pub fn case_count() -> usize {
    std::env::var("PROPTEST_CASES").ok().and_then(|v| v.parse().ok()).unwrap_or(64)
}

/// A value generator.
pub trait Strategy {
    /// Type of generated values.
    type Value: Debug;

    /// Generate one value.
    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    /// Map generated values through `f`.
    fn prop_map<O: Debug, F: Fn(Self::Value) -> O>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
    {
        Map { inner: self, f }
    }

    /// Erase the concrete strategy type.
    fn boxed(self) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + 'static,
    {
        BoxedStrategy(Box::new(self))
    }
}

/// Boxed, type-erased strategy (what `prop_oneof!` stores).
pub struct BoxedStrategy<V>(Box<dyn Strategy<Value = V>>);

impl<V: Debug> Strategy for BoxedStrategy<V> {
    type Value = V;
    fn generate(&self, rng: &mut TestRng) -> V {
        self.0.generate(rng)
    }
}

/// Output of [`Strategy::prop_map`].
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, O: Debug, F: Fn(S::Value) -> O> Strategy for Map<S, F> {
    type Value = O;
    fn generate(&self, rng: &mut TestRng) -> O {
        (self.f)(self.inner.generate(rng))
    }
}

/// Strategy yielding a fixed value.
#[derive(Clone, Debug)]
pub struct Just<V>(pub V);

impl<V: Clone + Debug> Strategy for Just<V> {
    type Value = V;
    fn generate(&self, _rng: &mut TestRng) -> V {
        self.0.clone()
    }
}

macro_rules! strategy_for_range {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                rng.gen_range(self.clone())
            }
        }
    )*};
}

strategy_for_range!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize, f32, f64);

macro_rules! strategy_for_range_inclusive {
    ($($t:ty),*) => {$(
        impl Strategy for RangeInclusive<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                rng.gen_range(self.clone())
            }
        }
    )*};
}

strategy_for_range_inclusive!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

macro_rules! strategy_for_tuple {
    ($($name:ident),*) => {
        impl<$($name: Strategy),*> Strategy for ($($name,)*) {
            type Value = ($($name::Value,)*);
            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                #[allow(non_snake_case)]
                let ($($name,)*) = self;
                ($($name.generate(rng),)*)
            }
        }
    };
}

strategy_for_tuple!(A, B);
strategy_for_tuple!(A, B, C);
strategy_for_tuple!(A, B, C, D);
strategy_for_tuple!(A, B, C, D, E);

/// `any::<T>()` support.
pub mod arbitrary {
    use super::*;

    /// Types with a canonical whole-domain strategy.
    pub trait Arbitrary: Debug + Sized {
        /// Generate an unconstrained value.
        fn arbitrary(rng: &mut TestRng) -> Self;
    }

    macro_rules! arb_int {
        ($($t:ty),*) => {$(
            impl Arbitrary for $t {
                fn arbitrary(rng: &mut TestRng) -> $t {
                    rng.next_u64() as $t
                }
            }
        )*};
    }

    arb_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

    impl Arbitrary for bool {
        fn arbitrary(rng: &mut TestRng) -> bool {
            rng.next_u64() & 1 == 1
        }
    }

    impl Arbitrary for f64 {
        fn arbitrary(rng: &mut TestRng) -> f64 {
            // Finite floats across a wide magnitude span.
            let unit: f64 = rng.gen();
            let mag: i32 = rng.gen_range(-64..64);
            (unit - 0.5) * 2f64.powi(mag)
        }
    }

    /// Strategy for an unconstrained `T`.
    #[derive(Clone, Copy, Debug, Default)]
    pub struct Any<T>(std::marker::PhantomData<T>);

    impl<T: Arbitrary> Strategy for Any<T> {
        type Value = T;
        fn generate(&self, rng: &mut TestRng) -> T {
            T::arbitrary(rng)
        }
    }

    /// The `any::<T>()` entry point.
    pub fn any<T: Arbitrary>() -> Any<T> {
        Any(std::marker::PhantomData)
    }
}

/// Collection strategies.
pub mod collection {
    use super::*;

    /// Length specification for [`vec`].
    #[derive(Clone, Debug)]
    pub struct SizeRange(pub Range<usize>);

    impl From<Range<usize>> for SizeRange {
        fn from(r: Range<usize>) -> Self {
            Self(r)
        }
    }

    impl From<RangeInclusive<usize>> for SizeRange {
        fn from(r: RangeInclusive<usize>) -> Self {
            Self(*r.start()..r.end() + 1)
        }
    }

    impl From<usize> for SizeRange {
        fn from(n: usize) -> Self {
            Self(n..n + 1)
        }
    }

    /// Strategy for `Vec<S::Value>` with lengths drawn from the range.
    pub struct VecStrategy<S> {
        element: S,
        size: SizeRange,
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn generate(&self, rng: &mut TestRng) -> Self::Value {
            let len = if self.size.0.is_empty() {
                self.size.0.start
            } else {
                rng.gen_range(self.size.0.clone())
            };
            (0..len).map(|_| self.element.generate(rng)).collect()
        }
    }

    /// `vec(strategy, len_range)`.
    pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy { element, size: size.into() }
    }
}

/// Uniform choice among boxed alternatives (what `prop_oneof!` builds).
pub struct Union<V> {
    options: Vec<BoxedStrategy<V>>,
}

impl<V: Debug> Union<V> {
    /// Build from non-empty alternatives.
    pub fn new(options: Vec<BoxedStrategy<V>>) -> Self {
        assert!(!options.is_empty(), "prop_oneof! needs at least one alternative");
        Self { options }
    }
}

impl<V: Debug> Strategy for Union<V> {
    type Value = V;
    fn generate(&self, rng: &mut TestRng) -> V {
        let i = rng.gen_range(0..self.options.len());
        self.options[i].generate(rng)
    }
}

/// Everything the tests import.
pub mod prelude {
    pub use crate::arbitrary::any;
    pub use crate::collection::vec as prop_vec;
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, prop_oneof, proptest};
    pub use crate::{BoxedStrategy, Just, Strategy, TestRng, Union};
}

/// Upstream-compatible module path for [`Strategy`].
pub mod strategy {
    pub use crate::{BoxedStrategy, Just, Map, Strategy, Union};
}

/// Run one property: generate cases, run the body, panic on first failure.
pub fn run_property<F: FnMut(&mut TestRng) -> Result<(), String>>(name: &str, mut case: F) {
    let mut rng = TestRng::for_test(name);
    let cases = case_count();
    for i in 0..cases {
        if let Err(msg) = case(&mut rng) {
            panic!("property '{name}' failed at case {i}/{cases}: {msg}");
        }
    }
}

/// Define property tests. Mirrors `proptest::proptest!` syntax for
/// `fn name(arg in strategy, ...) { body }` items.
#[macro_export]
macro_rules! proptest {
    ($( $(#[$meta:meta])* fn $name:ident($($arg:ident in $strat:expr),* $(,)?) $body:block )*) => {
        $(
            $(#[$meta])*
            fn $name() {
                $crate::run_property(stringify!($name), |__rng| {
                    $(let $arg = $crate::Strategy::generate(&($strat), __rng);)*
                    let __inputs = format!(
                        concat!($(stringify!($arg), " = {:?}; ",)*),
                        $(&$arg,)*
                    );
                    let __result = (|| -> ::std::result::Result<(), ::std::string::String> {
                        $body
                        ::std::result::Result::Ok(())
                    })();
                    __result.map_err(|e| format!("{e}\n  inputs: {}", __inputs))
                });
            }
        )*
    };
}

/// Assert inside a property body (soft-fails the case).
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        if !$cond {
            return Err(format!("assertion failed: {}", stringify!($cond)));
        }
    };
    ($cond:expr, $($fmt:tt)*) => {
        if !$cond {
            return Err(format!($($fmt)*));
        }
    };
}

/// Assert equality inside a property body.
#[macro_export]
macro_rules! prop_assert_eq {
    ($a:expr, $b:expr) => {{
        let (a, b) = (&$a, &$b);
        if !(a == b) {
            return Err(format!("assertion failed: {:?} == {:?}", a, b));
        }
    }};
    ($a:expr, $b:expr, $($fmt:tt)*) => {{
        let (a, b) = (&$a, &$b);
        if !(a == b) {
            return Err(format!($($fmt)*));
        }
    }};
}

/// Assert inequality inside a property body.
#[macro_export]
macro_rules! prop_assert_ne {
    ($a:expr, $b:expr) => {{
        let (a, b) = (&$a, &$b);
        if !(a != b) {
            return Err(format!("assertion failed: {:?} != {:?}", a, b));
        }
    }};
}

/// Choose among strategies with a uniform pick.
#[macro_export]
macro_rules! prop_oneof {
    ($($strat:expr),+ $(,)?) => {
        $crate::Union::new(vec![$($crate::Strategy::boxed($strat)),+])
    };
}

#[cfg(test)]
mod tests {
    use crate::collection::vec;
    use crate::prelude::*;

    proptest! {
        #[test]
        fn ranges_and_vecs(x in 1u64..100, v in vec(any::<u8>(), 0..16)) {
            prop_assert!((1..100).contains(&x));
            prop_assert!(v.len() < 16);
        }

        #[test]
        fn oneof_and_map(v in prop_oneof![
            (0u8..10).prop_map(|n| n as u32),
            (100u32..200).prop_map(|n| n),
        ]) {
            prop_assert!(v < 10 || (100..200).contains(&v));
        }
    }

    #[test]
    #[should_panic(expected = "failed at case")]
    fn failures_panic_with_inputs() {
        crate::run_property("always_fails", |_| Err("boom".into()));
    }
}
