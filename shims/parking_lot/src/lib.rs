//! Offline shim for `parking_lot`: wraps the std primitives with
//! parking_lot's poison-free API (a poisoned lock panics, matching
//! parking_lot's behaviour of never poisoning).

use std::fmt;
use std::ops::{Deref, DerefMut};
use std::sync;

/// A mutual-exclusion lock (std-backed).
pub struct Mutex<T: ?Sized>(sync::Mutex<T>);

/// RAII guard for [`Mutex`].
pub struct MutexGuard<'a, T: ?Sized>(sync::MutexGuard<'a, T>);

impl<T> Mutex<T> {
    /// Create a new mutex.
    pub const fn new(value: T) -> Self {
        Self(sync::Mutex::new(value))
    }

    /// Consume the mutex, returning the inner value.
    pub fn into_inner(self) -> T {
        self.0.into_inner().unwrap_or_else(|e| e.into_inner())
    }
}

impl<T: ?Sized> Mutex<T> {
    /// Acquire the lock, blocking until available.
    pub fn lock(&self) -> MutexGuard<'_, T> {
        MutexGuard(self.0.lock().unwrap_or_else(|e| e.into_inner()))
    }

    /// Try to acquire the lock without blocking.
    pub fn try_lock(&self) -> Option<MutexGuard<'_, T>> {
        match self.0.try_lock() {
            Ok(g) => Some(MutexGuard(g)),
            Err(sync::TryLockError::Poisoned(e)) => Some(MutexGuard(e.into_inner())),
            Err(sync::TryLockError::WouldBlock) => None,
        }
    }

    /// Get a mutable reference to the value (no locking needed).
    pub fn get_mut(&mut self) -> &mut T {
        self.0.get_mut().unwrap_or_else(|e| e.into_inner())
    }
}

impl<T: Default> Default for Mutex<T> {
    fn default() -> Self {
        Self::new(T::default())
    }
}

impl<T: fmt::Debug + ?Sized> fmt::Debug for Mutex<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        self.0.fmt(f)
    }
}

impl<T: ?Sized> Deref for MutexGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        &self.0
    }
}

impl<T: ?Sized> DerefMut for MutexGuard<'_, T> {
    fn deref_mut(&mut self) -> &mut T {
        &mut self.0
    }
}

/// A reader-writer lock (std-backed).
pub struct RwLock<T: ?Sized>(sync::RwLock<T>);

/// Shared-read guard for [`RwLock`].
pub struct RwLockReadGuard<'a, T: ?Sized>(sync::RwLockReadGuard<'a, T>);

/// Exclusive-write guard for [`RwLock`].
pub struct RwLockWriteGuard<'a, T: ?Sized>(sync::RwLockWriteGuard<'a, T>);

impl<T> RwLock<T> {
    /// Create a new reader-writer lock.
    pub const fn new(value: T) -> Self {
        Self(sync::RwLock::new(value))
    }

    /// Consume the lock, returning the inner value.
    pub fn into_inner(self) -> T {
        self.0.into_inner().unwrap_or_else(|e| e.into_inner())
    }
}

impl<T: ?Sized> RwLock<T> {
    /// Acquire a shared read guard.
    pub fn read(&self) -> RwLockReadGuard<'_, T> {
        RwLockReadGuard(self.0.read().unwrap_or_else(|e| e.into_inner()))
    }

    /// Acquire an exclusive write guard.
    pub fn write(&self) -> RwLockWriteGuard<'_, T> {
        RwLockWriteGuard(self.0.write().unwrap_or_else(|e| e.into_inner()))
    }
}

impl<T: Default> Default for RwLock<T> {
    fn default() -> Self {
        Self::new(T::default())
    }
}

impl<T: fmt::Debug + ?Sized> fmt::Debug for RwLock<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        self.0.fmt(f)
    }
}

impl<T: ?Sized> Deref for RwLockReadGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        &self.0
    }
}

impl<T: ?Sized> Deref for RwLockWriteGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        &self.0
    }
}

impl<T: ?Sized> DerefMut for RwLockWriteGuard<'_, T> {
    fn deref_mut(&mut self) -> &mut T {
        &mut self.0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mutex_roundtrip() {
        let m = Mutex::new(1);
        *m.lock() += 1;
        assert_eq!(*m.lock(), 2);
        assert!(m.try_lock().is_some());
        assert_eq!(m.into_inner(), 2);
    }

    #[test]
    fn rwlock_roundtrip() {
        let l = RwLock::new(vec![1]);
        l.write().push(2);
        assert_eq!(l.read().len(), 2);
    }
}
