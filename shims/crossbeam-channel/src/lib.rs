//! Offline shim for `crossbeam-channel`: an unbounded MPMC channel built
//! on `Mutex` + `Condvar`. Supports the blocking/timeout/non-blocking
//! receive surface the workspace uses; not a performance stand-in.

use std::collections::VecDeque;
use std::fmt;
use std::sync::{Arc, Condvar, Mutex};
use std::time::Duration;

struct Shared<T> {
    inner: Mutex<State<T>>,
    ready: Condvar,
}

struct State<T> {
    queue: VecDeque<T>,
    senders: usize,
    receivers: usize,
}

/// Sending half; cheap to clone.
pub struct Sender<T> {
    shared: Arc<Shared<T>>,
}

/// Receiving half; cheap to clone.
pub struct Receiver<T> {
    shared: Arc<Shared<T>>,
}

/// Error returned when all receivers are gone.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SendError<T>(pub T);

/// Error returned when the channel is empty and all senders are gone.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RecvError;

/// Error for [`Receiver::recv_timeout`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RecvTimeoutError {
    /// No message arrived within the timeout.
    Timeout,
    /// All senders disconnected and the queue is drained.
    Disconnected,
}

/// Error for [`Receiver::try_recv`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TryRecvError {
    /// The queue is currently empty.
    Empty,
    /// All senders disconnected and the queue is drained.
    Disconnected,
}

impl<T> fmt::Display for SendError<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "sending on a disconnected channel")
    }
}

impl<T> fmt::Debug for Sender<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str("Sender { .. }")
    }
}

impl<T> fmt::Debug for Receiver<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str("Receiver { .. }")
    }
}

/// Create an unbounded channel.
pub fn unbounded<T>() -> (Sender<T>, Receiver<T>) {
    let shared = Arc::new(Shared {
        inner: Mutex::new(State { queue: VecDeque::new(), senders: 1, receivers: 1 }),
        ready: Condvar::new(),
    });
    (Sender { shared: Arc::clone(&shared) }, Receiver { shared })
}

impl<T> Sender<T> {
    /// Enqueue a message; fails only if every receiver is gone.
    pub fn send(&self, value: T) -> Result<(), SendError<T>> {
        let mut st = self.shared.inner.lock().unwrap();
        if st.receivers == 0 {
            return Err(SendError(value));
        }
        st.queue.push_back(value);
        drop(st);
        self.shared.ready.notify_one();
        Ok(())
    }
}

impl<T> Clone for Sender<T> {
    fn clone(&self) -> Self {
        self.shared.inner.lock().unwrap().senders += 1;
        Self { shared: Arc::clone(&self.shared) }
    }
}

impl<T> Drop for Sender<T> {
    fn drop(&mut self) {
        let mut st = self.shared.inner.lock().unwrap();
        st.senders -= 1;
        let last = st.senders == 0;
        drop(st);
        if last {
            self.shared.ready.notify_all();
        }
    }
}

impl<T> Receiver<T> {
    /// Block until a message arrives or all senders disconnect.
    pub fn recv(&self) -> Result<T, RecvError> {
        let mut st = self.shared.inner.lock().unwrap();
        loop {
            if let Some(v) = st.queue.pop_front() {
                return Ok(v);
            }
            if st.senders == 0 {
                return Err(RecvError);
            }
            st = self.shared.ready.wait(st).unwrap();
        }
    }

    /// Block up to `timeout` for a message.
    pub fn recv_timeout(&self, timeout: Duration) -> Result<T, RecvTimeoutError> {
        let deadline = std::time::Instant::now() + timeout;
        let mut st = self.shared.inner.lock().unwrap();
        loop {
            if let Some(v) = st.queue.pop_front() {
                return Ok(v);
            }
            if st.senders == 0 {
                return Err(RecvTimeoutError::Disconnected);
            }
            let now = std::time::Instant::now();
            if now >= deadline {
                return Err(RecvTimeoutError::Timeout);
            }
            let (guard, res) = self.shared.ready.wait_timeout(st, deadline - now).unwrap();
            st = guard;
            if res.timed_out() && st.queue.is_empty() {
                return if st.senders == 0 {
                    Err(RecvTimeoutError::Disconnected)
                } else {
                    Err(RecvTimeoutError::Timeout)
                };
            }
        }
    }

    /// Pop a message if one is ready.
    pub fn try_recv(&self) -> Result<T, TryRecvError> {
        let mut st = self.shared.inner.lock().unwrap();
        match st.queue.pop_front() {
            Some(v) => Ok(v),
            None if st.senders == 0 => Err(TryRecvError::Disconnected),
            None => Err(TryRecvError::Empty),
        }
    }

    /// Number of queued messages.
    pub fn len(&self) -> usize {
        self.shared.inner.lock().unwrap().queue.len()
    }

    /// Whether the queue is empty.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

impl<T> Clone for Receiver<T> {
    fn clone(&self) -> Self {
        self.shared.inner.lock().unwrap().receivers += 1;
        Self { shared: Arc::clone(&self.shared) }
    }
}

impl<T> Drop for Receiver<T> {
    fn drop(&mut self) {
        self.shared.inner.lock().unwrap().receivers -= 1;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn send_recv_fifo() {
        let (tx, rx) = unbounded();
        tx.send(1).unwrap();
        tx.send(2).unwrap();
        assert_eq!(rx.recv(), Ok(1));
        assert_eq!(rx.try_recv(), Ok(2));
        assert_eq!(rx.try_recv(), Err(TryRecvError::Empty));
    }

    #[test]
    fn disconnect_is_observed() {
        let (tx, rx) = unbounded::<u8>();
        drop(tx);
        assert_eq!(rx.recv(), Err(RecvError));
        assert_eq!(rx.try_recv(), Err(TryRecvError::Disconnected));
    }

    #[test]
    fn timeout_fires() {
        let (tx, rx) = unbounded::<u8>();
        let err = rx.recv_timeout(Duration::from_millis(5));
        assert_eq!(err, Err(RecvTimeoutError::Timeout));
        drop(tx);
    }

    #[test]
    fn cross_thread_delivery() {
        let (tx, rx) = unbounded();
        let h = std::thread::spawn(move || {
            for i in 0..100 {
                tx.send(i).unwrap();
            }
        });
        let mut got = Vec::new();
        while let Ok(v) = rx.recv() {
            got.push(v);
        }
        h.join().unwrap();
        assert_eq!(got, (0..100).collect::<Vec<_>>());
    }
}
