//! Offline shim for the `bytes` crate: cheap-to-clone immutable byte
//! buffers (`Bytes`) over an `Arc<Vec<u8>>`, plus a growable `BytesMut`
//! builder with the little-endian `BufMut` put-methods the workspace uses.
//!
//! The backing store is an `Arc<Vec<u8>>` rather than an `Arc<[u8]>` on
//! purpose: `Vec<u8> -> Bytes` then reuses the vector's heap buffer (one
//! small `Arc` header allocation, no byte copy), which is what makes the
//! handler-output -> `Bytes` conversion at the FaaS `Ok` boundary free.

use std::fmt;
use std::hash::{Hash, Hasher};
use std::ops::{Bound, Deref, RangeBounds};
use std::sync::Arc;

/// A cheaply cloneable, immutable slice of bytes.
#[derive(Clone)]
pub struct Bytes {
    data: Arc<Vec<u8>>,
    start: usize,
    end: usize,
}

impl Bytes {
    /// The empty buffer.
    pub fn new() -> Self {
        Self::from(Vec::new())
    }

    /// Buffer over a static slice (copied; the shim has no zero-copy
    /// static storage, which is invisible to callers).
    pub fn from_static(bytes: &'static [u8]) -> Self {
        Self::copy_from_slice(bytes)
    }

    /// Copy a slice into a new buffer.
    pub fn copy_from_slice(data: &[u8]) -> Self {
        Self::from(data.to_vec())
    }

    /// Length in bytes.
    pub fn len(&self) -> usize {
        self.end - self.start
    }

    /// Whether the buffer is empty.
    pub fn is_empty(&self) -> bool {
        self.start == self.end
    }

    /// A sub-slice sharing the same backing storage.
    ///
    /// # Panics
    /// Panics if the range is out of bounds or inverted.
    pub fn slice(&self, range: impl RangeBounds<usize>) -> Self {
        let lo = match range.start_bound() {
            Bound::Included(&n) => n,
            Bound::Excluded(&n) => n + 1,
            Bound::Unbounded => 0,
        };
        let hi = match range.end_bound() {
            Bound::Included(&n) => n + 1,
            Bound::Excluded(&n) => n,
            Bound::Unbounded => self.len(),
        };
        assert!(lo <= hi && hi <= self.len(), "slice {lo}..{hi} out of bounds of {}", self.len());
        Self {
            data: Arc::clone(&self.data),
            start: self.start + lo,
            end: self.start + hi,
        }
    }

    /// The contents as a plain slice.
    pub fn as_ref(&self) -> &[u8] {
        &self.data[self.start..self.end]
    }

    /// Copy the contents into a fresh `Vec`.
    pub fn to_vec(&self) -> Vec<u8> {
        self.as_ref().to_vec()
    }
}

impl Default for Bytes {
    fn default() -> Self {
        Self::new()
    }
}

impl Deref for Bytes {
    type Target = [u8];
    fn deref(&self) -> &[u8] {
        self.as_ref()
    }
}

impl AsRef<[u8]> for Bytes {
    fn as_ref(&self) -> &[u8] {
        Bytes::as_ref(self)
    }
}

impl From<Vec<u8>> for Bytes {
    fn from(v: Vec<u8>) -> Self {
        // Takes ownership of the vector's buffer: no byte copy.
        let end = v.len();
        Self { data: Arc::new(v), start: 0, end }
    }
}

impl From<&'static [u8]> for Bytes {
    fn from(s: &'static [u8]) -> Self {
        Self::copy_from_slice(s)
    }
}

impl From<String> for Bytes {
    fn from(s: String) -> Self {
        Self::from(s.into_bytes())
    }
}

impl From<&'static str> for Bytes {
    fn from(s: &'static str) -> Self {
        Self::copy_from_slice(s.as_bytes())
    }
}

impl PartialEq for Bytes {
    fn eq(&self, other: &Self) -> bool {
        self.as_ref() == other.as_ref()
    }
}

impl Eq for Bytes {}

impl PartialEq<[u8]> for Bytes {
    fn eq(&self, other: &[u8]) -> bool {
        self.as_ref() == other
    }
}

impl PartialEq<&[u8]> for Bytes {
    fn eq(&self, other: &&[u8]) -> bool {
        self.as_ref() == *other
    }
}

impl<const N: usize> PartialEq<[u8; N]> for Bytes {
    fn eq(&self, other: &[u8; N]) -> bool {
        self.as_ref() == other
    }
}

impl<const N: usize> PartialEq<&[u8; N]> for Bytes {
    fn eq(&self, other: &&[u8; N]) -> bool {
        self.as_ref() == *other
    }
}

impl PartialEq<Vec<u8>> for Bytes {
    fn eq(&self, other: &Vec<u8>) -> bool {
        self.as_ref() == other.as_slice()
    }
}

impl PartialEq<Bytes> for Vec<u8> {
    fn eq(&self, other: &Bytes) -> bool {
        self.as_slice() == other.as_ref()
    }
}

impl PartialOrd for Bytes {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for Bytes {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        self.as_ref().cmp(other.as_ref())
    }
}

impl Hash for Bytes {
    fn hash<H: Hasher>(&self, state: &mut H) {
        self.as_ref().hash(state)
    }
}

impl fmt::Debug for Bytes {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "b\"")?;
        for &b in self.as_ref() {
            for esc in std::ascii::escape_default(b) {
                write!(f, "{}", esc as char)?;
            }
        }
        write!(f, "\"")
    }
}

impl IntoIterator for Bytes {
    type Item = u8;
    type IntoIter = std::vec::IntoIter<u8>;
    fn into_iter(self) -> Self::IntoIter {
        self.to_vec().into_iter()
    }
}

impl<'a> IntoIterator for &'a Bytes {
    type Item = &'a u8;
    type IntoIter = std::slice::Iter<'a, u8>;
    fn into_iter(self) -> Self::IntoIter {
        Bytes::as_ref(self).iter()
    }
}

/// A growable byte buffer that freezes into [`Bytes`].
#[derive(Clone, Default, Debug, PartialEq, Eq)]
pub struct BytesMut {
    vec: Vec<u8>,
}

impl BytesMut {
    /// New empty buffer.
    pub fn new() -> Self {
        Self::default()
    }

    /// New empty buffer with reserved capacity.
    pub fn with_capacity(cap: usize) -> Self {
        Self { vec: Vec::with_capacity(cap) }
    }

    /// Length in bytes.
    pub fn len(&self) -> usize {
        self.vec.len()
    }

    /// Whether the buffer is empty.
    pub fn is_empty(&self) -> bool {
        self.vec.is_empty()
    }

    /// Convert into an immutable [`Bytes`].
    pub fn freeze(self) -> Bytes {
        Bytes::from(self.vec)
    }
}

impl Deref for BytesMut {
    type Target = [u8];
    fn deref(&self) -> &[u8] {
        &self.vec
    }
}

impl AsRef<[u8]> for BytesMut {
    fn as_ref(&self) -> &[u8] {
        &self.vec
    }
}

/// Write-side extension methods (the subset of `bytes::BufMut` the
/// workspace calls, all little-endian).
pub trait BufMut {
    /// Append a raw slice.
    fn put_slice(&mut self, src: &[u8]);

    /// Append one byte.
    fn put_u8(&mut self, v: u8) {
        self.put_slice(&[v]);
    }

    /// Append a `u16`, little-endian.
    fn put_u16_le(&mut self, v: u16) {
        self.put_slice(&v.to_le_bytes());
    }

    /// Append a `u32`, little-endian.
    fn put_u32_le(&mut self, v: u32) {
        self.put_slice(&v.to_le_bytes());
    }

    /// Append a `u64`, little-endian.
    fn put_u64_le(&mut self, v: u64) {
        self.put_slice(&v.to_le_bytes());
    }
}

impl BufMut for BytesMut {
    fn put_slice(&mut self, src: &[u8]) {
        self.vec.extend_from_slice(src);
    }
}

impl BufMut for Vec<u8> {
    fn put_slice(&mut self, src: &[u8]) {
        self.extend_from_slice(src);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn slice_shares_and_bounds() {
        let b = Bytes::from(vec![1, 2, 3, 4, 5]);
        let s = b.slice(1..4);
        assert_eq!(&s[..], &[2, 3, 4]);
        let tail = b.slice(3..);
        assert_eq!(&tail[..], &[4, 5]);
        assert_eq!(b.slice(..).len(), 5);
    }

    #[test]
    fn bytesmut_builds_and_freezes() {
        let mut m = BytesMut::with_capacity(16);
        m.put_u32_le(7);
        m.put_slice(b"ab");
        m.put_u64_le(9);
        let b = m.freeze();
        assert_eq!(b.len(), 4 + 2 + 8);
        assert_eq!(&b[0..4], &7u32.to_le_bytes());
        assert_eq!(&b[4..6], b"ab");
    }
}
